//! Cold-instruction sinking ("vacuum compaction").
//!
//! The paper suggests, without evaluating it: *"Further compaction of the
//! code schedule may be achieved by a redundancy-elimination optimization
//! that moves cold instructions (those whose results are not consumed
//! within the hot package) to the side exit block"* (Section 5.4). This
//! pass implements it.
//!
//! An instruction is sunk out of a hot block when:
//!
//! * it is pure (no memory access — a load's value may change if a store
//!   intervenes, so loads stay put);
//! * its result is not read later in its own block nor by the terminator;
//! * its result is dead along every non-exit successor;
//! * every exit successor that needs the value has this block as its only
//!   predecessor (a shared exit block would recompute the value with
//!   another path's operands).
//!
//! The sunk instruction is re-emitted in each exit block that needs it,
//! ahead of the [`vp_isa::Inst::Consume`] dummy consumers that keep the
//! data-flow honest — the hot path shrinks, the cold path pays.

use std::collections::HashSet;
use vp_core::PkgBlockMeta;
use vp_isa::{BlockId, Inst, Reg};
use vp_program::{Cfg, Function, Liveness};

/// Runs cold-instruction sinking on one package function. Returns the
/// number of instructions moved off the hot path.
///
/// `meta` is the per-block provenance recorded at extraction time
/// ([`vp_core::PackageInfo::meta`]), used to identify exit blocks.
pub fn sink_cold_instructions(f: &mut Function, meta: &[PkgBlockMeta]) -> usize {
    assert_eq!(meta.len(), f.blocks.len(), "meta must describe every block");
    let is_exit = |b: BlockId| meta[b.0 as usize].is_exit;
    let mut moved = 0;

    // Iterate to a fixpoint: sinking one instruction can make the producer
    // of its operands sinkable too.
    loop {
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let mut change: Option<(BlockId, usize, Vec<BlockId>)> = None;

        'search: for (bid, block) in f.blocks_iter() {
            if is_exit(bid) || !cfg.is_reachable(bid) {
                continue;
            }
            let succs = cfg.succs(bid);
            let exit_succs: Vec<BlockId> = succs
                .iter()
                .map(|&(s, _)| s)
                .filter(|&s| is_exit(s))
                .collect();
            if exit_succs.is_empty() {
                continue;
            }
            // Candidate instructions, last first (so later uses inside the
            // block are respected naturally).
            for (i, inst) in block.insts.iter().enumerate().rev() {
                if inst.is_mem() || matches!(inst, Inst::Consume { .. }) {
                    continue;
                }
                let Some(def) = inst.defs().first().copied() else {
                    continue;
                };
                // Used later in this block or by the terminator?
                let used_later = block.insts[i + 1..]
                    .iter()
                    .any(|j| j.uses().contains(&def) || j.defs().contains(&def))
                    || block.term.uses().contains(&def);
                if used_later {
                    continue;
                }
                // Dead along every non-exit successor.
                if succs
                    .iter()
                    .any(|&(s, _)| !is_exit(s) && live.live_in(s).contains(def))
                {
                    continue;
                }
                // Which exits need it? Each must be exclusively ours.
                let targets: Vec<BlockId> = exit_succs
                    .iter()
                    .copied()
                    .filter(|&s| live.live_in(s).contains(def))
                    .collect();
                if targets.iter().any(|&s| cfg.preds(s).len() != 1) {
                    continue;
                }
                // Operands must survive to the end of the block (no
                // redefinition after i).
                let operands: HashSet<Reg> = inst.uses().into_iter().collect();
                if block.insts[i + 1..]
                    .iter()
                    .any(|j| j.defs().iter().any(|d| operands.contains(d)))
                {
                    continue;
                }
                change = Some((bid, i, targets));
                break 'search;
            }
        }

        let Some((bid, i, targets)) = change else {
            break;
        };
        let inst = f.block_mut(bid).insts.remove(i);
        for t in targets {
            f.block_mut(t).insts.insert(0, inst.clone());
        }
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{AluOp, CodeRef, Cond, FuncId, Src};
    use vp_program::{Block, FuncKind, Terminator};

    /// Builds a package-shaped function:
    /// b0: [r20 = r21+r22 (hot-dead), r23 = r21*2 (hot-live)] br -> b1 / b2(exit)
    /// b1: uses r23, Ret
    /// b2: exit block consuming r20, Goto original.
    fn package_like() -> (Function, Vec<PkgBlockMeta>) {
        let mut f = Function::new("pkg");
        f.kind = FuncKind::Package { phase: 0 };
        f.push_block(Block {
            insts: vec![
                Inst::Alu {
                    op: AluOp::Add,
                    rd: Reg::int(20),
                    rs1: Reg::int(21),
                    rs2: Src::Reg(Reg::int(22)),
                },
                Inst::Alu {
                    op: AluOp::Mul,
                    rd: Reg::int(23),
                    rs1: Reg::int(21),
                    rs2: Src::Imm(2),
                },
            ],
            term: Terminator::Br {
                cond: Cond::Eq,
                rs1: Reg::int(24),
                rs2: Src::Imm(0),
                taken: CodeRef {
                    func: FuncId(u32::MAX - 1),
                    block: BlockId(2),
                },
                not_taken: CodeRef {
                    func: FuncId(u32::MAX - 1),
                    block: BlockId(1),
                },
            },
        });
        f.push_block(Block {
            insts: vec![Inst::Mov {
                rd: Reg::ARG0,
                rs: Reg::int(23),
            }],
            term: Terminator::Ret,
        });
        f.push_block(Block {
            insts: vec![Inst::Consume {
                regs: vec![Reg::int(20)],
            }],
            term: Terminator::Goto(CodeRef::new(0, 5)),
        });
        // Fix self references: blocks refer to this function's id (0 here).
        f.id = FuncId(u32::MAX - 1);
        let meta = vec![
            PkgBlockMeta {
                origin: CodeRef::new(0, 0),
                context: vec![],
                is_exit: false,
                is_stub: false,
            },
            PkgBlockMeta {
                origin: CodeRef::new(0, 1),
                context: vec![],
                is_exit: false,
                is_stub: false,
            },
            PkgBlockMeta {
                origin: CodeRef::new(0, 5),
                context: vec![],
                is_exit: true,
                is_stub: false,
            },
        ];
        (f, meta)
    }

    #[test]
    fn dead_on_hot_path_sinks_into_exit() {
        let (mut f, meta) = package_like();
        let moved = sink_cold_instructions(&mut f, &meta);
        assert_eq!(moved, 1);
        // r20's producer left the hot block...
        assert_eq!(f.block(BlockId(0)).insts.len(), 1);
        assert!(matches!(
            f.block(BlockId(0)).insts[0],
            Inst::Alu { op: AluOp::Mul, .. }
        ));
        // ...and landed in the exit block, ahead of the consumers.
        let exit = f.block(BlockId(2));
        assert!(matches!(exit.insts[0], Inst::Alu { op: AluOp::Add, .. }));
        assert!(matches!(exit.insts[1], Inst::Consume { .. }));
    }

    #[test]
    fn hot_live_values_stay() {
        let (mut f, meta) = package_like();
        sink_cold_instructions(&mut f, &meta);
        // r23 is consumed on the hot path: must remain in b0.
        assert!(f
            .block(BlockId(0))
            .insts
            .iter()
            .any(|i| i.defs().contains(&Reg::int(23))));
    }

    #[test]
    fn loads_never_sink() {
        let (mut f, meta) = package_like();
        // Replace the dead add with a dead load: must not move (a store
        // could intervene on the original path).
        f.block_mut(BlockId(0)).insts[0] = Inst::Load {
            rd: Reg::int(20),
            base: Reg::SP,
            offset: 0,
        };
        let moved = sink_cold_instructions(&mut f, &meta);
        assert_eq!(moved, 0);
        assert_eq!(f.block(BlockId(0)).insts.len(), 2);
    }

    #[test]
    fn shared_exit_blocks_prevent_sinking() {
        let (mut f, mut meta) = package_like();
        // Add a second hot block also branching to the same exit.
        let self_id = f.id;
        f.push_block(Block::empty(Terminator::Br {
            cond: Cond::Ne,
            rs1: Reg::int(24),
            rs2: Src::Imm(0),
            taken: CodeRef {
                func: self_id,
                block: BlockId(2),
            },
            not_taken: CodeRef {
                func: self_id,
                block: BlockId(1),
            },
        }));
        meta.push(PkgBlockMeta {
            origin: CodeRef::new(0, 9),
            context: vec![],
            is_exit: false,
            is_stub: false,
        });
        // Make b3 reachable: b0's hot successor now goes through b3.
        f.block_mut(BlockId(0)).term = Terminator::Br {
            cond: Cond::Eq,
            rs1: Reg::int(24),
            rs2: Src::Imm(0),
            taken: CodeRef {
                func: self_id,
                block: BlockId(2),
            },
            not_taken: CodeRef {
                func: self_id,
                block: BlockId(3),
            },
        };
        let moved = sink_cold_instructions(&mut f, &meta);
        assert_eq!(
            moved, 0,
            "two predecessors share the exit: nothing may sink"
        );
    }

    #[test]
    fn chained_producers_sink_together() {
        // r25 = r21 ^ 5; r20 = r25 + 1; only the exit consumes r20: both
        // instructions sink (fixpoint).
        let (mut f, meta) = package_like();
        f.block_mut(BlockId(0)).insts = vec![
            Inst::Alu {
                op: AluOp::Xor,
                rd: Reg::int(25),
                rs1: Reg::int(21),
                rs2: Src::Imm(5),
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg::int(20),
                rs1: Reg::int(25),
                rs2: Src::Imm(1),
            },
            Inst::Alu {
                op: AluOp::Mul,
                rd: Reg::int(23),
                rs1: Reg::int(21),
                rs2: Src::Imm(2),
            },
        ];
        let moved = sink_cold_instructions(&mut f, &meta);
        assert_eq!(moved, 2);
        let exit = f.block(BlockId(2));
        // Order preserved: xor computes before add.
        assert!(matches!(exit.insts[0], Inst::Alu { op: AluOp::Xor, .. }));
        assert!(matches!(exit.insts[1], Inst::Alu { op: AluOp::Add, .. }));
    }
}
