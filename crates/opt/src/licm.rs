//! Loop-invariant code motion on packages.
//!
//! The paper's stated advantage of regions over traces is loop-level
//! optimization scope (Sections 1–2); it leaves the loop transformations
//! themselves as future work ("various classic, ILP, and loop
//! optimizations could also be applied", Section 5.4). This pass is that
//! extension: pure instructions whose operands do not change inside a
//! natural loop of a package are hoisted into a fresh preheader.
//!
//! Hoisting conditions (classic, with package-specific additions):
//!
//! * the instruction is pure (speculation-safe in this ISA — no traps);
//! * every operand is loop-invariant (no definition inside the loop);
//! * its destination has exactly one definition in the loop and is not
//!   live into the header (hoisting must not clobber a value the loop
//!   first *reads*);
//! * **package side-entrance rule**: the function has no incoming links
//!   and the loop header is not a package entry block — a side entrance
//!   would jump past the preheader (the same reason the paper's Section
//!   5.4 notes that eliminating side entrances increases optimization
//!   scope).

use std::collections::BTreeSet;
use vp_isa::{BlockId, CodeRef, Inst};
use vp_program::loops::natural_loops;
use vp_program::{Block, Cfg, Function, Liveness, Terminator};

/// Runs LICM on one package function. `entries` are the package's entry
/// blocks (launch-point targets), which must not acquire a preheader.
/// Returns the number of instructions hoisted.
pub fn hoist_loop_invariants(f: &mut Function, entries: &[BlockId]) -> usize {
    let mut hoisted_total = 0;
    // Loops are recomputed after each preheader insertion (block ids shift
    // relationships); iterate until no loop yields a hoist.
    loop {
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let loops = natural_loops(&cfg);
        let mut did = 0;

        for l in &loops {
            if entries.contains(&l.header) {
                continue;
            }
            // Definitions inside the loop, per register.
            let mut def_count = vec![0u32; vp_isa::reg::NUM_REGS];
            for &b in &l.body {
                for inst in &f.block(b).insts {
                    for d in inst.defs() {
                        def_count[d.index()] += 1;
                    }
                }
                for d in f.block(b).term.defs() {
                    def_count[d.index()] += 1;
                }
            }

            // Collect hoistable instructions in deterministic order,
            // honouring dependences among themselves: repeat until stable
            // within this loop.
            let mut hoisted: Vec<Inst> = Vec::new();
            let mut moved = true;
            while moved {
                moved = false;
                for &b in &l.body {
                    let block = f.block(b);
                    let candidate = block.insts.iter().position(|inst| {
                        if inst.is_mem() || matches!(inst, Inst::Consume { .. }) {
                            return false;
                        }
                        let defs = inst.defs();
                        let Some(&d) = defs.first() else { return false };
                        inst.uses().iter().all(|u| def_count[u.index()] == 0)
                            && def_count[d.index()] == 1
                            && !live.live_in(l.header).contains(d)
                    });
                    if let Some(i) = candidate {
                        let inst = f.block_mut(b).insts.remove(i);
                        for dreg in inst.defs() {
                            def_count[dreg.index()] = 0;
                        }
                        hoisted.push(inst);
                        moved = true;
                    }
                }
            }
            if hoisted.is_empty() {
                continue;
            }

            // Build the preheader and retarget the non-latch predecessors.
            did += hoisted.len();
            let header = l.header;
            let latches: BTreeSet<BlockId> = l.latches.iter().copied().collect();
            let pre = f.push_block(Block {
                insts: hoisted,
                term: Terminator::Goto(CodeRef {
                    func: f.id,
                    block: header,
                }),
            });
            let self_id = f.id;
            for (bid, _) in f.blocks_iter().map(|(b, _)| (b, ())).collect::<Vec<_>>() {
                if bid == pre || latches.contains(&bid) {
                    continue;
                }
                retarget(f.block_mut(bid), self_id, header, pre);
            }
            // One structural change per outer iteration keeps the analyses
            // coherent.
            break;
        }

        hoisted_total += did;
        if did == 0 {
            return hoisted_total;
        }
    }
}

/// Rewrites intra-function transfers `-> header` into `-> pre`.
fn retarget(block: &mut Block, func: vp_isa::FuncId, header: BlockId, pre: BlockId) {
    let is_header = |r: &CodeRef| r.func == func && r.block == header;
    let new_ref = CodeRef { func, block: pre };
    match &mut block.term {
        Terminator::Goto(t) if is_header(t) => *t = new_ref,
        Terminator::Br {
            taken, not_taken, ..
        } => {
            if is_header(taken) {
                *taken = new_ref;
            }
            if is_header(not_taken) {
                *not_taken = new_ref;
            }
        }
        Terminator::Call { ret_to, .. } | Terminator::CallThrough { ret_to, .. }
            if *ret_to == header =>
        {
            *ret_to = pre;
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{AluOp, FuncId, Reg, Src};
    use vp_program::{FuncKind, ProgramBuilder};

    /// main: acc = 0; for i in 0..50 { inv = 7*9; acc += inv + i } halt.
    fn invariant_loop() -> vp_program::Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let (i, acc, inv, seven) = (Reg::int(20), Reg::int(21), Reg::int(22), Reg::int(23));
            f.li(acc, 0);
            f.li(seven, 7);
            f.for_range(i, 0, 50, |f| {
                f.alu(AluOp::Mul, inv, seven, Src::Imm(9)); // invariant
                f.add(acc, acc, inv);
                f.add(acc, acc, i);
            });
            f.halt();
        });
        pb.build()
    }

    fn run(p: &vp_program::Program) -> u64 {
        use vp_exec::{Executor, NullSink, RunConfig};
        let layout = vp_program::Layout::natural(p);
        let mut ex = Executor::new(p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        ex.reg(Reg::int(21))
    }

    #[test]
    fn invariant_multiply_is_hoisted_and_semantics_hold() {
        let mut p = invariant_loop();
        let before = run(&p);
        let f = p.func_mut(FuncId(0));
        f.kind = FuncKind::Package { phase: 0 };
        let hoisted = hoist_loop_invariants(f, &[]);
        assert!(hoisted >= 1, "the multiply must hoist");
        p.validate().unwrap();
        assert_eq!(run(&p), before, "LICM must preserve the result");
        // The multiply no longer sits in the loop body.
        let cfg = Cfg::new(p.func(FuncId(0)));
        let loops = natural_loops(&cfg);
        for l in &loops {
            for &b in &l.body {
                for inst in &p.func(FuncId(0)).block(b).insts {
                    assert!(
                        !matches!(inst, Inst::Alu { op: AluOp::Mul, .. }),
                        "multiply still inside the loop"
                    );
                }
            }
        }
    }

    #[test]
    fn loop_carried_values_stay_put() {
        let mut p = invariant_loop();
        let f = p.func_mut(FuncId(0));
        f.kind = FuncKind::Package { phase: 0 };
        hoist_loop_invariants(f, &[]);
        // acc += ... is loop-carried and must remain in the body.
        let cfg = Cfg::new(p.func(FuncId(0)));
        let loops = natural_loops(&cfg);
        let in_loop_adds: usize = loops
            .iter()
            .flat_map(|l| l.body.iter())
            .map(|&b| {
                p.func(FuncId(0))
                    .block(b)
                    .insts
                    .iter()
                    .filter(|i| matches!(i, Inst::Alu { op: AluOp::Add, .. }))
                    .count()
            })
            .sum();
        assert!(in_loop_adds >= 2, "loop-carried adds must not hoist");
    }

    #[test]
    fn entry_headers_are_skipped() {
        let mut p = invariant_loop();
        let f = p.func_mut(FuncId(0));
        f.kind = FuncKind::Package { phase: 0 };
        // Claim every block is an entry: nothing may be hoisted.
        let all: Vec<BlockId> = f.block_ids().collect();
        assert_eq!(hoist_loop_invariants(f, &all), 0);
    }

    #[test]
    fn values_live_into_header_are_not_clobbered() {
        // x is read before being rewritten in the loop: the rewrite must
        // not hoist (it would clobber the pre-loop value).
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let (i, x, acc) = (Reg::int(20), Reg::int(21), Reg::int(22));
            f.li(x, 100);
            f.li(acc, 0);
            f.for_range(i, 0, 10, |f| {
                f.add(acc, acc, x); // reads x (old value on iter 0)
                f.alu(AluOp::Mul, x, Reg::int(23), Src::Imm(3)); // writes x
            });
            f.halt();
        });
        let mut p = pb.build();
        let before = run(&p);
        let f = p.func_mut(FuncId(0));
        f.kind = FuncKind::Package { phase: 0 };
        hoist_loop_invariants(f, &[]);
        assert_eq!(run(&p), before, "x's first read must still see 100");
    }
}
