//! # vp-opt
//!
//! Post-extraction optimization of Vacuum Packing packages: the "code
//! layout and scheduling passes" evaluated in the paper's Section 5.4.
//!
//! Three passes compose:
//!
//! * [`propagate_weights`] — block/arc weight estimation from the BBB taken
//!   probabilities (the method of the paper's reference \[4\]);
//! * [`chain_layout`] — profile-guided relayout: heaviest arcs become
//!   fall-throughs, cold exits sink to the end;
//! * [`schedule_block`] — list rescheduling for the Table 2 machine.
//!
//! [`optimize_packages`] applies all of it to every package of a
//! [`PackOutput`], returning the optimized program and the layout order to
//! encode it with.

#![warn(missing_docs)]

pub mod chains;
pub mod licm;
pub mod sched;
pub mod sink;
pub mod weights;

pub use chains::chain_layout;
pub use licm::hoist_loop_invariants;
pub use sched::{schedule_block, sequential_cycles};
pub use sink::sink_cold_instructions;
pub use weights::{propagate_weights, Weights};

use vp_core::{PackOutput, Region};
use vp_program::{Cfg, Function, LayoutOrder, Program};
use vp_sim::MachineConfig;
use vp_trace::Counter;

static OPT_PACKAGES: Counter = Counter::new("opt.packages");
static OPT_INSTS_SUNK: Counter = Counter::new("opt.insts_sunk");
static OPT_INSTS_HOISTED: Counter = Counter::new("opt.insts_hoisted");
static OPT_BLOCKS_RESCHEDULED: Counter = Counter::new("opt.blocks_rescheduled");
static OPT_INSTS_RESCHEDULED: Counter = Counter::new("opt.insts_rescheduled");
static OPT_BLOCKS_RELAID: Counter = Counter::new("opt.blocks_relaid_out");

/// Which optimization passes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Run profile-guided block relayout.
    pub relayout: bool,
    /// Run list rescheduling inside blocks.
    pub reschedule: bool,
    /// Run cold-instruction sinking into exit blocks (the
    /// redundancy-elimination extension the paper suggests in Section 5.4
    /// but does not evaluate; off by default to mirror the paper's
    /// measured configuration).
    pub sink_cold: bool,
    /// Run loop-invariant code motion on packages (the loop-level
    /// future-work extension; off by default — not in the paper's measured
    /// configuration).
    pub licm: bool,
}

impl Default for OptConfig {
    fn default() -> OptConfig {
        OptConfig {
            relayout: true,
            reschedule: true,
            sink_cold: false,
            licm: false,
        }
    }
}

impl OptConfig {
    /// Stable structural fingerprint of the pass selection, for
    /// content-addressed result caching.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vp_isa::Fnv::new();
        h.write_str("OptConfig");
        h.write_bool(self.relayout);
        h.write_bool(self.reschedule);
        h.write_bool(self.sink_cold);
        h.write_bool(self.licm);
        h.finish()
    }

    /// Every pass on, including the extensions the paper suggests but does
    /// not evaluate (cold-instruction sinking, LICM).
    pub fn full() -> OptConfig {
        OptConfig {
            relayout: true,
            reschedule: true,
            sink_cold: true,
            licm: true,
        }
    }
}

/// Optimizes every package of `out`: rescheduling mutates package blocks,
/// relayout chooses their emission order. Original code is left untouched,
/// exactly as the paper's extracted-package experiments do.
///
/// Returns the optimized program and the [`LayoutOrder`] to encode it with.
pub fn optimize_packages(
    out: &PackOutput,
    machine: &MachineConfig,
    cfg: &OptConfig,
) -> (Program, LayoutOrder) {
    let mut prog = out.program.clone();
    let mut order = LayoutOrder::natural(&prog);
    let _s = vp_trace::span("opt.optimize");

    for pi in &out.packages {
        OPT_PACKAGES.incr();
        let region = out
            .regions
            .iter()
            .find(|r| r.phase == pi.phase)
            .expect("package's region present");

        if cfg.sink_cold {
            let sunk = sink_cold_instructions(prog.func_mut(pi.func), &pi.meta);
            OPT_INSTS_SUNK.add(sunk as u64);
        }

        if cfg.licm && pi.links_in == 0 {
            let entries: Vec<vp_isa::BlockId> = pi.entry_blocks.iter().map(|(b, _)| *b).collect();
            let hoisted = hoist_loop_invariants(prog.func_mut(pi.func), &entries);
            OPT_INSTS_HOISTED.add(hoisted as u64);
        }

        if cfg.reschedule {
            let f = prog.func_mut(pi.func);
            for block in &mut f.blocks {
                let (scheduled, _) = schedule_block(&block.insts, machine);
                if vp_trace::enabled() {
                    let moved = scheduled
                        .iter()
                        .zip(block.insts.iter())
                        .filter(|(a, b)| a != b)
                        .count();
                    if moved > 0 {
                        OPT_BLOCKS_RESCHEDULED.incr();
                        OPT_INSTS_RESCHEDULED.add(moved as u64);
                    }
                }
                block.insts = scheduled;
            }
        }

        if cfg.relayout {
            let f = prog.func(pi.func);
            let fcfg = Cfg::new(f);
            let taken_prob = |b: vp_isa::BlockId| package_taken_prob(pi, region, b);
            let entries: Vec<vp_isa::BlockId> = pi.entry_blocks.iter().map(|(b, _)| *b).collect();
            let fentry = f.entry;
            let entry_weight = move |b: vp_isa::BlockId| {
                if b == fentry || entries.contains(&b) {
                    1.0
                } else {
                    0.0
                }
            };
            let w = propagate_weights(f, &fcfg, taken_prob, entry_weight);
            let chained = chain_layout(f, &w);
            OPT_BLOCKS_RELAID.add(chained.len() as u64);
            order.set_block_order(pi.func, chained);
        }
    }
    (prog, order)
}

/// Taken probability of a package block's branch, looked up through its
/// provenance in the phase region; unprofiled branches report 0.5.
fn package_taken_prob(pi: &vp_core::PackageInfo, region: &Region, b: vp_isa::BlockId) -> f64 {
    let Some(meta) = pi.meta.get(b.0 as usize) else {
        return 0.5;
    };
    if meta.is_exit {
        return 0.5;
    }
    region
        .mark(meta.origin.func)
        .and_then(|m| m.taken_prob(meta.origin.block))
        .unwrap_or(0.5)
}

/// Reschedules every block of a function in place (utility for ablations
/// that optimize original code too).
pub fn reschedule_function(f: &mut Function, machine: &MachineConfig) {
    for block in &mut f.blocks {
        let (scheduled, _) = schedule_block(&block.insts, machine);
        block.insts = scheduled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vp_core::{identify_region, pack, CfgCache, PackConfig};
    use vp_hsd::{Phase, PhaseBranch};
    use vp_isa::{CodeRef, Cond, FuncId, Reg, Src};
    use vp_program::{Layout, ProgramBuilder};

    fn sample() -> (Program, Phase) {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let i = Reg::int(20);
            let acc = Reg::int(21);
            f.li(i, 0);
            f.li(acc, 0);
            f.while_(
                |f| f.cond(Cond::Lt, i, Src::Imm(500)),
                |f| {
                    // A dependence chain the scheduler can interleave.
                    f.load(Reg::int(22), Reg::SP, -8);
                    f.add(Reg::int(23), Reg::int(22), Reg::int(22));
                    f.add(acc, acc, Reg::int(23));
                    let c = f.cond(Cond::Eq, i, Src::Imm(250));
                    f.if_(c, |f| f.nop());
                    f.addi(i, i, 1);
                },
            );
            f.halt();
        });
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut branches = BTreeMap::new();
        for (bid, b) in p.func(FuncId(0)).blocks_iter() {
            if b.term.is_cond_branch() {
                let addr = layout.branch_addr(CodeRef {
                    func: FuncId(0),
                    block: bid,
                });
                branches.insert(addr, PhaseBranch::once(500, 499));
            }
        }
        (
            p,
            Phase {
                id: 0,
                branches,
                first_detected_at: 0,
                detections: 1,
            },
        )
    }

    #[test]
    fn optimize_produces_valid_program_and_layout() {
        let (p, phase) = sample();
        let layout = Layout::natural(&p);
        let out = pack(
            &p,
            &layout,
            std::slice::from_ref(&phase),
            &PackConfig::default(),
        );
        assert!(!out.packages.is_empty());
        let (opt, order) = optimize_packages(&out, &MachineConfig::table2(), &OptConfig::default());
        assert!(opt.validate().is_ok());
        let _ = Layout::new(&opt, &order); // panics if the order is bad
    }

    #[test]
    fn reschedule_only_keeps_block_order() {
        let (p, phase) = sample();
        let layout = Layout::natural(&p);
        let out = pack(
            &p,
            &layout,
            std::slice::from_ref(&phase),
            &PackConfig::default(),
        );
        let cfg = OptConfig {
            relayout: false,
            reschedule: true,
            sink_cold: false,
            licm: false,
        };
        let (opt, order) = optimize_packages(&out, &MachineConfig::table2(), &cfg);
        let natural = LayoutOrder::natural(&opt);
        for (a, b) in order.blocks.iter().zip(natural.blocks.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn relayout_moves_exit_blocks_off_hot_path() {
        let (p, phase) = sample();
        let layout = Layout::natural(&p);
        let out = pack(
            &p,
            &layout,
            std::slice::from_ref(&phase),
            &PackConfig::default(),
        );
        let (_, order) = optimize_packages(&out, &MachineConfig::table2(), &OptConfig::default());
        let pi = &out.packages[0];
        let block_order = &order.blocks[pi.func.0 as usize];
        // All exit blocks must appear after all hot blocks of this package.
        let first_exit = block_order
            .iter()
            .position(|b| pi.meta[b.0 as usize].is_exit);
        let last_hot = block_order
            .iter()
            .rposition(|b| !pi.meta[b.0 as usize].is_exit);
        if let (Some(fe), Some(lh)) = (first_exit, last_hot) {
            assert!(
                fe > 0,
                "an exit block must not lead the package: {block_order:?}"
            );
            let _ = lh;
        }
    }

    #[test]
    fn region_ident_reachable_from_opt_tests() {
        // Smoke-check the re-exported pipeline pieces compose.
        let (p, phase) = sample();
        let layout = Layout::natural(&p);
        let mut cfgs = CfgCache::new();
        let region = identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default());
        assert!(region.hot_block_count() > 0);
    }
}
