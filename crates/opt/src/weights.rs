//! Profile-weight propagation from taken probabilities.
//!
//! The paper (Section 5.4, after \[4\]) computes block and arc weights for
//! the extracted packages from the taken probabilities the BBB recorded for
//! each branch. This module solves the flow equations with damped
//! Gauss-Seidel iteration in reverse postorder: entries inject weight,
//! branches split their block's weight by taken probability, and loops
//! converge geometrically as long as some exit probability remains.

use std::collections::HashMap;
use vp_isa::BlockId;
use vp_program::{Cfg, EdgeKind, Function};

/// Flow solution for one function.
#[derive(Debug, Clone)]
pub struct Weights {
    block: Vec<f64>,
    arc: HashMap<(BlockId, EdgeKind), f64>,
}

impl Weights {
    /// Estimated execution weight of a block.
    pub fn block(&self, b: BlockId) -> f64 {
        self.block[b.0 as usize]
    }

    /// Estimated traversal weight of an arc.
    pub fn arc(&self, from: BlockId, kind: EdgeKind) -> f64 {
        self.arc.get(&(from, kind)).copied().unwrap_or(0.0)
    }
}

/// Iteration limit; each sweep is O(blocks).
const MAX_SWEEPS: usize = 200;
/// Convergence threshold on the largest relative block-weight change.
const EPSILON: f64 = 1e-4;
/// Loop-back probabilities are clamped below one so the system stays
/// contractive even for branches the profile saw as always-taken.
const MAX_PROB: f64 = 0.995;

/// Propagates weights through `f`.
///
/// * `taken_prob(b)` — taken probability of the conditional branch ending
///   `b` (callers return `0.5` for unprofiled branches).
/// * `entry_weight(b)` — externally injected weight (launch points,
///   function entries, incoming links).
pub fn propagate_weights(
    f: &Function,
    cfg: &Cfg,
    taken_prob: impl Fn(BlockId) -> f64,
    entry_weight: impl Fn(BlockId) -> f64,
) -> Weights {
    let n = f.blocks.len();
    let mut w = vec![0.0f64; n];

    // Cache per-block successor splits.
    let split: Vec<Vec<(BlockId, EdgeKind, f64)>> = (0..n)
        .map(|i| {
            let b = BlockId(i as u32);
            let succs = f.successors(b);
            match succs.len() {
                0 => vec![],
                1 => vec![(succs[0].0, succs[0].1, 1.0)],
                _ => {
                    let p = taken_prob(b).clamp(1.0 - MAX_PROB, MAX_PROB);
                    succs
                        .into_iter()
                        .map(|(t, kind)| {
                            let frac = match kind {
                                EdgeKind::Taken => p,
                                EdgeKind::NotTaken => 1.0 - p,
                                _ => 1.0,
                            };
                            (t, kind, frac)
                        })
                        .collect()
                }
            }
        })
        .collect();

    for _ in 0..MAX_SWEEPS {
        let mut max_delta = 0.0f64;
        for &b in cfg.rpo() {
            let i = b.0 as usize;
            let mut incoming = entry_weight(b);
            for &(p, kind) in cfg.preds(b) {
                let pw = w[p.0 as usize];
                if pw > 0.0 {
                    if let Some(&(_, _, frac)) = split[p.0 as usize]
                        .iter()
                        .find(|&&(t, k, _)| t == b && k == kind)
                    {
                        incoming += pw * frac;
                    }
                }
            }
            let delta = (incoming - w[i]).abs() / incoming.max(1.0);
            max_delta = max_delta.max(delta);
            w[i] = incoming;
        }
        if max_delta < EPSILON {
            break;
        }
    }

    let mut arc = HashMap::new();
    for i in 0..n {
        for &(t, kind, frac) in &split[i] {
            let _ = t;
            arc.insert((BlockId(i as u32), kind), w[i] * frac);
        }
    }
    Weights { block: w, arc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::FuncId;
    use vp_isa::{Cond, Reg, Src};
    use vp_program::ProgramBuilder;

    fn entry_only(entry: BlockId) -> impl Fn(BlockId) -> f64 {
        move |b| if b == entry { 1.0 } else { 0.0 }
    }

    #[test]
    fn diamond_splits_by_probability() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let r = Reg::int(8);
            f.li(r, 1);
            let c = f.cond(Cond::Eq, r, Src::Imm(1));
            f.if_else(c, |f| f.nop(), |f| f.nop());
            f.halt();
        });
        let p = pb.build();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        let w = propagate_weights(f, &cfg, |_| 0.8, entry_only(f.entry));
        // then-arm gets 0.8, else-arm 0.2, join back to 1.0.
        assert!((w.block(BlockId(1)) - 0.8).abs() < 1e-6);
        assert!((w.block(BlockId(2)) - 0.2).abs() < 1e-6);
        assert!((w.block(BlockId(3)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn loop_weight_is_geometric_series() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let i = Reg::int(8);
            f.li(i, 0);
            f.while_(|f| f.cond(Cond::Lt, i, Src::Imm(10)), |f| f.addi(i, i, 1));
            f.halt();
        });
        let p = pb.build();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        // Loop-back taken with p = 0.9: header weight = 1/(1-0.9) = 10.
        let w = propagate_weights(f, &cfg, |_| 0.9, entry_only(f.entry));
        let header = f
            .blocks_iter()
            .find(|(_, b)| b.term.is_cond_branch())
            .map(|(id, _)| id)
            .unwrap();
        let hw = w.block(header);
        assert!((hw - 10.0).abs() < 0.5, "header weight {hw} should be ~10");
    }

    #[test]
    fn arc_weights_sum_to_block_weight() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let r = Reg::int(8);
            f.li(r, 1);
            let c = f.cond(Cond::Eq, r, Src::Imm(1));
            f.if_else(c, |f| f.nop(), |f| f.nop());
            f.halt();
        });
        let p = pb.build();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        let w = propagate_weights(f, &cfg, |_| 0.7, entry_only(f.entry));
        let taken = w.arc(BlockId(0), EdgeKind::Taken);
        let nt = w.arc(BlockId(0), EdgeKind::NotTaken);
        assert!((taken + nt - w.block(BlockId(0))).abs() < 1e-9);
    }

    #[test]
    fn always_taken_probability_is_clamped() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let i = Reg::int(8);
            f.li(i, 0);
            f.while_(|f| f.cond(Cond::Lt, i, Src::Imm(10)), |f| f.addi(i, i, 1));
            f.halt();
        });
        let p = pb.build();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        // Profile says taken 100% — the solver must not diverge.
        let w = propagate_weights(f, &cfg, |_| 1.0, entry_only(f.entry));
        let header = f
            .blocks_iter()
            .find(|(_, b)| b.term.is_cond_branch())
            .map(|(id, _)| id)
            .unwrap();
        assert!(w.block(header).is_finite());
        assert!(w.block(header) <= 1.0 / (1.0 - MAX_PROB) + 1.0);
    }
}
