//! Local list scheduling for the Table 2 EPIC machine.
//!
//! Packages are "a platform for efficient optimization" (Section 3.3); the
//! paper's speedup experiment applies rescheduling to the extracted code.
//! This scheduler reorders the straight-line instructions of each block to
//! minimize issue stalls on the in-order, multi-unit machine: a dependence
//! DAG (register RAW/WAR/WAW plus conservative memory ordering) is
//! list-scheduled by critical-path priority under issue-width and
//! functional-unit constraints.

use vp_isa::{FuClass, Inst};
use vp_sim::MachineConfig;

fn fu_index(c: FuClass) -> usize {
    match c {
        FuClass::IntAlu => 0,
        FuClass::Fp => 1,
        FuClass::Mem => 2,
        FuClass::Branch => 3,
    }
}

fn units(m: &MachineConfig, c: FuClass) -> u32 {
    match c {
        FuClass::IntAlu => m.int_alu_units,
        FuClass::Fp => m.fp_units,
        FuClass::Mem => m.mem_units,
        FuClass::Branch => m.branch_units,
    }
}

/// A dependence edge: `to` may start no earlier than `start(from) + lat`.
#[derive(Debug, Clone, Copy)]
struct Dep {
    to: usize,
    lat: u32,
}

fn build_deps(insts: &[Inst]) -> Vec<Vec<Dep>> {
    let n = insts.len();
    let mut deps: Vec<Vec<Dep>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (&insts[i], &insts[j]);
            let mut lat: Option<u32> = None;
            // RAW: j reads what i writes.
            for d in a.defs() {
                if b.uses().contains(&d) {
                    lat = Some(lat.unwrap_or(0).max(a.latency()));
                }
                // WAW: j rewrites i's destination.
                if b.defs().contains(&d) {
                    lat = Some(lat.unwrap_or(0).max(1));
                }
            }
            // WAR: j overwrites something i reads (same-cycle issue is
            // fine on this machine: operands are read at issue).
            for u in a.uses() {
                if b.defs().contains(&u) {
                    lat = Some(lat.unwrap_or(0));
                }
            }
            // Memory ordering: stores are barriers; loads may reorder
            // freely among themselves.
            if a.is_mem() && b.is_mem() {
                let a_store = matches!(a, Inst::Store { .. });
                let b_store = matches!(b, Inst::Store { .. });
                if a_store || b_store {
                    lat = Some(lat.unwrap_or(0).max(1));
                }
            }
            if let Some(l) = lat {
                deps[i].push(Dep { to: j, lat: l });
            }
        }
    }
    deps
}

/// Critical-path-to-exit priority per instruction.
fn priorities(insts: &[Inst], deps: &[Vec<Dep>]) -> Vec<u32> {
    let n = insts.len();
    let mut prio = vec![0u32; n];
    for i in (0..n).rev() {
        let own = insts[i].latency();
        let mut best = own;
        for d in &deps[i] {
            best = best.max(own.max(d.lat) + prio[d.to]);
        }
        prio[i] = best;
    }
    prio
}

/// Reorders `insts` by list scheduling; returns the new order and the
/// estimated schedule length in cycles.
pub fn schedule_block(insts: &[Inst], machine: &MachineConfig) -> (Vec<Inst>, u32) {
    let n = insts.len();
    if n <= 1 {
        return (insts.to_vec(), n as u32);
    }
    let deps = build_deps(insts);
    let prio = priorities(insts, &deps);

    let mut indeg = vec![0u32; n];
    for edges in &deps {
        for d in edges {
            indeg[d.to] += 1;
        }
    }
    let mut est = vec![0u32; n]; // earliest start cycle
    let mut scheduled = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cycle: u32 = 0;
    let mut remaining = n;

    while remaining > 0 {
        let mut slots = machine.issue_width;
        let mut fu_left = [
            units(machine, FuClass::IntAlu),
            units(machine, FuClass::Fp),
            units(machine, FuClass::Mem),
            units(machine, FuClass::Branch),
        ];
        loop {
            // Highest-priority ready instruction that fits this cycle.
            let pick = (0..n)
                .filter(|&i| !scheduled[i] && indeg[i] == 0 && est[i] <= cycle)
                .filter(|&i| fu_left[fu_index(insts[i].fu())] > 0)
                .max_by_key(|&i| (prio[i], std::cmp::Reverse(i)));
            let Some(i) = pick else { break };
            if slots == 0 {
                break;
            }
            scheduled[i] = true;
            slots -= 1;
            fu_left[fu_index(insts[i].fu())] -= 1;
            order.push(i);
            remaining -= 1;
            for d in &deps[i] {
                indeg[d.to] -= 1;
                est[d.to] = est[d.to].max(cycle + d.lat);
            }
        }
        cycle += 1;
    }
    (order.into_iter().map(|i| insts[i].clone()).collect(), cycle)
}

/// Estimated cycles of a block *without* reordering (issue in program
/// order under the same constraints) — used to quantify scheduling gain.
pub fn sequential_cycles(insts: &[Inst], machine: &MachineConfig) -> u32 {
    let n = insts.len();
    if n == 0 {
        return 0;
    }
    let deps = build_deps(insts);
    let mut start = vec![0u32; n];
    let mut cycle = 0u32;
    let mut slots = machine.issue_width;
    let mut fu_left = [
        units(machine, FuClass::IntAlu),
        units(machine, FuClass::Fp),
        units(machine, FuClass::Mem),
        units(machine, FuClass::Branch),
    ];
    let mut est = vec![0u32; n];
    for i in 0..n {
        let mut t = cycle.max(est[i]);
        loop {
            if t > cycle {
                cycle = t;
                slots = machine.issue_width;
                fu_left = [
                    units(machine, FuClass::IntAlu),
                    units(machine, FuClass::Fp),
                    units(machine, FuClass::Mem),
                    units(machine, FuClass::Branch),
                ];
            }
            if slots > 0 && fu_left[fu_index(insts[i].fu())] > 0 {
                break;
            }
            t += 1;
        }
        slots -= 1;
        fu_left[fu_index(insts[i].fu())] -= 1;
        start[i] = cycle;
        for d in &deps[i] {
            est[d.to] = est[d.to].max(cycle + d.lat);
        }
    }
    cycle + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{AluOp, Reg, Src};

    fn add(rd: u8, rs1: u8, rs2: u8) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            rd: Reg::int(rd),
            rs1: Reg::int(rs1),
            rs2: Src::Reg(Reg::int(rs2)),
        }
    }

    fn load(rd: u8, base: u8, off: i64) -> Inst {
        Inst::Load {
            rd: Reg::int(rd),
            base: Reg::int(base),
            offset: off,
        }
    }

    fn store(src: u8, base: u8, off: i64) -> Inst {
        Inst::Store {
            src: Reg::int(src),
            base: Reg::int(base),
            offset: off,
        }
    }

    #[test]
    fn interleaves_two_dependence_chains() {
        // Chain A: loads feeding adds; chain B independent. A naive
        // in-order sequence of chain A then chain B stalls on every load;
        // the scheduler interleaves.
        let insts = vec![
            load(20, 10, 0),
            add(21, 20, 20), // depends on load
            load(22, 10, 8),
            add(23, 22, 22),
            add(24, 11, 11), // independent
            add(25, 12, 12),
        ];
        let m = MachineConfig::table2();
        let (sched, cycles) = schedule_block(&insts, &m);
        assert_eq!(sched.len(), insts.len());
        let seq = sequential_cycles(&insts, &m);
        assert!(
            cycles <= seq,
            "scheduled {cycles} must not exceed sequential {seq}"
        );
        // Independent adds should fill a load-shadow slot: strictly fewer
        // cycles than the naive order's 3 (load; stall; add) pattern.
        assert!(
            cycles <= 3,
            "schedule should hide load latency, got {cycles}"
        );
    }

    #[test]
    fn preserves_raw_dependences() {
        let insts = vec![add(20, 10, 10), add(21, 20, 20), add(22, 21, 21)];
        let m = MachineConfig::table2();
        let (sched, cycles) = schedule_block(&insts, &m);
        assert_eq!(sched, insts, "a pure chain cannot be reordered");
        assert_eq!(cycles, 3);
    }

    #[test]
    fn stores_are_not_reordered_past_loads() {
        let insts = vec![store(20, 10, 0), load(21, 10, 0), store(22, 10, 8)];
        let m = MachineConfig::table2();
        let (sched, _) = schedule_block(&insts, &m);
        let pos = |needle: &Inst| sched.iter().position(|i| i == needle).unwrap();
        assert!(pos(&insts[0]) < pos(&insts[1]));
        assert!(pos(&insts[1]) < pos(&insts[2]));
    }

    #[test]
    fn war_allows_same_cycle_but_not_inversion() {
        // i0 reads r20; i1 writes r20: i1 must not move before i0.
        let insts = vec![
            add(21, 20, 20),
            Inst::Li {
                rd: Reg::int(20),
                imm: 5,
            },
        ];
        let m = MachineConfig::table2();
        let (sched, _) = schedule_block(&insts, &m);
        let w = sched
            .iter()
            .position(|i| matches!(i, Inst::Li { .. }))
            .unwrap();
        let r = sched
            .iter()
            .position(|i| matches!(i, Inst::Alu { .. }))
            .unwrap();
        assert!(r < w);
    }

    #[test]
    fn fu_limits_respected_in_estimate() {
        // 10 independent int ops, 5 ALUs: at least 2 cycles.
        let insts: Vec<Inst> = (0..10).map(|i| add(20 + i, 10, 10)).collect();
        let m = MachineConfig::table2();
        let (_, cycles) = schedule_block(&insts, &m);
        assert_eq!(cycles, 2);
    }

    #[test]
    fn empty_and_single_blocks() {
        let m = MachineConfig::table2();
        assert_eq!(schedule_block(&[], &m).0.len(), 0);
        let one = vec![add(20, 10, 10)];
        assert_eq!(schedule_block(&one, &m).0, one);
    }
}
