//! Profile-guided block relayout (bottom-up chain formation in the style
//! of Pettis–Hansen).
//!
//! The heaviest control-flow arcs become fall-throughs: arcs are visited in
//! descending weight, merging the chain ending at the source with the chain
//! starting at the target. Chains are then emitted starting with the one
//! holding the hottest entry, followed by the rest in descending weight —
//! pushing exit blocks and other cold code to the end of the function, so
//! the hot path is sequential for the fetch unit and the instruction cache.

use crate::weights::Weights;
use vp_isa::BlockId;
use vp_program::Function;

/// Computes a block emission order for `f` given arc weights.
///
/// The returned order contains every block exactly once; feed it to
/// [`vp_program::LayoutOrder::set_block_order`].
pub fn chain_layout(f: &Function, weights: &Weights) -> Vec<BlockId> {
    let n = f.blocks.len();
    if n == 0 {
        return vec![];
    }

    // Collect intra-function arcs with weights.
    let mut arcs: Vec<(f64, BlockId, BlockId)> = Vec::new();
    for (b, _) in f.blocks_iter() {
        for (t, kind) in f.successors(b) {
            if t != b {
                arcs.push((weights.arc(b, kind), b, t));
            }
        }
    }
    arcs.sort_by(|a, b| b.0.total_cmp(&a.0));

    // Union-find over chains, tracking each chain's block sequence.
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<BlockId>> = (0..n).map(|i| vec![BlockId(i as u32)]).collect();

    for (w, from, to) in arcs {
        if w <= 0.0 {
            break;
        }
        let (cf, ct) = (chain_of[from.0 as usize], chain_of[to.0 as usize]);
        if cf == ct {
            continue;
        }
        // Merge only tail-to-head so fall-through is exact.
        if chains[cf].last() == Some(&from) && chains[ct].first() == Some(&to) {
            let tail = std::mem::take(&mut chains[ct]);
            for b in &tail {
                chain_of[b.0 as usize] = cf;
            }
            chains[cf].extend(tail);
        }
    }

    // Order chains: the entry's chain first, then by descending weight.
    let entry_chain = chain_of[f.entry.0 as usize];
    let mut indexed: Vec<(usize, f64)> = chains
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(i, c)| (i, c.iter().map(|&b| weights.block(b)).sum::<f64>()))
        .collect();
    indexed.sort_by(|a, b| {
        let ka = (a.0 != entry_chain, std::cmp::Reverse(ordered_f64(a.1)), a.0);
        let kb = (b.0 != entry_chain, std::cmp::Reverse(ordered_f64(b.1)), b.0);
        ka.cmp(&kb)
    });

    let mut out = Vec::with_capacity(n);
    for (i, _) in indexed {
        out.extend(chains[i].iter().copied());
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Total-order wrapper for weight comparison.
fn ordered_f64(x: f64) -> u64 {
    // Weights are non-negative and finite; map to ordered integer space.
    x.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::propagate_weights;
    use vp_isa::FuncId;
    use vp_isa::{Cond, Reg, Src};
    use vp_program::{Cfg, Layout, LayoutOrder, Program, ProgramBuilder, TermEncoding};

    fn biased_diamond(p_taken: f64) -> (Program, Vec<BlockId>) {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let r = Reg::int(8);
            f.li(r, 1);
            let c = f.cond(Cond::Eq, r, Src::Imm(1));
            f.if_else(c, |f| f.nop(), |f| f.nop());
            f.halt();
        });
        let p = pb.build();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        let w = propagate_weights(
            f,
            &cfg,
            |_| p_taken,
            |b| if b == f.entry { 1.0 } else { 0.0 },
        );
        let order = chain_layout(f, &w);
        (p, order)
    }

    #[test]
    fn hot_arm_follows_branch() {
        // Strongly taken: the then-arm (block 1) must immediately follow
        // the branch block (block 0).
        let (_, order) = biased_diamond(0.95);
        let pos = |b: u32| order.iter().position(|x| x.0 == b).unwrap();
        assert_eq!(
            pos(1),
            pos(0) + 1,
            "hot taken arm should fall through: {order:?}"
        );
    }

    #[test]
    fn cold_arm_follows_when_not_taken_biased() {
        let (_, order) = biased_diamond(0.05);
        let pos = |b: u32| order.iter().position(|x| x.0 == b).unwrap();
        assert_eq!(
            pos(2),
            pos(0) + 1,
            "not-taken arm should fall through: {order:?}"
        );
    }

    #[test]
    fn order_is_a_permutation() {
        let (p, order) = biased_diamond(0.5);
        let n = p.func(FuncId(0)).blocks.len();
        assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for b in &order {
            assert!(!std::mem::replace(&mut seen[b.0 as usize], true));
        }
    }

    #[test]
    fn relayout_reduces_taken_branch_encodings() {
        // With a strongly-taken branch, natural layout needs an inverted
        // or two-instruction encoding on the hot path; chain layout makes
        // the hot arm the literal fall-through with an inverted branch.
        let (p, order) = biased_diamond(0.95);
        let mut lo = LayoutOrder::natural(&p);
        lo.set_block_order(FuncId(0), order);
        let l = Layout::new(&p, &lo);
        assert_eq!(
            l.encoding(vp_isa::CodeRef::new(0, 0)),
            TermEncoding::BrInverted
        );
    }

    #[test]
    fn entry_chain_comes_first() {
        let (p, order) = biased_diamond(0.95);
        assert_eq!(order[0], p.func(FuncId(0)).entry);
    }
}
