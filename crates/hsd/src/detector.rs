//! The Hot Spot Detector: Branch Behavior Buffer plus detection counter.
//!
//! Modeled after Merten et al. (ISCA 1999), with the parameters of the
//! paper's Table 2. The detector watches retiring conditional branches:
//!
//! * The **Branch Behavior Buffer (BBB)** is a set-associative table indexed
//!   by branch address. Each entry tabulates saturating *executed* and
//!   *taken* counts; an entry whose executed count crosses the candidate
//!   threshold becomes a *candidate* (hot) branch.
//! * The **Hot Spot Detection Counter (HDC)** is a saturating up/down
//!   counter: it moves up by `hdc_inc` when a candidate branch retires and
//!   down by `hdc_dec` otherwise. Saturating high means candidate branches
//!   account for more than `hdc_dec / (hdc_inc + hdc_dec)` of retiring
//!   branches — a hot spot. At that point the candidate set is snapshotted
//!   as a [`HotSpotRecord`] and profiling restarts.
//!
//! Hardware lossiness is modeled faithfully: entry contention can keep a
//! branch out of the table or admit it late (artificially low weights), and
//! executed counters freeze at saturation, preserving the taken *fraction*
//! as the paper requires. The paper's region-identification algorithm
//! exists precisely to tolerate these artifacts.

use crate::signature::DetectionHistory;
use vp_exec::{col, ColumnBatch, Retired, Sink};
use vp_trace::Counter;

/// Hot spots snapshotted into records.
static DETECTIONS: Counter = Counter::new("hsd.detections");
/// Detections swallowed by the hardware history.
static SUPPRESSED: Counter = Counter::new("hsd.history_suppressed");
/// New branches installed into the BBB (invalid way or after eviction).
static BBB_INSERTIONS: Counter = Counter::new("hsd.bbb.insertions");
/// Valid non-candidate entries displaced by an insertion.
static BBB_EVICTIONS: Counter = Counter::new("hsd.bbb.evictions");
/// Branches rejected because their set was full of candidates.
static BBB_REJECTED: Counter = Counter::new("hsd.bbb.rejected");
/// Executed counters freezing at their saturation value.
static SATURATIONS: Counter = Counter::new("hsd.counter_saturations");
/// HDC refresh-timer expiries.
static REFRESH_EXPIRIES: Counter = Counter::new("hsd.refresh_expiries");
/// BBB clear-timer expiries (stale-table flushes, not post-detection
/// clears).
static CLEAR_EXPIRIES: Counter = Counter::new("hsd.clear_expiries");

/// Hot Spot Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HsdConfig {
    /// Number of BBB sets (Table 2: 512).
    pub bbb_sets: usize,
    /// BBB associativity (Table 2: 4-way).
    pub bbb_ways: usize,
    /// Executed-count threshold at which a branch becomes a candidate
    /// (Table 2: 16).
    pub candidate_threshold: u32,
    /// Width in bits of the executed and taken counters (Table 2: 9).
    pub counter_bits: u32,
    /// Width in bits of the Hot Spot Detection Counter (Table 2: 13).
    pub hdc_bits: u32,
    /// HDC increment on a candidate-branch retirement (Table 2: 2).
    pub hdc_inc: u32,
    /// HDC decrement on a non-candidate retirement (Table 2: 1).
    pub hdc_dec: u32,
    /// Branches between HDC refreshes (Table 2: 8192). The refresh resets
    /// the HDC so detection requires hotness *within* a window.
    pub refresh_interval: u64,
    /// Branches without a detection after which the whole BBB is cleared
    /// (Table 2: 65526), re-opening the table after a phase change.
    pub clear_interval: u64,
    /// Depth of the hardware detection history (paper Section 3.1's BBB
    /// enhancement): re-detections whose hot-spot signature matches one of
    /// the last `history_depth` recorded hot spots are suppressed in
    /// hardware instead of handed to software. `0` (the default, and the
    /// paper's measured configuration) records everything and leaves
    /// deduplication to the software filter.
    pub history_depth: usize,
    /// Signature similarity at or above which a detection counts as a
    /// repeat of a remembered hot spot.
    pub history_threshold: f64,
}

impl HsdConfig {
    /// Stable structural fingerprint of every detector parameter, for
    /// content-addressed result caching.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vp_isa::Fnv::new();
        h.write_str("HsdConfig");
        h.write_usize(self.bbb_sets);
        h.write_usize(self.bbb_ways);
        h.write_u32(self.candidate_threshold);
        h.write_u32(self.counter_bits);
        h.write_u32(self.hdc_bits);
        h.write_u32(self.hdc_inc);
        h.write_u32(self.hdc_dec);
        h.write_u64(self.refresh_interval);
        h.write_u64(self.clear_interval);
        h.write_usize(self.history_depth);
        h.write_f64(self.history_threshold);
        h.finish()
    }

    /// The configuration from the paper's Table 2.
    pub fn table2() -> HsdConfig {
        HsdConfig {
            bbb_sets: 512,
            bbb_ways: 4,
            candidate_threshold: 16,
            counter_bits: 9,
            hdc_bits: 13,
            hdc_inc: 2,
            hdc_dec: 1,
            refresh_interval: 8192,
            clear_interval: 65526,
            history_depth: 0,
            history_threshold: 0.85,
        }
    }

    /// A small configuration for unit tests: 4 entries total, like the
    /// worked example in the paper's Figure 3.
    pub fn tiny() -> HsdConfig {
        HsdConfig {
            bbb_sets: 1,
            bbb_ways: 4,
            candidate_threshold: 4,
            counter_bits: 9,
            hdc_bits: 7,
            hdc_inc: 2,
            hdc_dec: 1,
            refresh_interval: 1024,
            clear_interval: 8192,
            history_depth: 0,
            history_threshold: 0.85,
        }
    }

    fn counter_max(&self) -> u32 {
        (1u32 << self.counter_bits) - 1
    }

    fn hdc_max(&self) -> u32 {
        (1u32 << self.hdc_bits) - 1
    }
}

impl Default for HsdConfig {
    fn default() -> HsdConfig {
        HsdConfig::table2()
    }
}

/// The profile of one hot-spot branch as captured by the BBB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchProfile {
    /// Static branch address.
    pub addr: u64,
    /// Saturating executed count.
    pub exec: u32,
    /// Saturating taken count.
    pub taken: u32,
}

impl BranchProfile {
    /// Fraction of executions that were taken, in `[0, 1]`.
    pub fn taken_fraction(&self) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.taken as f64 / self.exec as f64
        }
    }
}

/// A raw hot-spot detection: the candidate branches and their counts at the
/// moment the HDC saturated. Redundant records are removed later in
/// software (see [`crate::filter`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpotRecord {
    /// Retired-branch count at detection time.
    pub at_branch: u64,
    /// Candidate branches with their executed/taken counts.
    pub branches: Vec<BranchProfile>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    exec: u32,
    taken: u32,
}

/// The hardware Hot Spot Detector. Attach it to an execution as a
/// [`Sink`]; it reacts to retiring conditional branches only.
#[derive(Debug)]
pub struct HotSpotDetector {
    cfg: HsdConfig,
    table: Vec<Entry>,
    hdc: u32,
    branches_retired: u64,
    last_clear: u64,
    last_refresh: u64,
    records: Vec<HotSpotRecord>,
    history: DetectionHistory,
    /// Branches that missed the BBB because their set was full of
    /// candidates (lossiness diagnostics).
    rejected: u64,
}

impl HotSpotDetector {
    /// Creates a detector.
    pub fn new(cfg: HsdConfig) -> HotSpotDetector {
        assert!(
            cfg.bbb_sets.is_power_of_two(),
            "BBB set count must be a power of two"
        );
        HotSpotDetector {
            table: vec![Entry::default(); cfg.bbb_sets * cfg.bbb_ways],
            hdc: 0,
            branches_retired: 0,
            last_clear: 0,
            last_refresh: 0,
            records: Vec::new(),
            history: DetectionHistory::new(cfg.history_depth, cfg.history_threshold),
            rejected: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HsdConfig {
        &self.cfg
    }

    /// Raw hot-spot records accumulated so far (before software filtering).
    pub fn records(&self) -> &[HotSpotRecord] {
        &self.records
    }

    /// Consumes the detector, returning the raw records.
    pub fn into_records(self) -> Vec<HotSpotRecord> {
        self.records
    }

    /// Number of branch retirements rejected due to BBB contention.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Detections suppressed by the hardware history (zero unless
    /// [`HsdConfig::history_depth`] is nonzero).
    pub fn suppressed(&self) -> u64 {
        self.history.suppressed()
    }

    /// Total conditional branches observed.
    pub fn branches_retired(&self) -> u64 {
        self.branches_retired
    }

    /// Feeds one retiring conditional branch into the detector.
    pub fn observe(&mut self, addr: u64, taken: bool) {
        self.branches_retired += 1;
        let is_candidate = self.update_bbb(addr, taken);

        // Hot Spot Detection Counter.
        if is_candidate {
            self.hdc = (self.hdc + self.cfg.hdc_inc).min(self.cfg.hdc_max());
        } else {
            self.hdc = self.hdc.saturating_sub(self.cfg.hdc_dec);
        }
        if self.hdc == self.cfg.hdc_max() {
            self.record_hot_spot();
        }

        // Refresh timer: restart the detection window.
        if self.branches_retired - self.last_refresh >= self.cfg.refresh_interval {
            self.hdc = 0;
            self.last_refresh = self.branches_retired;
            REFRESH_EXPIRIES.incr();
        }
        // Clear timer: without a detection, flush the stale table so a new
        // phase's branches can enter.
        if self.branches_retired - self.last_clear >= self.cfg.clear_interval {
            self.clear();
            CLEAR_EXPIRIES.incr();
            // Flight payload: (branches retired, detections so far) — marks
            // a detection-free window expiring, i.e. a likely phase exit.
            vp_trace::flight(
                "hsd.clear_expiry",
                self.branches_retired,
                self.records.len() as u64,
            );
        }
    }

    /// Updates the BBB for one retirement; returns whether the branch is a
    /// candidate after the update.
    fn update_bbb(&mut self, addr: u64, taken: bool) -> bool {
        let set = ((addr >> 2) as usize) & (self.cfg.bbb_sets - 1);
        let ways = &mut self.table[set * self.cfg.bbb_ways..(set + 1) * self.cfg.bbb_ways];

        // Hit?
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == addr) {
            if e.exec < self.cfg.counter_max() {
                e.exec += 1;
                if taken {
                    e.taken += 1;
                }
                if e.exec == self.cfg.counter_max() {
                    SATURATIONS.incr();
                }
            }
            // At saturation both counters freeze, preserving the fraction.
            return e.exec >= self.cfg.candidate_threshold;
        }

        // Miss: fill an invalid way, else replace the coldest
        // non-candidate. Candidates are protected, so a full-of-candidates
        // set rejects the branch entirely — the lossiness the paper's
        // inference step compensates for.
        let threshold = self.cfg.candidate_threshold;
        let victim = match ways.iter_mut().find(|e| !e.valid) {
            Some(e) => Some(e),
            None => ways
                .iter_mut()
                .filter(|e| e.exec < threshold)
                .min_by_key(|e| e.exec),
        };
        match victim {
            Some(e) => {
                if e.valid {
                    BBB_EVICTIONS.incr();
                }
                BBB_INSERTIONS.incr();
                *e = Entry {
                    valid: true,
                    tag: addr,
                    exec: 1,
                    taken: taken as u32,
                };
                false
            }
            None => {
                self.rejected += 1;
                BBB_REJECTED.incr();
                false
            }
        }
    }

    fn record_hot_spot(&mut self) {
        let branches: Vec<BranchProfile> = self
            .table
            .iter()
            .filter(|e| e.valid && e.exec >= self.cfg.candidate_threshold)
            .map(|e| BranchProfile {
                addr: e.tag,
                exec: e.exec,
                taken: e.taken,
            })
            .collect();
        if !branches.is_empty() {
            let record = HotSpotRecord {
                at_branch: self.branches_retired,
                branches,
            };
            if self.history.admit(&record) {
                DETECTIONS.incr();
                // Flight payload: (branches retired at detection, candidate
                // branch count) — the timeline of phase detections.
                vp_trace::flight("hsd.detect", record.at_branch, record.branches.len() as u64);
                self.records.push(record);
            } else {
                SUPPRESSED.incr();
            }
        }
        // Restart profiling for the next window; the recording itself marks
        // a detection for the clear timer.
        self.clear();
    }

    fn clear(&mut self) {
        for e in &mut self.table {
            *e = Entry::default();
        }
        self.hdc = 0;
        self.last_clear = self.branches_retired;
        self.last_refresh = self.branches_retired;
    }
}

impl Sink for HotSpotDetector {
    fn retire(&mut self, r: &Retired) {
        if let Some(c) = &r.ctrl {
            if c.is_cond {
                self.observe(r.addr, c.arch_taken);
            }
        }
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        // The detector only looks at conditional branches (~1 in 5 events
        // on the SPEC-like workloads); filtering the chunk here keeps the
        // skip path a straight-line scan with `observe` inlined once.
        for r in batch {
            if let Some(c) = &r.ctrl {
                if c.is_cond {
                    self.observe(r.addr, c.arch_taken);
                }
            }
        }
    }

    fn wants_columns(&self) -> bool {
        true
    }

    fn retire_columns(&mut self, b: &ColumnBatch<'_>) {
        // Pre-filtered column pass: the skip path for the ~4-in-5
        // non-branch events is a single byte test over the flat flag
        // column — no `Option<Ctrl>` chase through 120-byte records.
        for i in 0..b.len() {
            let f = b.flags[i];
            if f & col::COND != 0 {
                self.observe(b.addr[i], f & col::ARCH_TAKEN != 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the detector with a loop of `n` distinct branches, each taken
    /// with the given pattern, for `iters` iterations.
    fn drive(det: &mut HotSpotDetector, addrs: &[u64], taken: &[bool], iters: usize) {
        for _ in 0..iters {
            for (i, &a) in addrs.iter().enumerate() {
                det.observe(a, taken[i % taken.len()]);
            }
        }
    }

    #[test]
    fn hot_loop_is_detected() {
        let mut det = HotSpotDetector::new(HsdConfig::table2());
        let addrs: Vec<u64> = (0..8).map(|i| 0x1000 + 4 * i).collect();
        drive(&mut det, &addrs, &[true], 4000);
        assert!(
            !det.records().is_empty(),
            "steady hot loop must be detected"
        );
        let rec = &det.records()[0];
        assert!(rec.branches.len() <= 8);
        for b in &rec.branches {
            assert!(b.taken_fraction() > 0.99);
        }
    }

    #[test]
    fn cold_random_stream_is_not_detected() {
        let mut det = HotSpotDetector::new(HsdConfig::table2());
        // 100k distinct branches seen once each: nothing becomes a
        // candidate.
        for i in 0..100_000u64 {
            det.observe(0x1000 + 4 * i, i % 2 == 0);
        }
        assert!(det.records().is_empty());
    }

    #[test]
    fn phase_change_produces_distinct_records() {
        let mut det = HotSpotDetector::new(HsdConfig::table2());
        let phase1: Vec<u64> = (0..8).map(|i| 0x1000 + 4 * i).collect();
        let phase2: Vec<u64> = (0..8).map(|i| 0x9000 + 4 * i).collect();
        drive(&mut det, &phase1, &[true], 3000);
        drive(&mut det, &phase2, &[false], 3000);
        let recs = det.records();
        assert!(recs.len() >= 2);
        let first: Vec<u64> = recs
            .first()
            .unwrap()
            .branches
            .iter()
            .map(|b| b.addr)
            .collect();
        let last: Vec<u64> = recs
            .last()
            .unwrap()
            .branches
            .iter()
            .map(|b| b.addr)
            .collect();
        assert!(first.iter().all(|a| *a < 0x9000));
        assert!(last.iter().all(|a| *a >= 0x9000));
    }

    #[test]
    fn counters_freeze_at_saturation_preserving_fraction() {
        let cfg = HsdConfig {
            counter_bits: 4,
            ..HsdConfig::tiny()
        };
        let mut det = HotSpotDetector::new(cfg);
        // One branch, 75% taken, far past saturation (max = 15).
        for i in 0..1000 {
            det.observe(0x1000, i % 4 != 0);
        }
        // Find the entry via a detection snapshot or inspect indirectly:
        // saturated exec must equal 15 and fraction stay ~0.75.
        let rec = det
            .records()
            .iter()
            .flat_map(|r| r.branches.iter())
            .find(|b| b.addr == 0x1000)
            .copied();
        if let Some(b) = rec {
            assert!(b.exec <= 15);
            assert!((b.taken_fraction() - 0.75).abs() < 0.2);
        }
    }

    #[test]
    fn contention_rejects_excess_branches() {
        // One set, 4 ways: four branches become candidates first, then a
        // fifth branch arrives and can never enter the candidate-protected
        // set.
        let mut det = HotSpotDetector::new(HsdConfig::tiny());
        let first_four: Vec<u64> = (0..4).map(|i| 0x1000 + 4 * i).collect();
        drive(&mut det, &first_four, &[true], 10);
        det.observe(0x2000, true);
        assert!(
            det.rejected() > 0,
            "full-of-candidates set must reject new branches"
        );
    }

    #[test]
    fn detection_resets_profiling() {
        let mut det = HotSpotDetector::new(HsdConfig::tiny());
        let addrs: Vec<u64> = (0..4).map(|i| 0x1000 + 4 * i).collect();
        drive(&mut det, &addrs, &[true], 4000);
        let n = det.records().len();
        assert!(
            n >= 2,
            "steady phase is re-detected after each snapshot (got {n})"
        );
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_rejected() {
        HotSpotDetector::new(HsdConfig {
            bbb_sets: 3,
            ..HsdConfig::tiny()
        });
    }

    #[test]
    fn hardware_history_suppresses_redundant_records() {
        let base = HsdConfig::table2();
        let with_history = HsdConfig {
            history_depth: 2,
            ..base
        };
        let addrs: Vec<u64> = (0..8).map(|i| 0x1000 + 4 * i).collect();
        let run = |cfg: HsdConfig| {
            let mut det = HotSpotDetector::new(cfg);
            drive(&mut det, &addrs, &[true], 4000);
            (det.records().len(), det.suppressed())
        };
        let (n_base, s_base) = run(base);
        let (n_hist, s_hist) = run(with_history);
        assert_eq!(s_base, 0);
        assert!(
            n_hist < n_base,
            "history must reduce records: {n_hist} vs {n_base}"
        );
        assert_eq!(n_hist, 1, "one steady phase records exactly once");
        assert!(s_hist > 0);
    }

    #[test]
    fn hardware_history_still_records_new_phases() {
        let cfg = HsdConfig {
            history_depth: 2,
            ..HsdConfig::table2()
        };
        let mut det = HotSpotDetector::new(cfg);
        let phase1: Vec<u64> = (0..8).map(|i| 0x1000 + 4 * i).collect();
        let phase2: Vec<u64> = (0..8).map(|i| 0x9000 + 4 * i).collect();
        drive(&mut det, &phase1, &[true], 3000);
        drive(&mut det, &phase2, &[false], 3000);
        assert!(det.records().len() >= 2, "both phases recorded");
        assert!(
            det.records().len() <= 4,
            "but few redundant records survive"
        );
    }
}
