//! Profile merge algebra: combining HSD dumps from multiple runs.
//!
//! The paper trains and evaluates on the same input, but
//! hardware-counter PGO in production must tolerate *foreign* profiles:
//! a binary is profiled on yesterday's traffic (or on another machine's
//! traffic) and optimized for today's. This module gives multi-run
//! profiles an algebra:
//!
//! * a [`ProfileDump`] is one run's software-filtered phase set plus the
//!   run's retired-instruction count (its natural weight);
//! * a [`MergedProfile`] is a *set* of dumps, keyed by content
//!   fingerprint. [`MergedProfile::union`] is set union, which makes
//!   merge **associative**, **commutative**, and **idempotent** by
//!   construction — the laws the `properties` suite pins;
//! * [`MergedProfile::resolve`] derives one combined phase set from the
//!   dump set. It is a pure function of the set (dumps are visited in
//!   fingerprint order, never insertion order), so the laws carry over
//!   from the set level to the resolved phases.
//!
//! Resolution pools every dump's phases and clusters them with the
//! paper's Section 3.1 similarity criteria, applied phase-to-phase: two
//! phases are the *same* hot spot unless ≥30% of one's branches are
//! missing from the other, or a biased branch common to both flips
//! direction. A bias flip is exactly how *conflicting* phase signatures
//! are resolved: the conflicting detections stay separate phases rather
//! than averaging into a profile that matches neither run.
//!
//! Branch counts are combined **saturating-counter-aware**: per-run
//! counts live in the BBB's hardware counter scale (9 bits, max 511,
//! in the Table 2 configuration) and the region-identification
//! thresholds (the 25% flow rule, the execution threshold of 16) are
//! calibrated to that scale. Merged counts are therefore
//! weighted *averages* — weights proportional to each run's retired
//! instructions (or uniform under [`Weighting::Uniform`]) — clamped to
//! the counter maximum, never sums: merging five runs must not make a
//! branch look five times hotter than the hardware could ever report.
//!
//! ```
//! use vp_hsd::{filter_hot_spots, FilterConfig, HotSpotDetector, HsdConfig};
//! use vp_hsd::merge::{MergeConfig, MergedProfile, ProfileDump};
//!
//! // Two profiling runs of the "same binary" on different inputs: input A
//! // spends its time in a loop at 0x1000, input B in a loop at 0x9000.
//! let run = |label: &str, base: u64| {
//!     let mut det = HotSpotDetector::new(HsdConfig::table2());
//!     for _ in 0..4000 {
//!         for b in 0..8u64 {
//!             det.observe(base + 4 * b, true);
//!         }
//!     }
//!     let phases = filter_hot_spots(det.records(), &FilterConfig::default());
//!     ProfileDump::new(label, 32_000, phases)
//! };
//! let a = run("input A", 0x1000);
//! let b = run("input B", 0x9000);
//!
//! let mut merged = MergedProfile::new(MergeConfig::default());
//! merged.absorb(a.clone());
//! merged.absorb(b.clone());
//! let phases = merged.resolve();
//! // Disjoint hot spots survive as distinct phases; a packed binary built
//! // from this profile covers both inputs' loops.
//! assert_eq!(phases.len(), 2);
//!
//! // The algebra: self-merge is a no-op, and order does not matter.
//! let ab = MergedProfile::of(MergeConfig::default(), [a.clone(), b.clone()]);
//! let ba = MergedProfile::of(MergeConfig::default(), [b, a.clone()]);
//! assert_eq!(ab.resolve(), ba.resolve());
//! assert_eq!(ab.union(&ab).resolve(), ab.resolve());
//! let self_merge = MergedProfile::of(MergeConfig::default(), [a.clone(), a.clone()]);
//! assert_eq!(
//!     self_merge.resolve(),
//!     MergedProfile::of(MergeConfig::default(), [a]).resolve(),
//! );
//! ```

use crate::filter::{Bias, FilterConfig, Phase, PhaseBranch};
use std::collections::BTreeMap;
use vp_trace::{Counter, Histogram};

/// Dumps absorbed into merged profiles (deduplicated ones excluded).
static MERGE_DUMPS: Counter = Counter::new("profile.merge.dumps");
/// Dumps dropped because an identical dump (same fingerprint) was
/// already present — the idempotence path.
static MERGE_DEDUP: Counter = Counter::new("profile.merge.dedup");
/// Union operations performed.
static MERGE_UNIONS: Counter = Counter::new("profile.merge.unions");
/// Resolutions performed.
static MERGE_RESOLVES: Counter = Counter::new("profile.merge.resolves");
/// Phases pooled into resolution (over all dumps).
static MERGE_PHASES_IN: Counter = Counter::new("profile.merge.phases_in");
/// Phases produced by resolution.
static MERGE_PHASES_OUT: Counter = Counter::new("profile.merge.phases_out");
/// Pooled phases eliminated into an existing cluster.
static MERGE_CLUSTERED: Counter = Counter::new("profile.merge.clustered");
/// Common branches whose bias classes disagreed across runs and were
/// resolved by weighted dominance (flips severe enough to split phases
/// never reach this path).
static MERGE_BIAS_RESOLVED: Counter = Counter::new("profile.merge.bias_resolved");
/// Merged branch counts clamped at the hardware counter maximum.
static MERGE_SATURATED: Counter = Counter::new("profile.merge.saturated");
/// Source phases per resolved phase — how much each resolved phase was
/// corroborated across runs.
static MERGE_CLUSTER_SIZE: Histogram = Histogram::new("profile.merge.cluster_size");
/// Retired-instruction count of each absorbed dump — the weight spread
/// the normalization works against.
static MERGE_DUMP_RETIRED: Histogram = Histogram::new("profile.merge.dump_retired");

/// How per-run weights are assigned when combining branch counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// Weight each run by its retired-instruction count — a long run's
    /// counter image dominates a short run's (the default).
    #[default]
    Retired,
    /// Weight every run equally regardless of length.
    Uniform,
}

impl Weighting {
    /// Reads `VP_MERGE_WEIGHT` (`retired` or `uniform`; default
    /// `retired`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a silently misread weighting
    /// would corrupt every merged profile in the run.
    pub fn from_env() -> Weighting {
        match std::env::var("VP_MERGE_WEIGHT") {
            Ok(s) => match s.trim() {
                "retired" => Weighting::Retired,
                "uniform" => Weighting::Uniform,
                other => panic!("VP_MERGE_WEIGHT must be retired|uniform, got {other:?}"),
            },
            Err(_) => Weighting::Retired,
        }
    }
}

/// Configuration of the merge algebra.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeConfig {
    /// Per-run weight assignment.
    pub weighting: Weighting,
    /// Hardware counter saturation value merged counts are clamped to
    /// (Table 2: 9-bit counters, max 511).
    pub counter_max: u64,
    /// Similarity criteria used to cluster pooled phases — the same
    /// Section 3.1 thresholds the per-run software filter uses.
    pub filter: FilterConfig,
}

impl Default for MergeConfig {
    fn default() -> MergeConfig {
        MergeConfig {
            weighting: Weighting::default(),
            counter_max: 511,
            filter: FilterConfig::default(),
        }
    }
}

impl MergeConfig {
    /// Stable structural fingerprint of the merge algebra's knobs
    /// (including the nested filter thresholds), for content-addressed
    /// result caching.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vp_isa::Fnv::new();
        h.write_str("MergeConfig");
        h.write_u64(match self.weighting {
            Weighting::Retired => 0,
            Weighting::Uniform => 1,
        });
        h.write_u64(self.counter_max);
        h.write_u64(self.filter.fingerprint());
        h.finish()
    }

    /// The default configuration with the weighting taken from
    /// `VP_MERGE_WEIGHT` ([`Weighting::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `VP_MERGE_WEIGHT` value.
    pub fn from_env() -> MergeConfig {
        MergeConfig {
            weighting: Weighting::from_env(),
            ..MergeConfig::default()
        }
    }
}

/// One profiling run's contribution to a merged profile: its filtered
/// phases plus the run's retired-instruction count.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDump {
    /// Label of the run that produced the dump (e.g. `"130.li A"`).
    pub label: String,
    /// Retired instructions of the run — the dump's natural weight
    /// under [`Weighting::Retired`].
    pub retired: u64,
    /// Unique phases after software filtering ([`crate::filter`]).
    pub phases: Vec<Phase>,
}

impl ProfileDump {
    /// Packages one run's filtered phases as a dump.
    pub fn new(label: &str, retired: u64, phases: Vec<Phase>) -> ProfileDump {
        ProfileDump {
            label: label.to_string(),
            retired,
            phases,
        }
    }

    /// FNV-1a fingerprint of the dump's full content: label, retired
    /// count, and every phase's branch profiles. Identical runs merge
    /// idempotently because their dumps collide here.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut fold_bytes = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold_bytes(self.label.as_bytes());
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.retired);
        fold(self.phases.len() as u64);
        for p in &self.phases {
            fold(p.first_detected_at);
            fold(p.detections as u64);
            fold(p.branches.len() as u64);
            for (&addr, b) in &p.branches {
                fold(addr);
                fold(b.exec);
                fold(b.taken);
                fold(b.seen);
            }
        }
        h
    }
}

/// A mergeable set of profiling runs.
///
/// The state is a map from [`ProfileDump::fingerprint`] to dump, so
/// [`union`](MergedProfile::union) is literal set union — associative,
/// commutative, and idempotent. The combined phase set is *derived* from
/// the dump set by [`resolve`](MergedProfile::resolve), never carried
/// incrementally, so those laws hold for the resolved phases too.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedProfile {
    cfg: MergeConfig,
    dumps: BTreeMap<u64, ProfileDump>,
}

impl MergedProfile {
    /// An empty profile (the identity of [`union`](MergedProfile::union)).
    pub fn new(cfg: MergeConfig) -> MergedProfile {
        MergedProfile {
            cfg,
            dumps: BTreeMap::new(),
        }
    }

    /// Builds a profile by absorbing every dump in `dumps`.
    pub fn of(cfg: MergeConfig, dumps: impl IntoIterator<Item = ProfileDump>) -> MergedProfile {
        let mut m = MergedProfile::new(cfg);
        for d in dumps {
            m.absorb(d);
        }
        m
    }

    /// Adds one run's dump to the set. A dump identical to one already
    /// present (same [`ProfileDump::fingerprint`]) is dropped — the
    /// single-dump idempotence case.
    pub fn absorb(&mut self, dump: ProfileDump) {
        let key = dump.fingerprint();
        if self.dumps.contains_key(&key) {
            MERGE_DEDUP.incr();
            return;
        }
        MERGE_DUMPS.incr();
        MERGE_DUMP_RETIRED.observe(dump.retired);
        self.dumps.insert(key, dump);
    }

    /// Set union of the two dump sets: the merge operation the property
    /// suite pins as associative, commutative, and idempotent.
    pub fn union(&self, other: &MergedProfile) -> MergedProfile {
        MERGE_UNIONS.incr();
        let mut out = self.clone();
        for d in other.dumps.values() {
            out.absorb(d.clone());
        }
        out
    }

    /// Number of distinct dumps in the set.
    pub fn len(&self) -> usize {
        self.dumps.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.dumps.is_empty()
    }

    /// Labels of the runs in the set, in fingerprint order.
    pub fn labels(&self) -> Vec<&str> {
        self.dumps.values().map(|d| d.label.as_str()).collect()
    }

    /// Total retired instructions over all dumps.
    pub fn total_retired(&self) -> u64 {
        self.dumps.values().map(|d| d.retired).sum()
    }

    /// Derives the combined phase set.
    ///
    /// Pooled phases are visited in `(dump fingerprint, phase id)` order
    /// — a pure function of the dump *set* — and greedily clustered with
    /// the Section 3.1 similarity criteria; matching phases combine
    /// their branch counts as weighted averages clamped to
    /// [`MergeConfig::counter_max`]. Phase ids are reassigned densely in
    /// cluster-creation order, and `first_detected_at` becomes the
    /// earliest first detection over the cluster's sources.
    pub fn resolve(&self) -> Vec<Phase> {
        MERGE_RESOLVES.incr();
        let mut clusters: Vec<Cluster> = Vec::new();
        for dump in self.dumps.values() {
            let weight = match self.cfg.weighting {
                Weighting::Retired => u128::from(dump.retired.max(1)),
                Weighting::Uniform => 1,
            };
            for phase in &dump.phases {
                MERGE_PHASES_IN.incr();
                match clusters
                    .iter_mut()
                    .find(|c| same_phase(&self.cfg.filter, c, phase))
                {
                    Some(c) => {
                        MERGE_CLUSTERED.incr();
                        c.combine(weight, phase, &self.cfg);
                    }
                    None => clusters.push(Cluster::open(weight, phase, &self.cfg)),
                }
            }
        }
        MERGE_PHASES_OUT.add(clusters.len() as u64);
        clusters
            .into_iter()
            .enumerate()
            .map(|(id, c)| {
                MERGE_CLUSTER_SIZE.observe(c.sources as u64);
                c.into_phase(id)
            })
            .collect()
    }
}

/// One resolved phase under construction: the weighted union of every
/// pooled phase that clustered into it.
#[derive(Debug)]
struct Cluster {
    branches: BTreeMap<u64, ClusterBranch>,
    first_detected_at: u64,
    detections: usize,
    sources: usize,
}

/// A branch inside a cluster, with the weight already averaged into it.
/// Counts stay an average over exactly the runs whose clustered phase
/// contained the branch: a branch one run never saw must not be diluted
/// toward zero by that run's weight.
#[derive(Debug)]
struct ClusterBranch {
    exec: u64,
    taken: u64,
    seen: u64,
    weight: u128,
}

/// Section 3.1's two criteria, phase-to-phase: same hot spot unless ≥
/// `missing_fraction` of either side's branches are missing from the
/// other, or at least `bias_flip_threshold` common branches flip bias.
fn same_phase(cfg: &FilterConfig, cluster: &Cluster, phase: &Phase) -> bool {
    let missing_from_cluster = phase
        .branches
        .keys()
        .filter(|a| !cluster.branches.contains_key(a))
        .count();
    let missing_from_phase = cluster
        .branches
        .keys()
        .filter(|a| !phase.branches.contains_key(a))
        .count();
    if !phase.branches.is_empty()
        && missing_from_cluster as f64 / phase.branches.len() as f64 >= cfg.missing_fraction
    {
        return false;
    }
    if !cluster.branches.is_empty()
        && missing_from_phase as f64 / cluster.branches.len() as f64 >= cfg.missing_fraction
    {
        return false;
    }
    let mut flips = 0;
    for (addr, pb) in &phase.branches {
        if let Some(cb) = cluster.branches.get(addr) {
            match (cb.bias(cfg.bias_threshold), pb.bias(cfg.bias_threshold)) {
                (Bias::Taken, Bias::NotTaken) | (Bias::NotTaken, Bias::Taken) => flips += 1,
                _ => {}
            }
        }
    }
    flips < cfg.bias_flip_threshold
}

impl ClusterBranch {
    fn bias(&self, threshold: f64) -> Bias {
        PhaseBranch {
            exec: self.exec,
            taken: self.taken,
            seen: self.seen,
        }
        .bias(threshold)
    }
}

/// Weighted average of an accumulated value (carrying weight `wa`) and an
/// incoming value (weight `wb`), rounded half-up. Pure integer
/// arithmetic, so resolution is bit-deterministic across platforms.
fn weighted_avg(a: u64, wa: u128, b: u64, wb: u128) -> u64 {
    let total = wa + wb;
    ((u128::from(a) * wa + u128::from(b) * wb + total / 2) / total) as u64
}

/// Clamps a merged count to the hardware counter scale.
fn saturate(v: u64, counter_max: u64) -> u64 {
    if v > counter_max {
        MERGE_SATURATED.incr();
        counter_max
    } else {
        v
    }
}

impl Cluster {
    fn open(weight: u128, phase: &Phase, cfg: &MergeConfig) -> Cluster {
        let branches = phase
            .branches
            .iter()
            .map(|(&addr, b)| {
                let exec = saturate(b.exec, cfg.counter_max);
                (
                    addr,
                    ClusterBranch {
                        exec,
                        taken: b.taken.min(exec),
                        seen: b.seen,
                        weight,
                    },
                )
            })
            .collect();
        Cluster {
            branches,
            first_detected_at: phase.first_detected_at,
            detections: phase.detections,
            sources: 1,
        }
    }

    fn combine(&mut self, weight: u128, phase: &Phase, cfg: &MergeConfig) {
        let bias_threshold = cfg.filter.bias_threshold;
        for (&addr, b) in &phase.branches {
            match self.branches.entry(addr) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    let exec = saturate(b.exec, cfg.counter_max);
                    v.insert(ClusterBranch {
                        exec,
                        taken: b.taken.min(exec),
                        seen: b.seen,
                        weight,
                    });
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let cb = o.get_mut();
                    if cb.bias(bias_threshold) != b.bias(bias_threshold) {
                        // Disagreement mild enough to cluster (e.g. biased
                        // vs. unbiased): the weighted average lets the
                        // heavier run dominate.
                        MERGE_BIAS_RESOLVED.incr();
                    }
                    let exec = saturate(b.exec, cfg.counter_max);
                    cb.exec = weighted_avg(cb.exec, cb.weight, exec, weight);
                    cb.taken = weighted_avg(cb.taken, cb.weight, b.taken.min(exec), weight);
                    cb.seen += b.seen;
                    cb.weight += weight;
                }
            }
        }
        self.first_detected_at = self.first_detected_at.min(phase.first_detected_at);
        self.detections += phase.detections;
        self.sources += 1;
    }

    fn into_phase(self, id: usize) -> Phase {
        Phase {
            id,
            branches: self
                .branches
                .into_iter()
                .map(|(addr, b)| {
                    (
                        addr,
                        PhaseBranch {
                            exec: b.exec,
                            taken: b.taken.min(b.exec),
                            seen: b.seen,
                        },
                    )
                })
                .collect(),
            first_detected_at: self.first_detected_at,
            detections: self.detections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(id: usize, at: u64, branches: &[(u64, u64, u64)]) -> Phase {
        Phase {
            id,
            branches: branches
                .iter()
                .map(|&(addr, exec, taken)| {
                    (
                        addr,
                        PhaseBranch {
                            exec,
                            taken,
                            seen: 1,
                        },
                    )
                })
                .collect(),
            first_detected_at: at,
            detections: 1,
        }
    }

    fn dump(label: &str, retired: u64, phases: Vec<Phase>) -> ProfileDump {
        ProfileDump::new(label, retired, phases)
    }

    #[test]
    fn disjoint_dumps_union_their_phases() {
        let a = dump(
            "A",
            1000,
            vec![phase(0, 5, &[(0x10, 400, 390), (0x14, 400, 10)])],
        );
        let b = dump(
            "B",
            1000,
            vec![phase(0, 9, &[(0x90, 400, 390), (0x94, 400, 10)])],
        );
        let m = MergedProfile::of(MergeConfig::default(), [a, b]);
        let phases = m.resolve();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].id, 0);
        assert_eq!(phases[1].id, 1);
        assert!(phases[0].branches.contains_key(&0x10));
        assert!(phases[1].branches.contains_key(&0x90));
    }

    #[test]
    fn matching_phases_combine_with_retired_weighting() {
        // Run A (weight 3000) says exec 300; run B (weight 1000) says 100.
        // Retired weighting: (300*3000 + 100*1000) / 4000 = 250.
        let a = dump(
            "A",
            3000,
            vec![phase(0, 5, &[(0x10, 300, 300), (0x14, 300, 0)])],
        );
        let b = dump(
            "B",
            1000,
            vec![phase(0, 9, &[(0x10, 100, 100), (0x14, 100, 0)])],
        );
        let m = MergedProfile::of(MergeConfig::default(), [a, b]);
        let phases = m.resolve();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].branches[&0x10].exec, 250);
        assert_eq!(phases[0].branches[&0x10].taken, 250);
        assert_eq!(
            phases[0].first_detected_at, 5,
            "earliest first detection wins"
        );
        assert_eq!(phases[0].detections, 2);
    }

    #[test]
    fn uniform_weighting_ignores_run_length() {
        let a = dump(
            "A",
            3000,
            vec![phase(0, 5, &[(0x10, 300, 300), (0x14, 300, 0)])],
        );
        let b = dump(
            "B",
            1000,
            vec![phase(0, 9, &[(0x10, 100, 100), (0x14, 100, 0)])],
        );
        let cfg = MergeConfig {
            weighting: Weighting::Uniform,
            ..MergeConfig::default()
        };
        let phases = MergedProfile::of(cfg, [a, b]).resolve();
        assert_eq!(
            phases[0].branches[&0x10].exec, 200,
            "plain mean under uniform"
        );
    }

    #[test]
    fn merged_counts_never_exceed_counter_scale() {
        // Out-of-scale inputs clamp to counter_max; in-scale averages of
        // saturated counters stay saturated, never summed.
        let a = dump(
            "A",
            1000,
            vec![phase(0, 5, &[(0x10, 511, 511), (0x14, 511, 0)])],
        );
        let b = dump(
            "B",
            1000,
            vec![phase(0, 9, &[(0x10, 511, 511), (0x14, 9000, 0)])],
        );
        let phases = MergedProfile::of(MergeConfig::default(), [a, b]).resolve();
        assert_eq!(phases.len(), 1);
        let p = &phases[0];
        assert_eq!(p.branches[&0x10].exec, 511);
        assert_eq!(
            p.branches[&0x14].exec, 511,
            "out-of-scale input clamps first"
        );
        assert!(p
            .branches
            .values()
            .all(|b| b.exec <= 511 && b.taken <= b.exec));
    }

    #[test]
    fn bias_flip_keeps_conflicting_signatures_separate() {
        // Same branch set, but 0x10 flips taken → not-taken: the paper's
        // criterion 2, so the two runs' detections stay distinct phases.
        let a = dump(
            "A",
            1000,
            vec![phase(0, 5, &[(0x10, 400, 390), (0x14, 400, 200)])],
        );
        let b = dump(
            "B",
            1000,
            vec![phase(0, 9, &[(0x10, 400, 10), (0x14, 400, 200)])],
        );
        let phases = MergedProfile::of(MergeConfig::default(), [a, b]).resolve();
        assert_eq!(phases.len(), 2, "conflicting signatures must not average");
    }

    #[test]
    fn mild_bias_disagreement_resolves_by_weighted_dominance() {
        // 0x10 is biased-taken in the heavy run, unbiased in the light one:
        // clusters (no flip), and the heavy run's bias survives.
        let a = dump(
            "A",
            9000,
            vec![phase(0, 5, &[(0x10, 400, 390), (0x14, 400, 0)])],
        );
        let b = dump(
            "B",
            1000,
            vec![phase(0, 9, &[(0x10, 400, 220), (0x14, 400, 0)])],
        );
        let ((phases, ()), report) = vp_trace::scoped(|| {
            (
                MergedProfile::of(MergeConfig::default(), [a, b]).resolve(),
                (),
            )
        });
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].branches[&0x10].bias(0.70),
            Bias::Taken,
            "heavier run dominates the resolved bias"
        );
        assert_eq!(report.counter("profile.merge.bias_resolved"), 1);
    }

    #[test]
    fn identical_dumps_deduplicate() {
        let a = dump("A", 1000, vec![phase(0, 5, &[(0x10, 400, 390)])]);
        let ((m, ()), report) = vp_trace::scoped(|| {
            (
                MergedProfile::of(MergeConfig::default(), [a.clone(), a.clone()]),
                (),
            )
        });
        assert_eq!(m.len(), 1);
        assert_eq!(report.counter("profile.merge.dedup"), 1);
        assert_eq!(m.labels(), vec!["A"]);
        assert_eq!(m.total_retired(), 1000);
        assert_eq!(
            m.resolve(),
            MergedProfile::of(MergeConfig::default(), [a]).resolve()
        );
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = dump("A", 1000, vec![phase(0, 5, &[(0x10, 400, 390)])]);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.retired = 1001;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.phases[0].branches.get_mut(&0x10).unwrap().taken = 389;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.label = "B".to_string();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn empty_profile_resolves_to_nothing() {
        let m = MergedProfile::new(MergeConfig::default());
        assert!(m.is_empty());
        assert!(m.resolve().is_empty());
        // Empty is the identity of union.
        let a = MergedProfile::of(
            MergeConfig::default(),
            [dump("A", 10, vec![phase(0, 1, &[(0x10, 40, 20)])])],
        );
        assert_eq!(m.union(&a), a);
        assert_eq!(a.union(&m), a);
    }

    #[test]
    fn weighted_avg_rounds_half_up_and_is_exact_at_bounds() {
        assert_eq!(weighted_avg(100, 1, 200, 1), 150);
        assert_eq!(weighted_avg(0, 1, 1, 1), 1, "half rounds up");
        assert_eq!(weighted_avg(511, 7, 511, 13), 511);
        assert_eq!(weighted_avg(0, 5, 0, 11), 0);
    }
}
