//! Hot-spot signatures and the hardware detection-history enhancement
//! (paper Section 3.1).
//!
//! The baseline detector re-records a steady phase on every detection
//! window and relies on software to discard the duplicates. The paper
//! sketches two hardware refinements:
//!
//! * a BBB *history* (after its reference \[4\]) "records a phase only when
//!   it is different than the previous phase", extensible "to more than
//!   one to greatly reduce the number of hot spots recorded";
//! * *working set signatures* (after Dhodapkar & Smith) "extended to hot
//!   spot signatures to allow inexpensive comparisons between a detected
//!   hot spot and a history of previously recorded hot spots".
//!
//! A [`HotSpotSignature`] is a 128-bit Bloom-style set over branch
//! addresses; similarity is Jaccard over the bit sets — a handful of XOR/
//! popcount gates in hardware. [`DetectionHistory`] keeps the last `n`
//! recorded signatures and suppresses re-detections that match any of
//! them.

use crate::detector::HotSpotRecord;

/// Signature width in bits (two 64-bit words — register-sized hardware).
const SIG_BITS: u32 = 128;

/// A lossy, fixed-size summary of a hot spot's branch set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HotSpotSignature {
    bits: u128,
}

impl HotSpotSignature {
    /// Builds the signature of a record's branch set.
    pub fn of(record: &HotSpotRecord) -> HotSpotSignature {
        let mut bits = 0u128;
        for b in &record.branches {
            // Two independent hash positions per branch, as in Bloom
            // filters, to keep false-match rates low for small sets.
            // Use the multiplier's HIGH bits: low bits of a product only
            // depend on the low bits of the input.
            let h1 = (b.addr >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57;
            let h2 = (b.addr >> 2).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 57;
            bits |= 1u128 << (h1 % SIG_BITS as u64);
            bits |= 1u128 << (h2 % SIG_BITS as u64);
        }
        HotSpotSignature { bits }
    }

    /// Jaccard similarity of the two bit sets, in `[0, 1]`.
    pub fn similarity(&self, other: &HotSpotSignature) -> f64 {
        let union = (self.bits | other.bits).count_ones();
        if union == 0 {
            return 1.0;
        }
        (self.bits & other.bits).count_ones() as f64 / union as f64
    }

    /// Number of set bits (a proxy for branch-set size).
    pub fn weight(&self) -> u32 {
        self.bits.count_ones()
    }
}

/// A bounded history of recorded hot-spot signatures: the hardware-side
/// redundancy filter.
#[derive(Debug, Clone)]
pub struct DetectionHistory {
    depth: usize,
    threshold: f64,
    ring: Vec<HotSpotSignature>,
    next: usize,
    suppressed: u64,
}

impl DetectionHistory {
    /// Creates a history of `depth` entries; a new detection whose
    /// signature similarity against any remembered entry reaches
    /// `threshold` is suppressed. `depth == 0` disables suppression (the
    /// baseline detector).
    pub fn new(depth: usize, threshold: f64) -> DetectionHistory {
        DetectionHistory {
            depth,
            threshold,
            ring: Vec::new(),
            next: 0,
            suppressed: 0,
        }
    }

    /// Checks a candidate record against the history. Returns `true` if it
    /// should be recorded (and remembers it); `false` if suppressed.
    pub fn admit(&mut self, record: &HotSpotRecord) -> bool {
        if self.depth == 0 {
            return true;
        }
        let sig = HotSpotSignature::of(record);
        if self
            .ring
            .iter()
            .any(|s| s.similarity(&sig) >= self.threshold)
        {
            self.suppressed += 1;
            return false;
        }
        if self.ring.len() < self.depth {
            self.ring.push(sig);
        } else {
            self.ring[self.next] = sig;
            self.next = (self.next + 1) % self.depth;
        }
        true
    }

    /// Detections suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::BranchProfile;

    fn rec(addrs: &[u64]) -> HotSpotRecord {
        HotSpotRecord {
            at_branch: 0,
            branches: addrs
                .iter()
                .map(|&a| BranchProfile {
                    addr: a,
                    exec: 100,
                    taken: 50,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_sets_have_similarity_one() {
        let a = HotSpotSignature::of(&rec(&[0x10, 0x20, 0x30]));
        let b = HotSpotSignature::of(&rec(&[0x10, 0x20, 0x30]));
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_have_low_similarity() {
        let a = HotSpotSignature::of(&rec(&(0..8).map(|i| 0x1000 + 4 * i).collect::<Vec<_>>()));
        let b = HotSpotSignature::of(&rec(&(0..8).map(|i| 0x9000 + 4 * i).collect::<Vec<_>>()));
        assert!(a.similarity(&b) < 0.3, "got {}", a.similarity(&b));
    }

    #[test]
    fn overlapping_sets_fall_in_between() {
        let a = HotSpotSignature::of(&rec(&[0x10, 0x20, 0x30, 0x40]));
        let b = HotSpotSignature::of(&rec(&[0x10, 0x20, 0x30, 0x90]));
        let s = a.similarity(&b);
        assert!(s > 0.4 && s < 1.0, "got {s}");
    }

    #[test]
    fn history_suppresses_repeats() {
        let mut h = DetectionHistory::new(2, 0.9);
        let a = rec(&[0x10, 0x20, 0x30]);
        let b = rec(&[0x90, 0xa0, 0xb0]);
        assert!(h.admit(&a));
        assert!(!h.admit(&a), "repeat of A suppressed");
        assert!(h.admit(&b));
        // Both are now in the two-deep history: alternating phases do not
        // produce new records.
        assert!(!h.admit(&a));
        assert!(!h.admit(&b));
        assert_eq!(h.suppressed(), 3);
    }

    #[test]
    fn single_entry_history_thrashes_on_alternation() {
        // The paper's base enhancement holds ONE hot spot: alternating
        // phases evict each other and are re-recorded — the motivation for
        // extending the history beyond one.
        let mut h = DetectionHistory::new(1, 0.9);
        let a = rec(&[0x10, 0x20, 0x30]);
        let b = rec(&[0x90, 0xa0, 0xb0]);
        assert!(h.admit(&a));
        assert!(h.admit(&b), "B evicts A");
        assert!(h.admit(&a), "A re-recorded after eviction");
    }

    #[test]
    fn depth_zero_disables_suppression() {
        let mut h = DetectionHistory::new(0, 0.9);
        let a = rec(&[0x10]);
        for _ in 0..5 {
            assert!(h.admit(&a));
        }
        assert_eq!(h.suppressed(), 0);
    }
}
