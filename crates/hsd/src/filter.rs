//! Software filtering of redundant hot-spot records (paper Section 3.1).
//!
//! The detector re-records a steady phase every detection window; the paper
//! assumes "software filtering eliminates all redundant hot spot
//! detections". Two hot spots are *different* when either:
//!
//! 1. 30% or more of one's branches are missing from the other (in either
//!    direction), or
//! 2. a biased branch common to both has a *different* bias (taken vs
//!    not-taken).
//!
//! Matching records are *eliminated*, exactly as the paper states —
//! "software filtering eliminates all redundant hot spot detections". The
//! phase keeps the counts of the first record that introduced each branch
//! (branches first seen in a later matching record are unioned in), so a
//! detection window that happens to straddle a phase boundary cannot
//! pollute an established phase's taken fractions.

use crate::detector::HotSpotRecord;
use std::collections::BTreeMap;
use vp_trace::Counter;

/// Raw records fed into the software filter.
static FILTER_RECORDS: Counter = Counter::new("hsd.filter.records");
/// Redundant records eliminated into an existing phase.
static FILTER_MERGED: Counter = Counter::new("hsd.filter.merged");
/// New phases opened.
static FILTER_PHASES: Counter = Counter::new("hsd.filter.phases");
/// Phase/record comparisons rejected by the 30%-missing rule (§3.1).
static SPLIT_MISSING: Counter = Counter::new("hsd.filter.split.missing");
/// Phase/record comparisons rejected by the bias-flip rule (§3.1).
static SPLIT_BIAS_FLIP: Counter = Counter::new("hsd.filter.split.bias_flip");

/// Filtering thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Fraction of missing branches above which two hot spots differ
    /// (paper: 0.30).
    pub missing_fraction: f64,
    /// A branch is *biased taken* when its taken fraction is at least this
    /// value, and *biased not-taken* when at most `1 - bias_threshold`.
    pub bias_threshold: f64,
    /// Number of common biased branches whose bias must flip before two hot
    /// spots are considered different (paper: 1; its \[4\] reference notes the
    /// threshold could be raised to yield fewer unique hot spots).
    pub bias_flip_threshold: usize,
}

impl Default for FilterConfig {
    fn default() -> FilterConfig {
        FilterConfig {
            missing_fraction: 0.30,
            bias_threshold: 0.70,
            bias_flip_threshold: 1,
        }
    }
}

impl FilterConfig {
    /// Stable structural fingerprint of the thresholds, for
    /// content-addressed result caching.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vp_isa::Fnv::new();
        h.write_str("FilterConfig");
        h.write_f64(self.missing_fraction);
        h.write_f64(self.bias_threshold);
        h.write_usize(self.bias_flip_threshold);
        h.finish()
    }
}

/// Direction bias of a branch within one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bias {
    /// Taken at least `bias_threshold` of the time.
    Taken,
    /// Not taken at least `bias_threshold` of the time.
    NotTaken,
    /// Neither direction dominates.
    Unbiased,
}

/// Per-branch profile within a phase.
///
/// The counts come from the first detection that introduced the branch and
/// stay in the hardware's 9-bit counter scale: the region-identification
/// thresholds (the paper's 25% flow rule and the absolute execution
/// threshold of 16) are calibrated to that scale, so redundant detections
/// are eliminated rather than accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBranch {
    /// Executed count from the introducing detection.
    pub exec: u64,
    /// Taken count from the introducing detection.
    pub taken: u64,
    /// Number of detections this branch appeared in.
    pub seen: u64,
}

impl PhaseBranch {
    /// A profile from a single detection.
    pub fn once(exec: u64, taken: u64) -> PhaseBranch {
        PhaseBranch {
            exec,
            taken,
            seen: 1,
        }
    }

    /// The hardware-counter-scale executed weight used by region
    /// identification (the first detection's count; redundant detections
    /// are eliminated, not accumulated).
    pub fn avg_exec(&self) -> u64 {
        self.exec
    }

    /// The hardware-counter-scale taken count.
    pub fn avg_taken(&self) -> u64 {
        self.taken
    }

    /// Taken fraction in `[0, 1]`.
    pub fn taken_fraction(&self) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.taken as f64 / self.exec as f64
        }
    }

    /// Classifies the branch direction at the given bias threshold.
    pub fn bias(&self, threshold: f64) -> Bias {
        let f = self.taken_fraction();
        if f >= threshold {
            Bias::Taken
        } else if f <= 1.0 - threshold {
            Bias::NotTaken
        } else {
            Bias::Unbiased
        }
    }
}

/// A unique program phase: the deduplicated union of all hot-spot records
/// that matched it.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Dense phase index in first-detection order.
    pub id: usize,
    /// Branch profiles keyed by branch address.
    pub branches: BTreeMap<u64, PhaseBranch>,
    /// Retired-branch count at first detection.
    pub first_detected_at: u64,
    /// How many raw records were merged into this phase.
    pub detections: usize,
}

impl Phase {
    /// Total averaged executed weight over all branches.
    pub fn total_weight(&self) -> u64 {
        self.branches.values().map(|b| b.avg_exec()).sum()
    }

    /// The hottest branch weight, used as a normalization reference by the
    /// region-identification step.
    pub fn max_weight(&self) -> u64 {
        self.branches
            .values()
            .map(|b| b.avg_exec())
            .max()
            .unwrap_or(0)
    }
}

fn same_hot_spot(cfg: &FilterConfig, phase: &Phase, rec: &HotSpotRecord) -> bool {
    let rec_addrs: Vec<u64> = rec.branches.iter().map(|b| b.addr).collect();
    let missing_from_phase = rec_addrs
        .iter()
        .filter(|a| !phase.branches.contains_key(a))
        .count();
    let missing_from_rec = phase
        .branches
        .keys()
        .filter(|a| !rec_addrs.contains(a))
        .count();
    if !rec_addrs.is_empty()
        && missing_from_phase as f64 / rec_addrs.len() as f64 >= cfg.missing_fraction
    {
        SPLIT_MISSING.incr();
        return false;
    }
    if !phase.branches.is_empty()
        && missing_from_rec as f64 / phase.branches.len() as f64 >= cfg.missing_fraction
    {
        SPLIT_MISSING.incr();
        return false;
    }
    // Bias-flip criterion on common branches.
    let mut flips = 0;
    for b in &rec.branches {
        if let Some(pb) = phase.branches.get(&b.addr) {
            let rb = PhaseBranch::once(b.exec as u64, b.taken as u64);
            match (pb.bias(cfg.bias_threshold), rb.bias(cfg.bias_threshold)) {
                (Bias::Taken, Bias::NotTaken) | (Bias::NotTaken, Bias::Taken) => flips += 1,
                _ => {}
            }
        }
    }
    if flips >= cfg.bias_flip_threshold {
        SPLIT_BIAS_FLIP.incr();
        return false;
    }
    true
}

fn merge(phase: &mut Phase, rec: &HotSpotRecord) {
    for b in &rec.branches {
        match phase.branches.entry(b.addr) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(PhaseBranch::once(b.exec as u64, b.taken as u64));
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                // Redundant observation: eliminated, only counted.
                o.get_mut().seen += 1;
            }
        }
    }
    phase.detections += 1;
}

/// Deduplicates raw hot-spot records into unique phases.
///
/// Each record is compared against every already-known phase (an unbounded
/// software history, as the paper assumes); matching records are
/// eliminated into it, new ones open a new phase.
pub fn filter_hot_spots(records: &[HotSpotRecord], cfg: &FilterConfig) -> Vec<Phase> {
    assign_phases(records, cfg).0
}

/// Like [`filter_hot_spots`], additionally returning which phase each raw
/// record landed in — the per-detection timeline of the run.
pub fn assign_phases(records: &[HotSpotRecord], cfg: &FilterConfig) -> (Vec<Phase>, Vec<usize>) {
    let mut phases: Vec<Phase> = Vec::new();
    let mut assignment = Vec::with_capacity(records.len());
    for rec in records {
        FILTER_RECORDS.incr();
        if let Some(idx) = phases.iter().position(|p| same_hot_spot(cfg, p, rec)) {
            FILTER_MERGED.incr();
            merge(&mut phases[idx], rec);
            assignment.push(idx);
        } else {
            FILTER_PHASES.incr();
            let mut p = Phase {
                id: phases.len(),
                branches: BTreeMap::new(),
                first_detected_at: rec.at_branch,
                detections: 0,
            };
            merge(&mut p, rec);
            assignment.push(phases.len());
            phases.push(p);
        }
    }
    (phases, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::BranchProfile;

    fn rec(at: u64, branches: &[(u64, u32, u32)]) -> HotSpotRecord {
        HotSpotRecord {
            at_branch: at,
            branches: branches
                .iter()
                .map(|&(addr, exec, taken)| BranchProfile { addr, exec, taken })
                .collect(),
        }
    }

    #[test]
    fn identical_records_merge() {
        let r = rec(100, &[(0x10, 100, 90), (0x14, 100, 10)]);
        let phases = filter_hot_spots(&[r.clone(), r], &FilterConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].detections, 2);
        assert_eq!(phases[0].branches[&0x10].seen, 2);
        assert_eq!(phases[0].branches[&0x10].avg_exec(), 100);
    }

    #[test]
    fn disjoint_records_are_distinct_phases() {
        let a = rec(100, &[(0x10, 100, 90), (0x14, 100, 10)]);
        let b = rec(200, &[(0x90, 100, 90), (0x94, 100, 10)]);
        let phases = filter_hot_spots(&[a, b], &FilterConfig::default());
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[1].first_detected_at, 200);
    }

    #[test]
    fn thirty_percent_missing_splits_phases() {
        // 10 branches vs. the same with 3 replaced: 30% missing → distinct.
        let a: Vec<(u64, u32, u32)> = (0..10).map(|i| (0x10 + 4 * i, 100, 50)).collect();
        let mut b = a.clone();
        for (i, e) in b.iter_mut().enumerate().take(3) {
            e.0 = 0x200 + 4 * i as u64;
        }
        let phases = filter_hot_spots(&[rec(1, &a), rec(2, &b)], &FilterConfig::default());
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn small_overlap_difference_merges() {
        // 2 of 10 branches replaced: 20% missing → same phase.
        let a: Vec<(u64, u32, u32)> = (0..10).map(|i| (0x10 + 4 * i, 100, 50)).collect();
        let mut b = a.clone();
        for (i, e) in b.iter_mut().enumerate().take(2) {
            e.0 = 0x200 + 4 * i as u64;
        }
        let phases = filter_hot_spots(&[rec(1, &a), rec(2, &b)], &FilterConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].branches.len(), 12);
    }

    #[test]
    fn bias_flip_splits_phases() {
        let a = rec(1, &[(0x10, 100, 95), (0x14, 100, 50)]);
        let b = rec(2, &[(0x10, 100, 5), (0x14, 100, 50)]);
        let phases = filter_hot_spots(&[a, b], &FilterConfig::default());
        assert_eq!(phases.len(), 2, "taken-vs-not-taken flip must split");
    }

    #[test]
    fn unbiased_drift_does_not_split() {
        let a = rec(1, &[(0x10, 100, 60), (0x14, 100, 50)]);
        let b = rec(2, &[(0x10, 100, 40), (0x14, 100, 50)]);
        let phases = filter_hot_spots(&[a, b], &FilterConfig::default());
        assert_eq!(
            phases.len(),
            1,
            "drift between unbiased values must not split"
        );
    }

    #[test]
    fn bias_classification() {
        assert_eq!(PhaseBranch::once(100, 80).bias(0.7), Bias::Taken);
        assert_eq!(PhaseBranch::once(100, 20).bias(0.7), Bias::NotTaken);
        assert_eq!(PhaseBranch::once(100, 50).bias(0.7), Bias::Unbiased);
        assert_eq!(PhaseBranch::once(0, 0).bias(0.7), Bias::NotTaken);
    }

    #[test]
    fn raised_flip_threshold_merges_single_flip() {
        let cfg = FilterConfig {
            bias_flip_threshold: 2,
            ..FilterConfig::default()
        };
        let a = rec(1, &[(0x10, 100, 95), (0x14, 100, 50)]);
        let b = rec(2, &[(0x10, 100, 5), (0x14, 100, 50)]);
        let phases = filter_hot_spots(&[a, b], &cfg);
        assert_eq!(phases.len(), 1, "one flip below threshold 2 must merge");
    }

    #[test]
    fn phase_weights() {
        let phases = filter_hot_spots(
            &[rec(1, &[(0x10, 100, 90), (0x14, 300, 10)])],
            &FilterConfig::default(),
        );
        assert_eq!(phases[0].total_weight(), 400);
        assert_eq!(phases[0].max_weight(), 300);
    }

    #[test]
    fn merged_detections_stay_in_counter_scale() {
        // Ten re-detections of the same hot spot must not inflate the
        // per-detection weight.
        let recs: Vec<HotSpotRecord> = (0..10)
            .map(|i| rec(i, &[(0x10, 400, 360), (0x14, 400, 40)]))
            .collect();
        let phases = filter_hot_spots(&recs, &FilterConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].branches[&0x10].avg_exec(), 400);
        assert!((phases[0].branches[&0x10].taken_fraction() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn boundary_record_cannot_pollute_established_phase() {
        // A steady 97%-taken phase, then one straddling window at 50%
        // (same branch set, unbiased — no flip, so it matches), then more
        // steady records: the phase's taken fraction must stay at the
        // first record's 97%.
        let mut recs: Vec<HotSpotRecord> = (0..5)
            .map(|i| rec(i, &[(0x10, 500, 485), (0x14, 500, 250)]))
            .collect();
        recs.push(rec(6, &[(0x10, 500, 250), (0x14, 500, 250)]));
        recs.extend((7..10).map(|i| rec(i, &[(0x10, 500, 485), (0x14, 500, 250)])));
        let phases = filter_hot_spots(&recs, &FilterConfig::default());
        assert_eq!(phases.len(), 1);
        assert!((phases[0].branches[&0x10].taken_fraction() - 0.97).abs() < 1e-9);
    }
}
