//! # vp-hsd
//!
//! The Hot Spot Detector (HSD): the transparent hardware profiler that
//! drives Vacuum Packing (paper Section 3.1, after Merten et al. ISCA
//! 1999).
//!
//! Three layers:
//!
//! * [`HotSpotDetector`] — the hardware model: a set-associative Branch
//!   Behavior Buffer with saturating executed/taken counters plus the Hot
//!   Spot Detection Counter, attached to an execution as a
//!   [`vp_exec::Sink`]. It emits raw [`HotSpotRecord`]s.
//! * [`filter_hot_spots`] — the software pass that deduplicates redundant
//!   detections into unique [`Phase`]s using the paper's two similarity
//!   criteria (≥30% missing branches, or a biased branch flipping bias).
//! * [`merge`] — the multi-run profile merge algebra: [`ProfileDump`]s
//!   from separate runs combine into a [`MergedProfile`] via
//!   saturating-counter-aware weighted union, an associative, commutative,
//!   idempotent operation (see the module docs for a worked example).
//!
//! ```
//! use vp_hsd::{HotSpotDetector, HsdConfig, filter_hot_spots, FilterConfig};
//!
//! let mut det = HotSpotDetector::new(HsdConfig::table2());
//! // A hot loop of 8 branches, all taken:
//! for _ in 0..4000 {
//!     for b in 0..8u64 {
//!         det.observe(0x1000 + 4 * b, true);
//!     }
//! }
//! let phases = filter_hot_spots(det.records(), &FilterConfig::default());
//! assert_eq!(phases.len(), 1);
//! ```
//!
//! The detector is a pure function of the retired stream it observes: it
//! behaves identically whether that stream comes from a live
//! `vp_exec::Executor` run or from a `vp_exec::CapturedTrace` replay,
//! which is what lets the harness profile a workload under many detector
//! configurations from a single recorded execution (see `vp-metrics`).

#![warn(missing_docs)]

pub mod detector;
pub mod filter;
pub mod merge;
pub mod signature;

pub use detector::{BranchProfile, HotSpotDetector, HotSpotRecord, HsdConfig};
pub use filter::{assign_phases, filter_hot_spots, Bias, FilterConfig, Phase, PhaseBranch};
pub use merge::{MergeConfig, MergedProfile, ProfileDump, Weighting};
pub use signature::{DetectionHistory, HotSpotSignature};
