//! `VP_FLIGHT_EVENTS=0` must disable the flight recorder cleanly: no
//! ring allocation, recording and the panic hook become no-ops, and the
//! manifest stamps an explicit all-zero `flight` object.
//!
//! Lives in its own integration-test binary because the capacity knob is
//! read once per process; a single test function keeps the `set_var`
//! before any other thread can race the first read.

use vp_trace::Json;

#[test]
fn flight_events_zero_disables_recorder() {
    std::env::set_var("VP_FLIGHT_EVENTS", "0");
    assert!(vp_trace::flight::is_disabled());

    // Recording is a no-op even inside an enabled scope: record() bails
    // before drawing a seq or touching the scope report.
    let ((), report) = vp_trace::scoped(|| {
        vp_trace::flight("test.disabled.evt", 1, 2);
    });
    assert!(report.flights.is_empty(), "no events reach a scoped report");

    let snap = vp_trace::flight::snapshot();
    assert_eq!(snap.capacity, 0);
    assert_eq!(snap.recorded, 0);
    assert_eq!(snap.dropped, 0);
    assert!(snap.events.is_empty());

    // Both are documented no-ops when disabled; neither may panic or
    // allocate the ring.
    vp_trace::flight::dump_on_panic();
    vp_trace::flight::reset();

    // The manifest distinguishes "recorder off" from "nothing recorded":
    // an explicit zero flight object, with no tail.
    let mut m = vp_trace::Manifest::new("flight-disabled");
    m.stamp();
    let j = Json::parse(&m.render()).unwrap();
    let f = j.get("flight").expect("disabled recorder still stamped");
    assert_eq!(f.get("capacity").and_then(Json::as_u64), Some(0));
    assert_eq!(f.get("recorded").and_then(Json::as_u64), Some(0));
    assert_eq!(f.get("dropped").and_then(Json::as_u64), Some(0));
    assert!(f.get("tail").is_none(), "no tail array when disabled");
}
