//! End-to-end check of the `VP_LIVE_FEED` emitter: events append as
//! whole `vp-feed/1` lines, seq/ms advance, and the manifest stamps the
//! feed path.
//!
//! Own integration-test binary (the feed target is resolved once per
//! process); a single test function sets the env var before first use.

use vp_trace::{Json, Value};

#[test]
fn feed_env_appends_events_and_stamps_manifest() {
    let path = std::env::temp_dir().join(format!("vp-feed-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("VP_LIVE_FEED", &path);

    assert!(vp_trace::feed_enabled());
    assert_eq!(vp_trace::feed_target(), Some(path.as_path()));

    vp_trace::feed("test.start", &[("total", Value::U64(4))]);
    vp_trace::feed(
        "test.done",
        &[
            ("ok", Value::Bool(true)),
            ("cell", Value::Str("gzip".into())),
        ],
    );

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one line per event: {text:?}");

    let a = vp_trace::parse_feed_line(lines[0]).unwrap();
    assert_eq!(a.get("kind").and_then(Json::as_str), Some("test.start"));
    assert_eq!(a.get("total").and_then(Json::as_u64), Some(4));
    let b = vp_trace::parse_feed_line(lines[1]).unwrap();
    assert_eq!(b.get("kind").and_then(Json::as_str), Some("test.done"));
    assert_eq!(b.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(b.get("cell").and_then(Json::as_str), Some("gzip"));

    // seq shares the span-id domain and is strictly monotonic; ms is a
    // non-negative offset from first emission.
    let sa = a.get("seq").and_then(Json::as_u64).unwrap();
    let sb = b.get("seq").and_then(Json::as_u64).unwrap();
    assert!(sb > sa, "feed seqs advance: {sa} then {sb}");
    assert!(a.get("ms").and_then(Json::as_f64).unwrap() >= 0.0);

    // The manifest records where the feed went.
    let mut m = vp_trace::Manifest::new("feed-env");
    m.stamp();
    let j = Json::parse(&m.render()).unwrap();
    assert_eq!(
        j.get("live_feed").and_then(Json::as_str),
        path.to_str(),
        "manifest stamps the live feed path"
    );

    let _ = std::fs::remove_file(&path);
}
