//! `vp-trace`: zero-dependency structured tracing for the vacuum-packing
//! pipeline.
//!
//! Four primitives:
//!
//! * [`span`] — RAII stage timers; drop records wall time;
//! * [`Counter`] — named monotonic counters, cheap enough for hot loops;
//! * [`Histogram`] — named log-bucketed value distributions;
//! * [`event`] — typed one-shot events with key/value fields.
//!
//! Tracing is **off by default**: every instrumentation site is guarded by
//! [`enabled`], a single relaxed load of an atomic, so instrumented hot
//! loops cost one predictable branch when nothing is listening.
//!
//! Output goes to a pluggable [`sink::TraceSink`] selected via the
//! `VP_TRACE` environment variable (`summary`, `json`, or `json:<path>`),
//! or installed programmatically with [`install`]. Tests use [`scoped`],
//! which enables tracing on the current thread's behalf and returns every
//! counter increment, span, and event the closure produced — deterministic
//! even under `cargo test`'s thread pool, because collection is
//! thread-local.
//!
//! Run manifests (config + stage times + counters + result tables) are
//! built with [`manifest::Manifest`] and emitted as single JSONL objects.

pub mod feed;
pub mod flight;
pub mod json;
pub mod manifest;
pub mod sink;

pub use feed::{feed, feed_enabled, feed_target, parse_feed_line};
pub use flight::{flight, FlightEvent, FlightSnapshot, DEFAULT_FLIGHT_EVENTS};
pub use json::Json;
pub use manifest::{parse_manifest_line, Manifest};
pub use sink::{JsonlSink, MemorySink, SummarySink, TraceSink};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One trace record, as delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span: total wall time in nanoseconds.
    Span {
        /// Stage name, e.g. `"profile.run"`.
        name: String,
        /// Elapsed wall time in nanoseconds.
        nanos: u64,
        /// Span id from the shared sequence domain ([`next_seq`]), assigned
        /// when the span *opened* — ids order span starts, not completions.
        id: u64,
        /// Id of the enclosing span (`0` for a root span), making the span
        /// stream reconstructible as a tree.
        parent: u64,
    },
    /// A flight-recorder dump, flushed by [`finish`] when the ring is
    /// nonempty.
    Flight {
        /// The retained events, oldest first.
        events: Vec<FlightEvent>,
    },
    /// A counter total, flushed by [`finish`].
    Count {
        /// Counter name, e.g. `"hsd.detections"`.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// A typed event with fields.
    Event {
        /// Event name, e.g. `"core.pkg.inline"`.
        name: String,
        /// Ordered key/value fields.
        fields: Vec<(String, Value)>,
    },
    /// A histogram total, flushed by [`finish`].
    Hist {
        /// Histogram name, e.g. `"diff.package_residency"`.
        name: String,
        /// The accumulated distribution.
        hist: HistSnapshot,
    },
}

/// A field value attached to an [`Record::Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Count of reasons tracing is on: an installed sink plus any live
/// [`scoped`] regions. Zero means every instrumentation site is a single
/// predicted-not-taken branch.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The shared monotonic sequence domain: span ids and flight-recorder
/// stamps are drawn from one process-global counter, so spans and flight
/// events interleave into a single total order.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Draws the next sequence number (ids start at 1; `0` means "none").
#[inline]
pub fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// The highest sequence number issued so far — the `seq` ceiling stamped
/// into `vp-manifest/2` manifests, bounding every id a run's records can
/// reference.
pub fn seq_ceiling() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// Whether any instrumentation consumer is active.
///
/// This is the mandated fast path: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, &'static AtomicU64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, &'static AtomicU64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn hist_registry() -> &'static Mutex<BTreeMap<&'static str, &'static HistCell>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, &'static HistCell>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn span_totals() -> &'static Mutex<BTreeMap<String, (u64, u64)>> {
    static TOTALS: OnceLock<Mutex<BTreeMap<String, (u64, u64)>>> = OnceLock::new();
    TOTALS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Aggregated span wall times keyed by *path* (`"a/b/c"`), the
/// hierarchical counterpart of [`span_totals`].
fn span_tree_totals() -> &'static Mutex<BTreeMap<String, (u64, u64)>> {
    static TOTALS: OnceLock<Mutex<BTreeMap<String, (u64, u64)>>> = OnceLock::new();
    TOTALS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// Live spans on this thread, innermost last: `(id, path)`.
    static SPAN_STACK: RefCell<Vec<(u64, String)>> = const { RefCell::new(Vec::new()) };
}

fn sink_slot() -> &'static Mutex<Option<Arc<dyn TraceSink>>> {
    static SINK: OnceLock<Mutex<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn current_sink() -> Option<Arc<dyn TraceSink>> {
    sink_slot().lock().expect("trace sink").clone()
}

#[derive(Debug, Default)]
struct ScopeState {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, HistAccum>,
    spans: Vec<(String, u64)>,
    events: Vec<(String, Vec<(String, Value)>)>,
    flights: Vec<FlightEvent>,
}

thread_local! {
    static SCOPES: RefCell<Vec<ScopeState>> = const { RefCell::new(Vec::new()) };
}

/// A named monotonic counter.
///
/// Declare as a `static`, bump with [`Counter::add`] / [`Counter::incr`].
/// The first increment registers the counter in a global registry; totals
/// are read via [`counters_snapshot`] and flushed to the sink by
/// [`finish`]. Increments made inside a [`scoped`] region on the same
/// thread are additionally captured in that scope's [`TraceReport`].
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Creates a counter; `const`, so it works in `static` position.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op single branch when tracing is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.record(n);
        }
    }

    /// Adds one; a no-op single branch when tracing is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    #[cold]
    fn record(&self, n: u64) {
        let cell = self.cell.get_or_init(|| {
            let mut reg = registry().lock().expect("trace registry");
            reg.entry(self.name)
                .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
        });
        cell.fetch_add(n, Ordering::Relaxed);
        SCOPES.with(|s| {
            for scope in s.borrow_mut().iter_mut() {
                *scope.counters.entry(self.name).or_insert(0) += n;
            }
        });
    }
}

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds the value 0,
/// bucket `i` (for `i >= 1`) holds values in `[2^(i-1), 2^i)`.
const HIST_BUCKETS: usize = 65;

/// The bucket a value falls into.
#[inline]
fn hist_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
fn hist_bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
        // Sums saturate: huge observations (u64::MAX sentinels) must not
        // wrap the total.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((hist_bucket_lo(i), n));
            }
        }
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Thread-local histogram accumulation inside a [`scoped`] region.
#[derive(Debug)]
struct HistAccum {
    buckets: [u64; HIST_BUCKETS],
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistAccum {
    fn default() -> HistAccum {
        HistAccum {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistAccum {
    fn observe(&mut self, v: u64) {
        self.buckets[hist_bucket(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                count += n;
                buckets.push((hist_bucket_lo(i), n));
            }
        }
        HistSnapshot {
            count,
            sum: self.sum,
            min: if count == 0 { 0 } else { self.min },
            max: self.max,
            buckets,
        }
    }
}

/// An immutable view of a histogram's accumulated distribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    /// Bucket bounds are powers of two (bucket 0 holds only the value 0).
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the `ceil(q * count)`-th observation. Bucketing makes this
    /// exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(lo, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lo;
            }
        }
        self.max
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        for &(lo, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&lo, |&(l, _)| l) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (lo, n)),
            }
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// A named log-bucketed histogram of `u64` observations.
///
/// Declare as a `static`, record with [`Histogram::observe`]. Like
/// [`Counter`], observation is a single predicted branch when tracing is
/// disabled, the first observation registers the histogram globally, and
/// observations made inside a [`scoped`] region on the same thread are
/// additionally captured in that scope's [`TraceReport`]. Buckets are
/// powers of two, so the 65 fixed buckets cover the full `u64` range.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistCell>,
}

impl Histogram {
    /// Creates a histogram; `const`, so it works in `static` position.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation; a no-op single branch when tracing is
    /// disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.record(v);
        }
    }

    #[cold]
    fn record(&self, v: u64) {
        let cell = self.cell.get_or_init(|| {
            let mut reg = hist_registry().lock().expect("trace hist registry");
            reg.entry(self.name)
                .or_insert_with(|| Box::leak(Box::new(HistCell::new())))
        });
        cell.observe(v);
        SCOPES.with(|s| {
            for scope in s.borrow_mut().iter_mut() {
                scope.hists.entry(self.name).or_default().observe(v);
            }
        });
    }
}

/// An RAII stage timer; created by [`span`] or [`span_in`], records on
/// drop.
pub struct Span {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: String,
    path: String,
    id: u64,
    parent: u64,
    start: Instant,
}

/// A span's identity, capturable on one thread and adoptable on another.
///
/// Spans nest through a thread-local stack, so work handed to a worker
/// thread would otherwise start a new root. Capture
/// [`current_span_context`] on the dispatching thread and open the
/// worker's outermost span with [`span_in`] to keep the tree connected —
/// this is how the bench sweep's per-cell spans hang off
/// `bench.sweep_cells`.
#[derive(Debug, Clone, Default)]
pub struct SpanContext {
    id: u64,
    path: String,
}

/// The innermost live span on this thread (the root context when none).
pub fn current_span_context() -> SpanContext {
    SPAN_STACK.with(|s| {
        s.borrow()
            .last()
            .map_or_else(SpanContext::default, |(id, path)| SpanContext {
                id: *id,
                path: path.clone(),
            })
    })
}

/// Starts a stage timer named `name`, nested under this thread's
/// innermost live span.
///
/// When tracing is disabled this neither allocates nor reads the clock.
#[inline]
pub fn span(name: &str) -> Span {
    if enabled() {
        span_slow(name, None)
    } else {
        Span { live: None }
    }
}

/// Starts a stage timer parented under an explicit [`SpanContext`]
/// instead of this thread's stack — the cross-thread form of [`span`].
#[inline]
pub fn span_in(ctx: &SpanContext, name: &str) -> Span {
    if enabled() {
        span_slow(name, Some(ctx))
    } else {
        Span { live: None }
    }
}

#[cold]
fn span_slow(name: &str, ctx: Option<&SpanContext>) -> Span {
    let id = next_seq();
    let (parent, path) = match ctx {
        Some(c) if c.id != 0 => (c.id, format!("{}/{name}", c.path)),
        _ => SPAN_STACK.with(|s| {
            s.borrow().last().map_or_else(
                || (0, name.to_string()),
                |(pid, ppath)| (*pid, format!("{ppath}/{name}")),
            )
        }),
    };
    SPAN_STACK.with(|s| s.borrow_mut().push((id, path.clone())));
    Span {
        live: Some(LiveSpan {
            name: name.to_string(),
            path,
            id,
            parent,
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let nanos = live.start.elapsed().as_nanos() as u64;
            // Unwind this span (and any children leaked past it) from the
            // thread's stack.
            SPAN_STACK.with(|s| {
                let mut st = s.borrow_mut();
                if let Some(i) = st.iter().rposition(|(id, _)| *id == live.id) {
                    st.truncate(i);
                }
            });
            {
                let mut totals = span_totals().lock().expect("trace span totals");
                let e = totals.entry(live.name.clone()).or_insert((0, 0));
                e.0 += 1;
                e.1 += nanos;
            }
            {
                let mut tree = span_tree_totals().lock().expect("trace span tree");
                let e = tree.entry(live.path).or_insert((0, 0));
                e.0 += 1;
                e.1 += nanos;
            }
            SCOPES.with(|s| {
                for scope in s.borrow_mut().iter_mut() {
                    scope.spans.push((live.name.clone(), nanos));
                }
            });
            if let Some(sink) = current_sink() {
                sink.record(&Record::Span {
                    name: live.name,
                    nanos,
                    id: live.id,
                    parent: live.parent,
                });
            }
        }
    }
}

/// One aggregated node of the span tree, addressed by its `/`-joined path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Full path from the root, e.g. `"bench.sweep_cells/bench.cell"`.
    pub path: String,
    /// The leaf stage name.
    pub name: String,
    /// Nesting depth (root = 0).
    pub depth: usize,
    /// Completions at this path.
    pub count: u64,
    /// Total wall nanoseconds at this path (includes children).
    pub nanos: u64,
}

/// The aggregated span tree, sorted so each subtree is contiguous —
/// the self-profile behind the `report` binary's per-stage cost
/// breakdown.
pub fn tree_snapshot() -> Vec<SpanNode> {
    span_tree_totals()
        .lock()
        .expect("trace span tree")
        .iter()
        .map(|(path, &(count, nanos))| SpanNode {
            name: path.rsplit('/').next().unwrap_or(path).to_string(),
            depth: path.matches('/').count(),
            path: path.clone(),
            count,
            nanos,
        })
        .collect()
}

/// Renders the span tree as an indented text table (name, calls, total
/// ms), one line per [`SpanNode`].
pub fn render_span_tree(nodes: &[SpanNode]) -> String {
    let mut out = String::new();
    for n in nodes {
        out.push_str(&format!(
            "{:<52} {:>8} x {:>12.3} ms\n",
            format!("{}{}", "  ".repeat(n.depth), n.name),
            n.count,
            n.nanos as f64 / 1e6
        ));
    }
    out
}

/// Emits a typed event with fields; a no-op branch when tracing is off.
#[inline]
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if enabled() {
        event_slow(name, fields);
    }
}

#[cold]
fn event_slow(name: &str, fields: &[(&str, Value)]) {
    let owned: Vec<(String, Value)> = fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    SCOPES.with(|s| {
        for scope in s.borrow_mut().iter_mut() {
            scope.events.push((name.to_string(), owned.clone()));
        }
    });
    if let Some(sink) = current_sink() {
        sink.record(&Record::Event {
            name: name.to_string(),
            fields: owned,
        });
    }
}

/// Mirrors a flight-recorder event into this thread's open scopes, so
/// tests can assert on flight activity via [`TraceReport::flights`]
/// without racing other threads on the global ring.
pub(crate) fn scope_flight(seq: u64, kind: &'static str, a: u64, b: u64) {
    SCOPES.with(|s| {
        for scope in s.borrow_mut().iter_mut() {
            scope.flights.push(FlightEvent {
                seq,
                kind: kind.to_string(),
                a,
                b,
            });
        }
    });
}

/// Everything a [`scoped`] closure produced on its thread.
#[derive(Debug, Default, Clone)]
pub struct TraceReport {
    /// Counter deltas, by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram observations made inside the scope, by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Spans in completion order: `(name, nanos)`.
    pub spans: Vec<(String, u64)>,
    /// Events in emission order.
    pub events: Vec<(String, Vec<(String, Value)>)>,
    /// Flight-recorder events emitted inside the scope, in order.
    pub flights: Vec<FlightEvent>,
}

impl TraceReport {
    /// The delta of `name` inside the scope (0 if it never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The scope-local distribution of histogram `name` (empty snapshot if
    /// it never observed).
    pub fn histogram(&self, name: &str) -> HistSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// How many events named `name` fired inside the scope.
    pub fn event_count(&self, name: &str) -> usize {
        self.events.iter().filter(|(n, _)| n == name).count()
    }

    /// Whether a span named `name` completed inside the scope.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans.iter().any(|(n, _)| n == name)
    }

    /// How many flight events of `kind` fired inside the scope.
    pub fn flight_count(&self, kind: &str) -> usize {
        self.flights.iter().filter(|e| e.kind == kind).count()
    }
}

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `f` with tracing enabled and collects everything it recorded on
/// this thread.
///
/// Counter increments, spans, and events from other threads are *not*
/// captured (they still reach the global registry/sink), which keeps
/// reports deterministic under `cargo test`'s parallel runner.
pub fn scoped<T>(f: impl FnOnce() -> T) -> (T, TraceReport) {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let _guard = ScopeGuard;
    SCOPES.with(|s| s.borrow_mut().push(ScopeState::default()));
    // If `f` panics, pop the scope during unwinding so a worker thread that
    // catches the panic (the sweep's per-cell isolation) doesn't leak a
    // stale scope that swallows later cells' records.
    struct PopOnPanic;
    impl Drop for PopOnPanic {
        fn drop(&mut self) {
            if std::thread::panicking() {
                SCOPES.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
    }
    let pop = PopOnPanic;
    let out = f();
    std::mem::forget(pop);
    let state = SCOPES.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    let report = TraceReport {
        counters: state
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        histograms: state
            .hists
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect(),
        spans: state.spans,
        events: state.events,
        flights: state.flights,
    };
    (out, report)
}

/// Installs `sink` as the global trace destination and enables tracing.
///
/// Replacing an existing sink keeps tracing enabled; installing over
/// `None` turns it on.
pub fn install(sink: Arc<dyn TraceSink>) {
    let mut slot = sink_slot().lock().expect("trace sink");
    if slot.is_none() {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
    *slot = Some(sink);
}

/// Whether a global sink is installed.
pub fn installed() -> bool {
    sink_slot().lock().expect("trace sink").is_some()
}

/// Installs a sink according to `VP_TRACE`.
///
/// * `summary` — aggregate table printed to stderr at [`finish`];
/// * `json` — JSONL records to stderr;
/// * `json:<path>` — JSONL records appended to `<path>`;
/// * unset / empty / `0` / `off` — tracing stays disabled.
///
/// Returns `true` if a sink was installed.
pub fn init_from_env() -> bool {
    match std::env::var("VP_TRACE") {
        Ok(v) => init_from_spec(&v),
        Err(_) => false,
    }
}

/// Installs a sink from a `VP_TRACE`-style spec string. See
/// [`init_from_env`].
pub fn init_from_spec(spec: &str) -> bool {
    let spec = spec.trim();
    match spec {
        "" | "0" | "off" | "none" => false,
        "summary" => {
            install(Arc::new(SummarySink::new()));
            true
        }
        "json" => {
            install(Arc::new(JsonlSink::stderr()));
            true
        }
        _ => {
            if let Some(path) = spec.strip_prefix("json:") {
                match JsonlSink::file(path) {
                    Ok(s) => install(Arc::new(s)),
                    Err(e) => {
                        eprintln!("vp-trace: cannot open {path}: {e}; falling back to stderr");
                        install(Arc::new(JsonlSink::stderr()));
                    }
                }
                true
            } else {
                eprintln!("vp-trace: unknown VP_TRACE value {spec:?}; tracing disabled");
                false
            }
        }
    }
}

/// A snapshot of every registered counter's current total.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    registry()
        .lock()
        .expect("trace registry")
        .iter()
        .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
        .collect()
}

/// A snapshot of every registered histogram's accumulated distribution.
pub fn histograms_snapshot() -> BTreeMap<String, HistSnapshot> {
    hist_registry()
        .lock()
        .expect("trace hist registry")
        .iter()
        .map(|(name, cell)| (name.to_string(), cell.snapshot()))
        .collect()
}

/// A snapshot of aggregated span wall times: name → `(count, total nanos)`.
pub fn spans_snapshot() -> BTreeMap<String, (u64, u64)> {
    span_totals().lock().expect("trace span totals").clone()
}

/// Zeroes all counters and histograms, clears span aggregates (flat and
/// tree), and empties the flight-recorder ring.
pub fn reset() {
    for cell in registry().lock().expect("trace registry").values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in hist_registry()
        .lock()
        .expect("trace hist registry")
        .values()
    {
        cell.reset();
    }
    span_totals().lock().expect("trace span totals").clear();
    span_tree_totals().lock().expect("trace span tree").clear();
    flight::reset();
}

/// Sends a serialized manifest line to the installed sink (if any).
pub fn emit_manifest(json: &str) {
    if let Some(sink) = current_sink() {
        sink.manifest(json);
    }
}

/// Flushes counter totals to the sink, flushes the sink, and uninstalls
/// it (disabling tracing unless scopes are still live).
pub fn finish() {
    let sink = {
        let mut slot = sink_slot().lock().expect("trace sink");
        let taken = slot.take();
        if taken.is_some() {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
        taken
    };
    if let Some(sink) = sink {
        for (name, value) in counters_snapshot() {
            if value > 0 {
                sink.record(&Record::Count { name, value });
            }
        }
        for (name, hist) in histograms_snapshot() {
            if hist.count > 0 {
                sink.record(&Record::Hist { name, hist });
            }
        }
        let flights = flight::snapshot();
        if !flights.events.is_empty() {
            sink.record(&Record::Flight {
                events: flights.events,
            });
        }
        sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER_A: Counter = Counter::new("test.lib.a");
    static TEST_COUNTER_B: Counter = Counter::new("test.lib.b");

    #[test]
    fn disabled_counter_does_not_count() {
        // No sink, no scope on this thread: increments are dropped.
        TEST_COUNTER_B.add(5);
        let ((), report) = scoped(|| {});
        assert_eq!(report.counter("test.lib.b"), 0);
    }

    #[test]
    fn scoped_captures_counters_spans_events() {
        let (val, report) = scoped(|| {
            let _s = span("test.stage");
            TEST_COUNTER_A.add(3);
            TEST_COUNTER_A.incr();
            event(
                "test.ev",
                &[("k", Value::from(7u64)), ("s", Value::from("x"))],
            );
            42
        });
        assert_eq!(val, 42);
        assert_eq!(report.counter("test.lib.a"), 4);
        assert!(report.has_span("test.stage"));
        assert_eq!(report.event_count("test.ev"), 1);
        assert_eq!(report.events[0].1[0], ("k".to_string(), Value::U64(7)));
    }

    #[test]
    fn nested_scopes_both_observe() {
        let ((), outer) = scoped(|| {
            TEST_COUNTER_A.incr();
            let ((), inner) = scoped(|| {
                TEST_COUNTER_A.add(2);
            });
            assert_eq!(inner.counter("test.lib.a"), 2);
        });
        assert_eq!(outer.counter("test.lib.a"), 3);
    }

    static TEST_HIST: Histogram = Histogram::new("test.lib.h");

    #[test]
    fn scoped_captures_histograms() {
        let ((), report) = scoped(|| {
            TEST_HIST.observe(0);
            TEST_HIST.observe(1);
            TEST_HIST.observe(5);
            TEST_HIST.observe(5);
            TEST_HIST.observe(1000);
        });
        let h = report.histogram("test.lib.h");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1011);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0 → bucket lo 0; 1 → lo 1; 5,5 → lo 4; 1000 → lo 512.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (4, 2), (512, 1)]);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 512);
        assert!((h.mean() - 202.2).abs() < 1e-9);
        // The global registry saw the same observations.
        let g = histograms_snapshot();
        assert!(g.get("test.lib.h").is_some_and(|h| h.count >= 5));
    }

    #[test]
    fn hist_snapshot_merge_combines_buckets() {
        let mut a = HistSnapshot {
            count: 2,
            sum: 6,
            min: 2,
            max: 4,
            buckets: vec![(2, 1), (4, 1)],
        };
        let b = HistSnapshot {
            count: 3,
            sum: 13,
            min: 1,
            max: 8,
            buckets: vec![(1, 1), (4, 1), (8, 1)],
        };
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 19);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 8);
        assert_eq!(a.buckets, vec![(1, 1), (2, 1), (4, 2), (8, 1)]);
        a.merge(&HistSnapshot::default());
        assert_eq!(a.count, 5);
    }

    #[test]
    fn disabled_histogram_does_not_observe() {
        TEST_HIST.observe(7);
        let ((), report) = scoped(|| {});
        assert_eq!(report.histogram("test.lib.h").count, 0);
    }

    #[test]
    fn init_from_spec_rejects_unknown_and_off() {
        assert!(!init_from_spec(""));
        assert!(!init_from_spec("off"));
        assert!(!init_from_spec("0"));
        assert!(!init_from_spec("definitely-not-a-mode"));
    }

    #[test]
    fn spans_nest_hierarchically_on_one_thread() {
        let ((), _report) = scoped(|| {
            assert_eq!(current_span_context().id, 0, "fresh thread starts at root");
            let outer = span("test.tree.outer");
            let octx = current_span_context();
            assert!(octx.id > 0);
            assert_eq!(octx.path, "test.tree.outer");
            {
                let _inner = span("test.tree.inner");
                let ictx = current_span_context();
                assert!(ictx.id > octx.id, "ids are monotonic in open order");
                assert_eq!(ictx.path, "test.tree.outer/test.tree.inner");
            }
            assert_eq!(
                current_span_context().id,
                octx.id,
                "inner drop restores the parent"
            );
            drop(outer);
            assert_eq!(current_span_context().id, 0, "outer drop empties the stack");
        });
        // The aggregated tree keys by full path; unique names keep this
        // assertion race-free under the parallel test runner.
        let nodes = tree_snapshot();
        let inner = nodes
            .iter()
            .find(|n| n.path == "test.tree.outer/test.tree.inner")
            .expect("inner path aggregated");
        assert_eq!(inner.name, "test.tree.inner");
        assert_eq!(inner.depth, 1);
        assert!(inner.count >= 1);
        let outer = nodes
            .iter()
            .find(|n| n.path == "test.tree.outer")
            .expect("outer path aggregated");
        assert_eq!(outer.depth, 0);
        assert!(
            outer.nanos >= inner.nanos,
            "parent time includes child time"
        );
    }

    #[test]
    fn span_in_adopts_a_cross_thread_parent() {
        let ((), _report) = scoped(|| {
            let _root = span("test.adopt.root");
            let ctx = current_span_context();
            std::thread::spawn(move || {
                // enabled() is process-global, so the worker records while
                // the dispatching scope is live — this is the sweep's
                // dispatcher/worker shape.
                let _cell = span_in(&ctx, "test.adopt.cell");
            })
            .join()
            .unwrap();
        });
        assert!(
            tree_snapshot()
                .iter()
                .any(|n| n.path == "test.adopt.root/test.adopt.cell" && n.depth == 1),
            "worker span hangs off the dispatcher's context"
        );
    }

    #[test]
    fn render_span_tree_indents_by_depth() {
        let nodes = vec![
            SpanNode {
                path: "a".into(),
                name: "a".into(),
                depth: 0,
                count: 1,
                nanos: 2_000_000,
            },
            SpanNode {
                path: "a/b".into(),
                name: "b".into(),
                depth: 1,
                count: 3,
                nanos: 1_000_000,
            },
        ];
        let text = render_span_tree(&nodes);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("  b "));
        assert!(lines[1].contains("3 x"));
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty: every quantile is 0.
        let empty = HistSnapshot::default();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(1.0), 0);
        assert_eq!(empty.max, 0);

        // Single bucket: every quantile collapses to its lower bound.
        let single = HistSnapshot {
            count: 4,
            sum: 20,
            min: 4,
            max: 7,
            buckets: vec![(4, 4)],
        };
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), 4, "q={q}");
        }

        // Saturating top bucket: u64::MAX lands in the 2^63 bucket.
        static SAT: Histogram = Histogram::new("test.lib.h.sat");
        let ((), report) = scoped(|| {
            SAT.observe(u64::MAX);
            SAT.observe(u64::MAX - 1);
            SAT.observe(1);
        });
        let h = report.histogram("test.lib.h.sat");
        assert_eq!(h.count, 3);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.min, 1);
        assert_eq!(h.quantile(1.0), 1u64 << 63);
        assert_eq!(h.quantile(0.1), 1);
        // The sum saturates rather than wrapping.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn next_seq_is_strictly_monotonic() {
        let a = next_seq();
        let b = next_seq();
        assert!(b > a);
        assert!(seq_ceiling() >= b);
    }
}
