//! Per-run manifests: one JSON object capturing everything needed to
//! reproduce and diff a bench run — binary name, config, scale/seed,
//! per-stage wall times, counter totals, and the emitted tables/figures.

use crate::json::Json;
use std::time::Instant;

/// How many trailing flight-recorder events a stamped manifest retains.
const MANIFEST_FLIGHT_TAIL: usize = 256;

/// Builder for a run manifest.
///
/// ```
/// let mut m = vp_trace::Manifest::new("fig8");
/// m.set("scale", 1u64.into());
/// m.table("fig8", &["config".into()], &[vec!["baseline".into()]]);
/// let line = m.render();
/// assert!(line.starts_with(r#"{"t":"manifest","schema":"vp-manifest/2","bin":"fig8""#));
/// ```
#[derive(Debug, Clone)]
pub struct Manifest {
    root: Json,
    tables: Vec<Json>,
    started: Instant,
}

impl Manifest {
    /// Starts a manifest for the binary `bin`; run duration is measured
    /// from this call.
    pub fn new(bin: &str) -> Manifest {
        let mut root = Json::obj();
        root.set("t", "manifest".into());
        root.set("schema", "vp-manifest/2".into());
        root.set("bin", bin.into());
        Manifest {
            root,
            tables: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Attaches an arbitrary top-level field.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Manifest {
        self.root.set(key, value);
        self
    }

    /// Attaches a named result table (headers plus stringified rows).
    pub fn table(&mut self, name: &str, headers: &[String], rows: &[Vec<String>]) -> &mut Manifest {
        let mut t = Json::obj();
        t.set("name", name.into());
        t.set(
            "headers",
            Json::Arr(headers.iter().map(|h| h.as_str().into()).collect()),
        );
        t.set(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|c| c.as_str().into()).collect()))
                    .collect(),
            ),
        );
        self.tables.push(t);
        self
    }

    /// Captures the current global counter totals, aggregated span wall
    /// times (flat and tree), the sequence ceiling, run duration, and a
    /// bounded flight-recorder tail into the manifest. When a live feed
    /// is attached (`VP_LIVE_FEED`) its path is stamped as `live_feed`;
    /// when the flight recorder is disabled (`VP_FLIGHT_EVENTS=0`) an
    /// all-zero `flight` object is stamped in place of the tail.
    pub fn stamp(&mut self) -> &mut Manifest {
        self.root.set(
            "duration_ms",
            Json::F64(self.started.elapsed().as_secs_f64() * 1e3),
        );
        self.root.set("seq", Json::U64(crate::seq_ceiling()));
        let mut spans = Json::obj();
        for (name, (count, nanos)) in crate::spans_snapshot() {
            let mut s = Json::obj();
            s.set("count", Json::U64(count));
            s.set("ms", Json::F64(nanos as f64 / 1e6));
            spans.set(&name, s);
        }
        self.root.set("spans", spans);
        let tree = crate::tree_snapshot();
        if !tree.is_empty() {
            let mut t = Json::obj();
            for node in &tree {
                let mut s = Json::obj();
                s.set("count", Json::U64(node.count));
                s.set("ms", Json::F64(node.nanos as f64 / 1e6));
                t.set(&node.path, s);
            }
            self.root.set("span_tree", t);
        }
        if crate::flight::is_disabled() {
            // Distinguish "recorder turned off" from "nothing happened":
            // stamp an explicit all-zero flight object instead of
            // omitting the field.
            let mut f = Json::obj();
            f.set("capacity", Json::U64(0));
            f.set("recorded", Json::U64(0));
            f.set("dropped", Json::U64(0));
            self.root.set("flight", f);
        }
        if let Some(path) = crate::feed::feed_target() {
            self.root
                .set("live_feed", path.display().to_string().into());
        }
        let flights = crate::flight::snapshot();
        if flights.recorded > 0 {
            let mut f = Json::obj();
            f.set("capacity", Json::U64(flights.capacity as u64));
            f.set("recorded", Json::U64(flights.recorded));
            f.set("dropped", Json::U64(flights.dropped));
            f.set(
                "tail",
                Json::Arr(
                    flights
                        .tail(MANIFEST_FLIGHT_TAIL)
                        .iter()
                        .map(crate::sink::flight_event_json)
                        .collect(),
                ),
            );
            self.root.set("flight", f);
        }
        let mut counters = Json::obj();
        for (name, value) in crate::counters_snapshot() {
            if value > 0 {
                counters.set(&name, Json::U64(value));
            }
        }
        self.root.set("counters", counters);
        let mut hists = Json::obj();
        for (name, h) in crate::histograms_snapshot() {
            if h.count > 0 {
                let mut o = Json::obj();
                for (k, v) in crate::sink::hist_json_fields(&h) {
                    o.set(k, v);
                }
                hists.set(&name, o);
            }
        }
        self.root.set("histograms", hists);
        self
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        let mut root = self.root.clone();
        if !self.tables.is_empty() {
            root.set("tables", Json::Arr(self.tables.clone()));
        }
        root.render()
    }

    /// Renders and sends the manifest to the installed sink; returns the
    /// serialized line either way.
    pub fn emit(&self) -> String {
        let line = self.render();
        crate::emit_manifest(&line);
        line
    }
}

/// Parses one JSONL line as a `vp-manifest/2` (or legacy `/1`) manifest
/// object.
///
/// This is the read side of [`Manifest::render`]: shard-merge tooling uses
/// it to join the per-shard manifests of a sharded sweep back into one
/// report, and `manifest-diff` uses it to load both sides of a
/// comparison. Manifests written before the `/2` bump (no `duration_ms`,
/// `seq`, `span_tree`, or `flight` fields) still parse — readers treat
/// those fields as optional. Non-manifest lines (other `t` values,
/// unknown schemas) and malformed JSON are rejected with a descriptive
/// message.
///
/// ```
/// let mut m = vp_trace::Manifest::new("sweep");
/// m.set("shard", "0/2".into());
/// let parsed = vp_trace::parse_manifest_line(&m.render()).unwrap();
/// assert_eq!(parsed.get("bin").and_then(vp_trace::Json::as_str), Some("sweep"));
/// ```
///
/// # Errors
///
/// Returns a message describing the first syntax or schema violation.
pub fn parse_manifest_line(line: &str) -> Result<Json, String> {
    let j = Json::parse(line.trim())?;
    match j.get("t").and_then(Json::as_str) {
        Some("manifest") => {}
        Some(other) => return Err(format!("not a manifest line (t={other:?})")),
        None => return Err("not a manifest line (missing \"t\")".to_string()),
    }
    match j.get("schema").and_then(Json::as_str) {
        Some("vp-manifest/1" | "vp-manifest/2") => Ok(j),
        Some(other) => Err(format!("unsupported manifest schema {other:?}")),
        None => Err("manifest line missing \"schema\"".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_shape() {
        let mut m = Manifest::new("table1");
        m.set("scale", Json::U64(2));
        m.table(
            "t",
            &["a".to_string(), "b".to_string()],
            &[vec!["1".to_string(), "2".to_string()]],
        );
        let line = m.render();
        assert!(line.contains(r#""bin":"table1""#));
        assert!(line.contains(r#""scale":2"#));
        assert!(line.contains(r#""tables":[{"name":"t","headers":["a","b"],"rows":[["1","2"]]}]"#));
    }

    #[test]
    fn parse_manifest_line_round_trips() {
        let mut m = Manifest::new("sweep");
        m.set("shard", "1/2".into());
        m.table(
            "cells",
            &["workload".to_string()],
            &[vec!["gzip".to_string()]],
        );
        let line = m.render();
        let j = parse_manifest_line(&line).unwrap();
        assert_eq!(j.get("bin").and_then(Json::as_str), Some("sweep"));
        assert_eq!(j.get("shard").and_then(Json::as_str), Some("1/2"));
        let tables = j.get("tables").and_then(Json::as_arr).unwrap();
        assert_eq!(tables[0].get("name").and_then(Json::as_str), Some("cells"));
    }

    #[test]
    fn parse_manifest_line_rejects_non_manifests() {
        assert!(parse_manifest_line("{}").is_err());
        assert!(parse_manifest_line(r#"{"t":"span"}"#).is_err());
        assert!(parse_manifest_line(r#"{"t":"manifest","schema":"vp-manifest/9"}"#).is_err());
        assert!(parse_manifest_line("not json").is_err());
    }

    #[test]
    fn parse_manifest_line_accepts_legacy_v1() {
        // A pre-bump manifest: no duration_ms/seq/span_tree/flight fields.
        let legacy = r#"{"t":"manifest","schema":"vp-manifest/1","bin":"sweep","shard":"0/2","tables":[{"name":"cells","headers":["workload"],"rows":[["gzip"]]}]}"#;
        let j = parse_manifest_line(legacy).unwrap();
        assert_eq!(j.get("bin").and_then(Json::as_str), Some("sweep"));
        assert!(j.get("duration_ms").is_none());
        assert!(j.get("flight").is_none());
        let tables = j.get("tables").and_then(Json::as_arr).unwrap();
        assert_eq!(tables[0].get("name").and_then(Json::as_str), Some("cells"));
    }

    #[test]
    fn stamp_attaches_v2_fields() {
        let ((), _report) = crate::scoped(|| {
            let _outer = crate::span("test.manifest.outer");
            let _inner = crate::span("test.manifest.inner");
        });
        let mut m = Manifest::new("x");
        m.stamp();
        let j = Json::parse(&m.render()).unwrap();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("vp-manifest/2")
        );
        assert!(j.get("duration_ms").is_some());
        assert!(j.get("seq").and_then(Json::as_u64).unwrap() > 0);
        let tree = j.get("span_tree").expect("span tree stamped");
        assert!(
            tree.get("test.manifest.outer/test.manifest.inner")
                .is_some(),
            "nested path present in span_tree: {}",
            m.render()
        );
    }

    #[test]
    fn stamped_manifest_round_trips_through_parse() {
        let mut m = Manifest::new("roundtrip");
        m.stamp();
        let j = parse_manifest_line(&m.render()).unwrap();
        assert_eq!(j.get("bin").and_then(Json::as_str), Some("roundtrip"));
        assert!(j.get("duration_ms").is_some());
    }

    #[test]
    fn stamp_attaches_counters_and_spans() {
        static C: crate::Counter = crate::Counter::new("test.manifest.c");
        let ((), _report) = crate::scoped(|| {
            let _s = crate::span("test.manifest.stage");
            C.add(2);
        });
        let mut m = Manifest::new("x");
        m.stamp();
        let line = m.render();
        assert!(line.contains(r#""test.manifest.c":"#));
        assert!(line.contains(r#""test.manifest.stage""#));
    }

    #[test]
    fn stamp_attaches_histograms() {
        static H: crate::Histogram = crate::Histogram::new("test.manifest.h");
        let ((), _report) = crate::scoped(|| {
            H.observe(3);
            H.observe(9);
        });
        let mut m = Manifest::new("x");
        m.stamp();
        let j = Json::parse(&m.render()).unwrap();
        let h = j.get("histograms").and_then(|h| h.get("test.manifest.h"));
        let h = h.expect("histogram stamped");
        assert!(h.get("count").and_then(Json::as_u64).unwrap() >= 2);
        assert!(h.get("buckets").and_then(Json::as_arr).is_some());
    }
}
