//! The flight recorder: a bounded in-memory ring of notable pipeline
//! moments.
//!
//! Counters answer *how often*; the flight recorder answers *in what
//! order*. Instrumentation sites push [`FlightEvent`]s — phase detections,
//! package installs, trace-store hits and evictions, replay divergences —
//! into a process-global ring buffer of `VP_FLIGHT_EVENTS` slots (default
//! 65536, `0` disables). Each event is stamped from the same monotonic
//! sequence domain as span ids ([`crate::next_seq`]), so a flight dump
//! interleaves exactly with the span tree: "the divergence happened after
//! phase 2 was detected, inside `metrics.evaluate.measure`".
//!
//! Recording is gated on [`crate::enabled`] like every other primitive —
//! one predicted branch when tracing is off — and the ring holds only the
//! most recent `capacity` events (older ones are counted as `dropped`),
//! so a week-long run costs the same memory as a unit test.
//!
//! `VP_FLIGHT_EVENTS=0` disables the recorder outright rather than
//! constructing a zero-capacity ring: the ring is never allocated,
//! [`dump_on_panic`] becomes a no-op, and the manifest stamps a
//! `flight` object with `recorded: 0` so a disabled recorder is
//! distinguishable from a run that recorded nothing.
//!
//! The ring is dumped three ways: [`snapshot`] on demand, a bounded tail
//! in every `vp-manifest/2` manifest ([`crate::Manifest::stamp`]), and —
//! after [`dump_on_panic`] installs the hook — the last events to stderr
//! when the process panics, which is how a crashed sweep cell explains
//! what it was doing.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Default ring capacity when `VP_FLIGHT_EVENTS` is unset.
pub const DEFAULT_FLIGHT_EVENTS: usize = 65536;

/// How many trailing events a panic dump prints.
const PANIC_TAIL: usize = 64;

/// One recorded moment: a kind tag plus two untyped payload words.
///
/// Payload meaning is per-kind (documented at the emitting site) — e.g.
/// `hsd.detect` carries `(branches_retired, candidate_branches)` and
/// `trace_store.hit` carries `(trace_bytes, trace_events)`. Keeping the
/// slots fixed-width keeps recording allocation-free on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic stamp shared with span ids ([`crate::next_seq`]).
    pub seq: u64,
    /// Event kind, e.g. `"hsd.detect"`.
    pub kind: String,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// The recorder's state at a point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Ring capacity (`VP_FLIGHT_EVENTS`).
    pub capacity: usize,
    /// Total events ever recorded (including dropped ones).
    pub recorded: u64,
    /// Events pushed out of the ring by newer ones.
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightSnapshot {
    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> &[FlightEvent] {
        &self.events[self.events.len().saturating_sub(n)..]
    }
}

struct Ring {
    buf: VecDeque<(u64, &'static str, u64, u64)>,
    recorded: u64,
    dropped: u64,
}

fn capacity_from_env() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("VP_FLIGHT_EVENTS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(DEFAULT_FLIGHT_EVENTS)
    })
}

/// Whether `VP_FLIGHT_EVENTS=0` turned the recorder off for this
/// process.
///
/// When disabled, recording, [`snapshot`], [`reset`], and
/// [`dump_on_panic`] all return without ever touching (or allocating)
/// the ring, and [`crate::Manifest::stamp`] emits a `flight` object
/// with `capacity`/`recorded`/`dropped` all zero.
pub fn is_disabled() -> bool {
    capacity_from_env() == 0
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: VecDeque::new(),
            recorded: 0,
            dropped: 0,
        })
    })
}

/// Records one flight event; a no-op single branch when tracing is
/// disabled.
#[inline]
pub fn flight(kind: &'static str, a: u64, b: u64) {
    if crate::enabled() {
        record(kind, a, b);
    }
}

#[cold]
fn record(kind: &'static str, a: u64, b: u64) {
    let cap = capacity_from_env();
    if cap == 0 {
        return;
    }
    let seq = crate::next_seq();
    {
        let mut r = ring().lock().expect("flight ring");
        if r.buf.len() >= cap {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back((seq, kind, a, b));
        r.recorded += 1;
    }
    crate::scope_flight(seq, kind, a, b);
}

/// The recorder's current contents, oldest event first.
pub fn snapshot() -> FlightSnapshot {
    if is_disabled() {
        return FlightSnapshot::default();
    }
    let r = ring().lock().expect("flight ring");
    FlightSnapshot {
        capacity: capacity_from_env(),
        recorded: r.recorded,
        dropped: r.dropped,
        events: r
            .buf
            .iter()
            .map(|&(seq, kind, a, b)| FlightEvent {
                seq,
                kind: kind.to_string(),
                a,
                b,
            })
            .collect(),
    }
}

/// Empties the ring and zeroes its totals (part of [`crate::reset`]).
pub fn reset() {
    if is_disabled() {
        return;
    }
    let mut r = ring().lock().expect("flight ring");
    r.buf.clear();
    r.recorded = 0;
    r.dropped = 0;
}

/// Installs a panic hook (once) that prints the flight recorder's last
/// events to stderr before the default handler runs, so a crashed run
/// leaves its black box behind. A no-op when `VP_FLIGHT_EVENTS=0`
/// disabled the recorder — the default panic handler is left alone.
pub fn dump_on_panic() {
    if is_disabled() {
        return;
    }
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let snap = snapshot();
            if !snap.events.is_empty() {
                eprintln!(
                    "== vp-trace flight recorder ({} recorded, {} dropped; last {}) ==",
                    snap.recorded,
                    snap.dropped,
                    snap.tail(PANIC_TAIL).len()
                );
                for e in snap.tail(PANIC_TAIL) {
                    eprintln!("  #{:<10} {:<24} a={} b={}", e.seq, e.kind, e.a, e.b);
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Assertions go through the thread-local scope report, not the
    // process-global ring — parallel tests share the ring and the
    // enabled() gate, so global counts are not deterministic here.

    #[test]
    fn flight_records_in_order_with_seq_stamps() {
        let ((), report) = crate::scoped(|| {
            flight("test.flight.a", 1, 10);
            flight("test.flight.b", 2, 20);
        });
        assert_eq!(report.flights.len(), 2);
        assert_eq!(report.flights[0].kind, "test.flight.a");
        assert_eq!(report.flights[1].kind, "test.flight.b");
        assert!(report.flights[0].seq < report.flights[1].seq);
        assert_eq!(report.flights[1].a, 2);
        assert_eq!(report.flights[1].b, 20);
        assert_eq!(report.flight_count("test.flight.a"), 1);
        assert_eq!(report.flight_count("test.flight.nope"), 0);
    }

    #[test]
    fn flight_events_reach_the_global_ring() {
        let ((), report) = crate::scoped(|| {
            flight("test.flight.ring", 7, 8);
        });
        let mine = report.flights.last().expect("recorded in scope");
        let snap = snapshot();
        let found = snap
            .events
            .iter()
            .find(|e| e.seq == mine.seq)
            .expect("event visible in the global ring");
        assert_eq!(found, mine);
        assert!(snap.recorded >= 1);
        assert!(snap.capacity > 0);
    }

    #[test]
    fn snapshot_tail_returns_newest_events() {
        let snap = FlightSnapshot {
            capacity: 4,
            recorded: 3,
            dropped: 0,
            events: vec![
                FlightEvent {
                    seq: 1,
                    kind: "a".into(),
                    a: 0,
                    b: 0,
                },
                FlightEvent {
                    seq: 2,
                    kind: "b".into(),
                    a: 0,
                    b: 0,
                },
                FlightEvent {
                    seq: 3,
                    kind: "c".into(),
                    a: 0,
                    b: 0,
                },
            ],
        };
        assert_eq!(snap.tail(2).len(), 2);
        assert_eq!(snap.tail(2)[0].kind, "b");
        assert_eq!(snap.tail(10).len(), 3);
        assert_eq!(snap.tail(0).len(), 0);
    }
}
