//! Live run feed: line-delimited telemetry appended to `VP_LIVE_FEED`.
//!
//! A long sweep is otherwise visible only through its stderr progress
//! lines; the feed turns the same moments into a machine-readable,
//! tail-able event stream that another process can *attach to while the
//! run is still going* — `sweep watch <feed>` renders it as a live
//! terminal view, and it is the in-process precursor of a fleet profile
//! service's SSE progress stream.
//!
//! Design constraints, in order:
//!
//! * **observability-only** — the feed never changes what a binary
//!   prints. Reports stay byte-identical with the feed on or off
//!   (pinned by `crates/bench/tests/live_feed.rs`);
//! * **no sockets, no deps** — the channel is a plain file. Every event
//!   is one JSON line written with a *single* `write` syscall on a
//!   descriptor opened with `O_APPEND`, so concurrent writers (sweep
//!   workers) never interleave bytes and `tail -f` always sees whole
//!   lines;
//! * **off by default** — when `VP_LIVE_FEED` is unset every emit site
//!   costs one cached-`OnceLock` load and a branch.
//!
//! Feed line schema (`vp-feed/1`):
//!
//! ```json
//! {"t":"feed","schema":"vp-feed/1","seq":17,"ms":123.456,"kind":"cell.done", ...}
//! ```
//!
//! `seq` is drawn from the same monotonic domain as span ids
//! ([`crate::next_seq`]), so feed events interleave with spans and
//! flight events into one total order; `ms` is milliseconds since the
//! process first emitted. Remaining fields are per-kind (documented at
//! the emitting site — see `bench`'s sweep feed events).

use crate::json::Json;
use crate::Value;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

struct Feed {
    path: PathBuf,
    file: Mutex<File>,
    t0: Instant,
}

fn feed_slot() -> &'static Option<Feed> {
    static FEED: OnceLock<Option<Feed>> = OnceLock::new();
    FEED.get_or_init(|| {
        let path = std::env::var("VP_LIVE_FEED").ok()?;
        let path = path.trim();
        if path.is_empty() {
            return None;
        }
        let path = PathBuf::from(path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(file) => Some(Feed {
                path,
                file: Mutex::new(file),
                t0: Instant::now(),
            }),
            Err(e) => {
                eprintln!("vp-trace: cannot open VP_LIVE_FEED {}: {e}", path.display());
                None
            }
        }
    })
}

/// The feed file path, when `VP_LIVE_FEED` selected one and it opened.
///
/// [`crate::Manifest::stamp`] records this in the manifest so a run's
/// feed can be found after the fact.
pub fn feed_target() -> Option<&'static Path> {
    feed_slot().as_ref().map(|f| f.path.as_path())
}

/// Whether a live feed is attached (cheap enough for per-cell sites).
#[inline]
pub fn feed_enabled() -> bool {
    feed_slot().is_some()
}

/// Appends one event to the live feed; a no-op when `VP_LIVE_FEED` is
/// unset.
///
/// Unlike spans/counters this is *not* gated on [`crate::enabled`]:
/// attaching a watcher must not require turning a trace sink on. The
/// whole line goes down in one `write`, so concurrently-emitting sweep
/// workers cannot interleave partial lines.
pub fn feed(kind: &str, fields: &[(&str, Value)]) {
    let Some(f) = feed_slot() else {
        return;
    };
    let mut j = Json::obj();
    j.set("t", "feed".into());
    j.set("schema", "vp-feed/1".into());
    j.set("seq", Json::U64(crate::next_seq()));
    j.set(
        "ms",
        Json::F64((f.t0.elapsed().as_secs_f64() * 1e6).round() / 1e3),
    );
    j.set("kind", kind.into());
    for (k, v) in fields {
        j.set(k, v.to_json());
    }
    let mut line = j.render();
    line.push('\n');
    if let Ok(mut file) = f.file.lock() {
        if let Err(e) = file.write_all(line.as_bytes()) {
            static WARNED: OnceLock<()> = OnceLock::new();
            WARNED.get_or_init(|| {
                eprintln!("vp-trace: live feed write failed: {e} (further errors suppressed)");
            });
        }
    }
}

/// Parses one line of a feed file as a `vp-feed/1` event.
///
/// The read side of [`feed`]: `sweep watch` folds a feed file through
/// this. Non-feed lines (other `t` values, unknown schemas, malformed
/// JSON) are rejected with a descriptive message so a watcher can count
/// and skip them.
///
/// ```
/// let j = vp_trace::parse_feed_line(
///     r#"{"t":"feed","schema":"vp-feed/1","seq":1,"ms":0.5,"kind":"sweep.start","total":8}"#,
/// ).unwrap();
/// assert_eq!(j.get("kind").and_then(vp_trace::Json::as_str), Some("sweep.start"));
/// ```
///
/// # Errors
///
/// Returns a message describing the first syntax or schema violation.
pub fn parse_feed_line(line: &str) -> Result<Json, String> {
    let j = Json::parse(line.trim())?;
    match j.get("t").and_then(Json::as_str) {
        Some("feed") => {}
        Some(other) => return Err(format!("not a feed line (t={other:?})")),
        None => return Err("not a feed line (missing \"t\")".to_string()),
    }
    match j.get("schema").and_then(Json::as_str) {
        Some("vp-feed/1") => Ok(j),
        Some(other) => Err(format!("unsupported feed schema {other:?}")),
        None => Err("feed line missing \"schema\"".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Emission against a real file is covered by the integration test
    // `tests/feed_env.rs` (the env knob is cached per process); unit
    // tests here cover the parse side, which is pure.

    #[test]
    fn parse_feed_line_accepts_only_feed_schema() {
        let ok = r#"{"t":"feed","schema":"vp-feed/1","seq":3,"ms":1.25,"kind":"cell.done","cell":"gzip"}"#;
        let j = parse_feed_line(ok).unwrap();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("cell.done"));
        assert_eq!(j.get("seq").and_then(Json::as_u64), Some(3));

        assert!(parse_feed_line("{}").is_err());
        assert!(parse_feed_line(r#"{"t":"manifest","schema":"vp-manifest/2"}"#).is_err());
        assert!(parse_feed_line(r#"{"t":"feed","schema":"vp-feed/9"}"#).is_err());
        assert!(parse_feed_line(r#"{"t":"feed"}"#).is_err());
        assert!(parse_feed_line("junk").is_err());
    }

    #[test]
    fn feed_is_inert_without_the_env_knob() {
        // This test binary never sets VP_LIVE_FEED, so the slot resolves
        // to None and emission must be a silent no-op.
        if std::env::var("VP_LIVE_FEED").is_err() {
            assert!(!feed_enabled());
            assert!(feed_target().is_none());
            feed("test.noop", &[("a", Value::U64(1))]);
        }
    }
}
