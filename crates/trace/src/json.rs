//! A minimal hand-rolled JSON tree, serializer, and parser.
//!
//! The trace layer must stay dependency-free, so this module provides the
//! small subset of JSON the sinks and manifests need: objects with ordered
//! keys, arrays, strings, bools, and numbers. Output is compact (single
//! line), suitable for JSONL streams; [`Json::parse`] reads those lines
//! back, which is how the shard-merge tooling joins per-shard run
//! manifests into one report.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, serialized with enough precision to round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key: value` into an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// Accepts everything [`Json::render`] emits (and standard JSON
    /// generally); numbers parse to `U64` when non-negative integral,
    /// `I64` when negative integral, `F64` otherwise.
    ///
    /// ```
    /// use vp_trace::Json;
    /// let j = Json::parse(r#"{"bin":"fig8","n":3,"xs":[1,-2,0.5,null,true]}"#).unwrap();
    /// assert_eq!(j.get("bin").and_then(Json::as_str), Some("fig8"));
    /// assert_eq!(j.get("n"), Some(&Json::U64(3)));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.pos != p.b.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes to a compact single-line string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation; bare integers are
                    // valid JSON numbers, so no decimal point is forced.
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no NaN/Inf; encode as null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Containers may nest this deep before the parser refuses the input.
/// The parser recurses per nesting level, so an input-proportional limit
/// would let a line of `[[[[…` overflow the stack; 128 is far beyond any
/// manifest while keeping worst-case stack use small and fixed.
const MAX_DEPTH: usize = 128;

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{} at byte {}", what, self.pos)
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err("nesting too deep"))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        let r = self.array_body();
        self.depth -= 1;
        r
    }

    fn array_body(&mut self) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                    self.ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        let r = self.object_body();
        self.depth -= 1;
        r
    }

    fn object_body(&mut self) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            if self.b.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.ws();
            if self.b.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.ws();
            pairs.push((key, self.value()?));
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                    self.ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.b[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let v = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(v)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full (possibly multi-byte) UTF-8 scalar; the
                    // input is a &str, so byte boundaries are valid.
                    let rest = &self.b[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .b
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.b.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.b.get(self.pos) == Some(&b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.b.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.b.get(self.pos), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.b.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.b.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_objects() {
        let mut j = Json::obj();
        j.set("name", "fig8".into());
        j.set("n", Json::U64(3));
        j.set("ok", Json::Bool(true));
        j.set("items", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(
            j.render(),
            r#"{"name":"fig8","n":3,"ok":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_non_finite_is_null() {
        assert_eq!(Json::F64(0.5).render(), "0.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn get_finds_keys() {
        let mut j = Json::obj();
        j.set("a", Json::U64(1));
        assert_eq!(j.get("a"), Some(&Json::U64(1)));
        assert_eq!(j.get("b"), None);
    }

    #[test]
    fn parse_round_trips_render_output() {
        let mut j = Json::obj();
        j.set("name", "fig8".into());
        j.set("n", Json::U64(3));
        j.set("neg", Json::I64(-7));
        j.set("half", Json::F64(0.5));
        j.set("ok", Json::Bool(true));
        j.set("none", Json::Null);
        j.set("esc", Json::Str("a\"b\\c\nd\u{1}µ".to_string()));
        j.set(
            "items",
            Json::Arr(vec![Json::U64(1), Json::Null, Json::Str(String::new())]),
        );
        let text = j.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("0"), Ok(Json::U64(0)));
        assert_eq!(Json::parse("18446744073709551615"), Ok(Json::U64(u64::MAX)));
        assert_eq!(Json::parse("-3"), Ok(Json::I64(-3)));
        assert_eq!(Json::parse("2.5e1"), Ok(Json::F64(25.0)));
        assert_eq!(Json::parse("-0.25"), Ok(Json::F64(-0.25)));
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , \"\\u00b5\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(
            j.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("µ😀")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "nul",
            "[1 2]",
            "--1",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    /// What a table-driven parse case expects.
    enum Expect {
        Ok(Json),
        /// Parse must fail and the message must contain this fragment.
        Err(&'static str),
    }

    #[test]
    fn parse_edge_case_table() {
        let deep_ok = "[".repeat(128) + &"]".repeat(128);
        let deep_bad = "[".repeat(129) + &"]".repeat(129);
        let deep_obj_bad = r#"{"a":"#.repeat(200) + "1" + &"}".repeat(200);
        let cases: Vec<(&str, String, Expect)> = vec![
            // Escape sequences.
            (
                "all simple escapes",
                r#""\" \\ \/ \b \f \n \r \t""#.into(),
                Expect::Ok(Json::Str("\" \\ / \u{8} \u{c} \n \r \t".into())),
            ),
            (
                "unicode escape",
                r#""é""#.into(),
                Expect::Ok(Json::Str("é".into())),
            ),
            (
                "surrogate pair",
                r#""😀""#.into(),
                Expect::Ok(Json::Str("😀".into())),
            ),
            (
                "lone high surrogate",
                r#""\ud800""#.into(),
                Expect::Err("invalid \\u escape"),
            ),
            (
                "low surrogate out of range",
                r#""\ud800\u0041""#.into(),
                Expect::Err("invalid low surrogate"),
            ),
            (
                "unknown escape",
                r#""\q""#.into(),
                Expect::Err("invalid escape"),
            ),
            (
                "truncated unicode escape",
                r#""\u00"#.into(),
                Expect::Err("truncated \\u escape"),
            ),
            // Deep nesting: within the limit parses, beyond it errors
            // instead of overflowing the stack.
            ("nesting at limit", deep_ok, Expect::Ok(deep_nested(128))),
            (
                "nesting beyond limit",
                deep_bad,
                Expect::Err("nesting too deep"),
            ),
            (
                "deep objects refused",
                deep_obj_bad,
                Expect::Err("nesting too deep"),
            ),
            // Truncated input.
            (
                "empty",
                String::new(),
                Expect::Err("unexpected end of input"),
            ),
            (
                "open array",
                "[1,".into(),
                Expect::Err("unexpected end of input"),
            ),
            (
                "open object",
                r#"{"a":1"#.into(),
                Expect::Err("expected ',' or '}'"),
            ),
            (
                "open string",
                r#""abc"#.into(),
                Expect::Err("unterminated string"),
            ),
            ("bare minus", "-".into(), Expect::Err("invalid number")),
            (
                "object missing value",
                r#"{"a":"#.into(),
                Expect::Err("unexpected end of input"),
            ),
            // Duplicate keys are preserved in order; `get` sees the first.
            (
                "duplicate keys",
                r#"{"a":1,"a":2}"#.into(),
                Expect::Ok(Json::Obj(vec![
                    ("a".into(), Json::U64(1)),
                    ("a".into(), Json::U64(2)),
                ])),
            ),
        ];
        for (name, input, expect) in cases {
            let got = Json::parse(&input);
            match expect {
                Expect::Ok(want) => assert_eq!(got.as_ref(), Ok(&want), "case {name:?}"),
                Expect::Err(frag) => {
                    let err = got.expect_err(&format!("case {name:?} should fail"));
                    assert!(err.contains(frag), "case {name:?}: {err:?} lacks {frag:?}");
                }
            }
        }
    }

    fn deep_nested(depth: usize) -> Json {
        let mut j = Json::Arr(vec![]);
        for _ in 1..depth {
            j = Json::Arr(vec![j]);
        }
        j
    }

    #[test]
    fn duplicate_keys_get_returns_first() {
        let j = Json::parse(r#"{"k":"first","k":"second"}"#).unwrap();
        assert_eq!(j.get("k").and_then(Json::as_str), Some("first"));
    }

    #[test]
    fn as_accessors() {
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Json::U64(4).as_u64(), Some(4));
        assert_eq!(Json::I64(4).as_u64(), Some(4));
        assert_eq!(Json::I64(-4).as_u64(), None);
        assert_eq!(Json::Null.as_str(), None);
        assert_eq!(Json::U64(4).as_f64(), Some(4.0));
        assert_eq!(Json::I64(-4).as_f64(), Some(-4.0));
        assert_eq!(Json::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Json::Str("x".into()).as_f64(), None);
    }
}
