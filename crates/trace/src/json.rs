//! A minimal hand-rolled JSON tree and serializer.
//!
//! The trace layer must stay dependency-free, so this module provides the
//! small subset of JSON the sinks and manifests need: objects with ordered
//! keys, arrays, strings, bools, and numbers. Output is compact (single
//! line), suitable for JSONL streams.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, serialized with enough precision to round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key: value` into an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation; bare integers are
                    // valid JSON numbers, so no decimal point is forced.
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no NaN/Inf; encode as null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_objects() {
        let mut j = Json::obj();
        j.set("name", "fig8".into());
        j.set("n", Json::U64(3));
        j.set("ok", Json::Bool(true));
        j.set("items", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(
            j.render(),
            r#"{"name":"fig8","n":3,"ok":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_non_finite_is_null() {
        assert_eq!(Json::F64(0.5).render(), "0.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn get_finds_keys() {
        let mut j = Json::obj();
        j.set("a", Json::U64(1));
        assert_eq!(j.get("a"), Some(&Json::U64(1)));
        assert_eq!(j.get("b"), None);
    }
}
