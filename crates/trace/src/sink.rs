//! Pluggable trace sinks: where span, counter, and event records go.
//!
//! Three sinks ship with the crate:
//!
//! * [`MemorySink`] — collects records in memory for programmatic
//!   assertions (tests use the thread-local scope instead when possible);
//! * [`SummarySink`] — aggregates and prints a human-readable table on
//!   [`TraceSink::flush`];
//! * [`JsonlSink`] — streams one JSON object per record (and per
//!   manifest) to a file or to stderr.

use crate::json::Json;
use crate::{HistSnapshot, Record, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

/// Destination for trace records.
pub trait TraceSink: Send + Sync {
    /// Consumes one record.
    fn record(&self, r: &Record);

    /// Consumes a complete run manifest (already serialized).
    fn manifest(&self, json: &str) {
        let _ = json;
    }

    /// Final flush: called by [`crate::finish`] after counters are drained.
    fn flush(&self) {}
}

/// Collects every record in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
    manifests: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Creates an empty collector.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of the records seen so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("memory sink").clone()
    }

    /// Manifests received so far (serialized JSON lines).
    pub fn manifests(&self) -> Vec<String> {
        self.manifests.lock().expect("memory sink").clone()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, r: &Record) {
        self.records.lock().expect("memory sink").push(r.clone());
    }

    fn manifest(&self, json: &str) {
        self.manifests
            .lock()
            .expect("memory sink")
            .push(json.to_string());
    }
}

#[derive(Debug, Default)]
struct SummaryState {
    spans: BTreeMap<String, (u64, u64)>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistSnapshot>,
    events: BTreeMap<String, u64>,
}

/// Aggregates spans/counters/events and prints a table to stderr on flush.
#[derive(Debug, Default)]
pub struct SummarySink {
    state: Mutex<SummaryState>,
}

impl SummarySink {
    /// Creates an empty summary.
    pub fn new() -> SummarySink {
        SummarySink::default()
    }
}

impl TraceSink for SummarySink {
    fn record(&self, r: &Record) {
        let mut s = self.state.lock().expect("summary sink");
        match r {
            Record::Span { name, nanos, .. } => {
                let e = s.spans.entry(name.clone()).or_insert((0, 0));
                e.0 += 1;
                e.1 += nanos;
            }
            Record::Count { name, value } => {
                *s.counters.entry(name.clone()).or_insert(0) += value;
            }
            Record::Event { name, .. } => {
                *s.events.entry(name.clone()).or_insert(0) += 1;
            }
            Record::Hist { name, hist } => {
                s.hists.entry(name.clone()).or_default().merge(hist);
            }
            Record::Flight { events } => {
                for e in events {
                    *s.events.entry(format!("flight:{}", e.kind)).or_insert(0) += 1;
                }
            }
        }
    }

    fn flush(&self) {
        let s = self.state.lock().expect("summary sink");
        let mut out = String::from("== vp-trace summary ==\n");
        if !s.spans.is_empty() {
            out.push_str("-- stage wall times --\n");
            for (name, (count, nanos)) in &s.spans {
                out.push_str(&format!(
                    "{name:<40} {count:>8} x  {:>12.3} ms total\n",
                    *nanos as f64 / 1e6
                ));
            }
        }
        if !s.counters.is_empty() {
            out.push_str("-- counters --\n");
            for (name, value) in &s.counters {
                out.push_str(&format!("{name:<40} {value:>12}\n"));
            }
        }
        if !s.hists.is_empty() {
            out.push_str("-- histograms --\n");
            for (name, h) in &s.hists {
                out.push_str(&format!(
                    "{name:<40} {:>10} x  mean {:>10.1}  p50 {:>8}  max {:>10}\n",
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.max
                ));
            }
        }
        if !s.events.is_empty() {
            out.push_str("-- events --\n");
            for (name, count) in &s.events {
                out.push_str(&format!("{name:<40} {count:>12}\n"));
            }
        }
        eprint!("{out}");
    }
}

enum JsonlTarget {
    Stderr,
    File(std::fs::File),
}

/// Streams records as JSON lines to stderr or an append-mode file.
pub struct JsonlSink {
    target: Mutex<JsonlTarget>,
}

impl JsonlSink {
    /// Creates a sink writing to stderr.
    pub fn stderr() -> JsonlSink {
        JsonlSink {
            target: Mutex::new(JsonlTarget::Stderr),
        }
    }

    /// Creates a sink appending to `path`, creating any missing parent
    /// directories first (so `VP_TRACE=json:out/run/trace.jsonl` works on a
    /// fresh checkout).
    ///
    /// # Errors
    ///
    /// Returns the I/O error, with the offending path named in the message,
    /// if a parent directory cannot be created or the file cannot be opened.
    pub fn file(path: &str) -> std::io::Result<JsonlSink> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!("creating parent directory {}: {e}", parent.display()),
                    )
                })?;
            }
        }
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("opening {path}: {e}")))?;
        Ok(JsonlSink {
            target: Mutex::new(JsonlTarget::File(f)),
        })
    }

    fn write_line(&self, line: &str) {
        let mut t = self.target.lock().expect("jsonl sink");
        match &mut *t {
            JsonlTarget::Stderr => {
                let _ = writeln!(std::io::stderr(), "{line}");
            }
            JsonlTarget::File(f) => {
                let _ = writeln!(f, "{line}");
            }
        }
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, r: &Record) {
        self.write_line(&record_json(r).render());
    }

    fn manifest(&self, json: &str) {
        self.write_line(json);
    }

    fn flush(&self) {
        if let JsonlTarget::File(f) = &mut *self.target.lock().expect("jsonl sink") {
            let _ = f.flush();
        }
    }
}

/// The JSONL encoding of one record.
pub fn record_json(r: &Record) -> Json {
    let mut j = Json::obj();
    match r {
        Record::Span {
            name,
            nanos,
            id,
            parent,
        } => {
            j.set("t", "span".into());
            j.set("name", name.as_str().into());
            j.set("ns", Json::U64(*nanos));
            j.set("id", Json::U64(*id));
            j.set("parent", Json::U64(*parent));
        }
        Record::Count { name, value } => {
            j.set("t", "count".into());
            j.set("name", name.as_str().into());
            j.set("value", Json::U64(*value));
        }
        Record::Event { name, fields } => {
            j.set("t", "event".into());
            j.set("name", name.as_str().into());
            let mut obj = Json::obj();
            for (k, v) in fields {
                obj.set(k, v.to_json());
            }
            j.set("fields", obj);
        }
        Record::Hist { name, hist } => {
            j.set("t", "hist".into());
            j.set("name", name.as_str().into());
            for (k, v) in hist_json_fields(hist) {
                j.set(k, v);
            }
        }
        Record::Flight { events } => {
            j.set("t", "flight".into());
            j.set(
                "events",
                Json::Arr(events.iter().map(flight_event_json).collect()),
            );
        }
    }
    j
}

/// The shared JSON encoding of one flight-recorder event, used by both
/// the JSONL record stream and [`crate::Manifest::stamp`].
pub fn flight_event_json(e: &crate::FlightEvent) -> Json {
    let mut o = Json::obj();
    o.set("seq", Json::U64(e.seq));
    o.set("kind", e.kind.as_str().into());
    o.set("a", Json::U64(e.a));
    o.set("b", Json::U64(e.b));
    o
}

/// The shared JSON encoding of a histogram snapshot, used by both the
/// JSONL record stream and [`crate::Manifest::stamp`].
pub fn hist_json_fields(h: &HistSnapshot) -> Vec<(&'static str, Json)> {
    vec![
        ("count", Json::U64(h.count)),
        ("sum", Json::U64(h.sum)),
        ("min", Json::U64(h.min)),
        ("max", Json::U64(h.max)),
        ("p50", Json::U64(h.quantile(0.5))),
        ("p99", Json::U64(h.quantile(0.99))),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(lo, n)| Json::Arr(vec![Json::U64(lo), Json::U64(n)]))
                    .collect(),
            ),
        ),
    ]
}

impl Value {
    /// The JSON encoding of this field value.
    pub fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::U64(*v),
            Value::I64(v) => Json::I64(*v),
            Value::F64(v) => Json::F64(*v),
            Value::Bool(v) => Json::Bool(*v),
            Value::Str(v) => Json::Str(v.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_json_shapes() {
        let r = Record::Span {
            name: "pack".into(),
            nanos: 1500,
            id: 42,
            parent: 7,
        };
        assert_eq!(
            record_json(&r).render(),
            r#"{"t":"span","name":"pack","ns":1500,"id":42,"parent":7}"#
        );
        let r = Record::Count {
            name: "hsd.detections".into(),
            value: 7,
        };
        assert_eq!(
            record_json(&r).render(),
            r#"{"t":"count","name":"hsd.detections","value":7}"#
        );
        let r = Record::Event {
            name: "inline".into(),
            fields: vec![("depth".into(), Value::U64(2))],
        };
        assert_eq!(
            record_json(&r).render(),
            r#"{"t":"event","name":"inline","fields":{"depth":2}}"#
        );
    }

    #[test]
    fn hist_record_json_shape() {
        let r = Record::Hist {
            name: "diff.residency".into(),
            hist: HistSnapshot {
                count: 3,
                sum: 7,
                min: 1,
                max: 4,
                buckets: vec![(1, 2), (4, 1)],
            },
        };
        assert_eq!(
            record_json(&r).render(),
            r#"{"t":"hist","name":"diff.residency","count":3,"sum":7,"min":1,"max":4,"p50":1,"p99":4,"buckets":[[1,2],[4,1]]}"#
        );
    }

    #[test]
    fn flight_record_json_shape() {
        let r = Record::Flight {
            events: vec![crate::FlightEvent {
                seq: 9,
                kind: "hsd.detect".into(),
                a: 1000,
                b: 3,
            }],
        };
        assert_eq!(
            record_json(&r).render(),
            r#"{"t":"flight","events":[{"seq":9,"kind":"hsd.detect","a":1000,"b":3}]}"#
        );
    }

    #[test]
    fn span_record_json_round_trips() {
        let r = Record::Span {
            name: "metrics.profile.run".into(),
            nanos: 123_456,
            id: 11,
            parent: 3,
        };
        let j = Json::parse(&record_json(&r).render()).unwrap();
        assert_eq!(j.get("t").and_then(Json::as_str), Some("span"));
        assert_eq!(
            j.get("name").and_then(Json::as_str),
            Some("metrics.profile.run")
        );
        assert_eq!(j.get("ns").and_then(Json::as_u64), Some(123_456));
        assert_eq!(j.get("id").and_then(Json::as_u64), Some(11));
        assert_eq!(j.get("parent").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn flight_record_json_round_trips() {
        let r = Record::Flight {
            events: vec![
                crate::FlightEvent {
                    seq: 1,
                    kind: "trace_store.hit".into(),
                    a: 4096,
                    b: 17,
                },
                crate::FlightEvent {
                    seq: 5,
                    kind: "diff.divergence".into(),
                    a: 0,
                    b: 2,
                },
            ],
        };
        let j = Json::parse(&record_json(&r).render()).unwrap();
        let events = j.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("seq").and_then(Json::as_u64), Some(1));
        assert_eq!(
            events[1].get("kind").and_then(Json::as_str),
            Some("diff.divergence")
        );
        assert_eq!(events[1].get("b").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn summary_sink_counts_flight_events() {
        let s = SummarySink::new();
        s.record(&Record::Flight {
            events: vec![
                crate::FlightEvent {
                    seq: 1,
                    kind: "hsd.detect".into(),
                    a: 0,
                    b: 0,
                },
                crate::FlightEvent {
                    seq: 2,
                    kind: "hsd.detect".into(),
                    a: 0,
                    b: 0,
                },
            ],
        });
        let state = s.state.lock().unwrap();
        assert_eq!(state.events.get("flight:hsd.detect"), Some(&2));
    }

    #[test]
    fn jsonl_file_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("vp-trace-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/trace.jsonl");
        let sink = JsonlSink::file(path.to_str().unwrap()).expect("parent dirs created");
        sink.manifest("{}");
        sink.flush();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_file_error_names_the_path() {
        // A path whose parent is a *file* cannot be created.
        let dir = std::env::temp_dir().join(format!("vp-trace-sink-err-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"x").unwrap();
        let path = blocker.join("trace.jsonl");
        let err = match JsonlSink::file(path.to_str().unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("opening under a file should fail"),
        };
        assert!(
            err.to_string().contains("blocker"),
            "error should name the path: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_sink_collects() {
        let s = MemorySink::new();
        s.record(&Record::Count {
            name: "a".into(),
            value: 1,
        });
        s.manifest("{}");
        assert_eq!(s.records().len(), 1);
        assert_eq!(s.manifests(), vec!["{}".to_string()]);
    }
}
