//! # vp-exec
//!
//! Architectural (functional) execution of `vp-program` programs.
//!
//! The executor interprets a laid-out program and produces the *retired
//! instruction stream* that the rest of the system consumes: the Hot Spot
//! Detector (`vp-hsd`) watches retiring branches exactly as the paper's
//! hardware does, the timing model (`vp-sim`) replays the stream through a
//! pipeline model, and the coverage metrics count how many retired
//! instructions came from extracted packages.
//!
//! Execution is layout-aware: a `Goto` encoded as a fall-through retires no
//! instruction, and an inverted branch reports the *encoded* taken direction
//! to the fetch/predictor machinery while preserving the *architectural*
//! direction for profile semantics.
//!
//! ```
//! use vp_program::{ProgramBuilder, Layout};
//! use vp_exec::{Executor, RunConfig, NullSink};
//! use vp_isa::Reg;
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", |f| {
//!     f.li(Reg::int(8), 41);
//!     f.addi(Reg::int(8), Reg::int(8), 1);
//!     f.halt();
//! });
//! let p = pb.build();
//! let layout = Layout::natural(&p);
//! let mut exec = Executor::new(&p, &layout);
//! let stats = exec.run(&mut NullSink, &RunConfig::default())?;
//! assert_eq!(exec.reg(Reg::int(8)), 42);
//! assert_eq!(stats.retired, 3); // li, add, halt
//! # Ok::<(), vp_exec::ExecError>(())
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod exec;
pub mod memory;

pub use event::{Ctrl, InstCounts, NullSink, Retired, Sink};
pub use exec::{ExecError, Executor, RunConfig, RunStats, StopReason};
pub use memory::Memory;
