//! # vp-exec
//!
//! Architectural (functional) execution of `vp-program` programs.
//!
//! The executor interprets a laid-out program and produces the *retired
//! instruction stream* that the rest of the system consumes: the Hot Spot
//! Detector (`vp-hsd`) watches retiring branches exactly as the paper's
//! hardware does, the timing model (`vp-sim`) replays the stream through a
//! pipeline model, and the coverage metrics count how many retired
//! instructions came from extracted packages.
//!
//! Execution is layout-aware: a `Goto` encoded as a fall-through retires no
//! instruction, and an inverted branch reports the *encoded* taken direction
//! to the fetch/predictor machinery while preserving the *architectural*
//! direction for profile semantics.
//!
//! ```
//! use vp_program::{ProgramBuilder, Layout};
//! use vp_exec::{Executor, RunConfig, NullSink};
//! use vp_isa::Reg;
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", |f| {
//!     f.li(Reg::int(8), 41);
//!     f.addi(Reg::int(8), Reg::int(8), 1);
//!     f.halt();
//! });
//! let p = pb.build();
//! let layout = Layout::natural(&p);
//! let mut exec = Executor::new(&p, &layout);
//! let stats = exec.run(&mut NullSink, &RunConfig::default())?;
//! assert_eq!(exec.reg(Reg::int(8)), 42);
//! assert_eq!(stats.retired, 3); // li, add, halt
//! # Ok::<(), vp_exec::ExecError>(())
//! ```
//!
//! ## Capture and replay
//!
//! Interpreting a workload is the most expensive step of the experiment
//! pipeline, and every consumer — the Hot Spot Detector, branch-count
//! oracles, the timing model — wants the *same* retired stream. The
//! [`trace_store`] module decouples collection from consumption:
//!
//! 1. **Capture** once: [`CapturedTrace::capture`] (or `capture_with`, which
//!    also feeds live sinks during the recording run) executes the program
//!    and records the stream into a compact delta-coded encoding, typically
//!    one to two bytes per retired instruction.
//! 2. **Replay** many times: [`CapturedTrace::replay`] reconstructs every
//!    [`Retired`] event bit-for-bit and pushes it through any [`Sink`] — no
//!    register file, no memory image, no interpretation.
//! 3. **Cache** across consumers: [`TraceStore`] memoizes captures by
//!    [`TraceKey`] `(workload, program/layout fingerprint, RunConfig)`
//!    under a byte budget (`VP_TRACE_CACHE_MB`, default 512) with LRU
//!    eviction, so sweeps that revisit a workload replay instead of
//!    re-executing — and degrade gracefully to re-execution when the
//!    budget is exceeded. Concurrent requests for the same key are
//!    single-flighted: one thread interprets, the rest replay.
//! 4. **Persist** across processes: with `VP_TRACE_DIR` set, captures are
//!    serialized to disk ([`DiskTier`], versioned header + CRC, budget
//!    `VP_TRACE_DISK_MB` with mtime-LRU eviction), so a warmed cache
//!    survives restarts and is shared by sharded sweep processes.
//!
//! ```
//! use vp_program::{ProgramBuilder, Layout};
//! use vp_exec::{CapturedTrace, InstCounts, RunConfig};
//! use vp_isa::Reg;
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", |f| {
//!     let i = Reg::int(8);
//!     f.li(i, 0);
//!     f.for_range(i, 0, 10, |f| f.nop());
//!     f.halt();
//! });
//! let p = pb.build();
//! let layout = Layout::natural(&p);
//!
//! let trace = CapturedTrace::capture(&p, &layout, &RunConfig::default())?;
//! let mut counts = InstCounts::new();
//! let stats = trace.replay(&mut counts); // no Executor involved
//! assert_eq!(counts.total, stats.retired);
//! # Ok::<(), vp_exec::ExecError>(())
//! ```
//!
//! ## Differential replay
//!
//! Packed binaries are captured under a [`TraceKey::packed`] key (the
//! original key plus the package-set fingerprint), and the [`diff`] module
//! structurally aligns a packed capture against the original one: packed
//! locations are folded back to original block identities through an
//! [`IdentityMap`], rewriter-introduced events (exit blocks, launch stubs,
//! migration glue) are dropped as expected divergences, and everything
//! else must align visit-for-visit or the run is flagged with
//! first-divergence forensics. See [`diff_traces`] and the `VP_DIFF` knob
//! ([`DiffMode::from_env`]).

#![warn(missing_docs)]

pub mod diff;
pub mod event;
pub mod exec;
pub mod fx;
pub mod memory;
pub mod trace_store;

pub use diff::{
    diff_traces, BlockIdentity, DiffMode, DiffOptions, DiffReport, DiffVerdict, Divergence,
    IdentityMap, Visit,
};
pub use event::{col, ColEvent, ColumnBatch, Ctrl, InstCounts, NullSink, Retired, Sink};
pub use exec::{ExecError, Executor, RunConfig, RunStats, StopReason};
pub use fx::{FxHashMap, FxHasher};
pub use memory::Memory;
pub use trace_store::{
    crc32, CapturedTrace, DiskTier, StoreSnapshot, TraceKey, TraceRecorder, TraceStore,
    DEFAULT_CACHE_MB, DEFAULT_DISK_MB, DEFAULT_REPLAY_BATCH, DEFAULT_REPLAY_BATCH_COLS,
    FORMAT_VERSION as TRACE_FORMAT_VERSION,
};
