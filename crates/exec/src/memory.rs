//! Sparse 64-bit word-addressed data memory.

use std::collections::HashMap;
use vp_program::DataSegment;

const PAGE_WORDS: usize = 8192; // 64 KiB pages
const PAGE_BYTES: u64 = (PAGE_WORDS * 8) as u64;

/// Sparse simulated memory. Addresses are byte addresses; all accesses are
/// 8-byte words and are rounded down to word alignment. Unwritten memory
/// reads as zero.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Creates a memory initialized from data segments.
    pub fn from_segments(segments: &[DataSegment]) -> Memory {
        let mut m = Memory::new();
        for seg in segments {
            for (i, &w) in seg.words.iter().enumerate() {
                m.write(seg.base + 8 * i as u64, w);
            }
        }
        m
    }

    /// Reads the word containing byte address `addr`.
    pub fn read(&self, addr: u64) -> u64 {
        let page = addr / PAGE_BYTES;
        let idx = (addr % PAGE_BYTES) as usize / 8;
        self.pages.get(&page).map_or(0, |p| p[idx])
    }

    /// Writes the word containing byte address `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        let page = addr / PAGE_BYTES;
        let idx = (addr % PAGE_BYTES) as usize / 8;
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[idx] = value;
    }

    /// Number of resident pages (for tests and footprint reporting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = Memory::new();
        m.write(0x1000, 42);
        assert_eq!(m.read(0x1000), 42);
        // Same word regardless of low bits.
        assert_eq!(m.read(0x1007), 42);
        assert_eq!(m.read(0x1008), 0);
    }

    #[test]
    fn pages_allocated_lazily() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write(PAGE_BYTES, 2);
        m.write(PAGE_BYTES + 8, 3);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn from_segments_initializes_words() {
        let segs = vec![DataSegment {
            base: 0x2000,
            words: vec![10, 20, 30],
        }];
        let m = Memory::from_segments(&segs);
        assert_eq!(m.read(0x2000), 10);
        assert_eq!(m.read(0x2010), 30);
    }
}
