//! The architectural interpreter.

use crate::event::{Ctrl, Retired, Sink};
use crate::memory::Memory;
use vp_isa::reg::NUM_REGS;
use vp_isa::{AluOp, CodeRef, FaluOp, FuClass, Inst, Reg, Src, INST_BYTES};
use vp_program::builder::STACK_BASE;
use vp_program::{Layout, Program, TermEncoding, Terminator};
use vp_trace::Counter;

/// Instructions retired across all runs.
static RETIRED: Counter = Counter::new("exec.retired");
/// Conditional branches retired across all runs.
static COND_BRANCHES: Counter = Counter::new("exec.cond_branches");
/// Instructions retired inside package functions (package residency).
static IN_PACKAGE: Counter = Counter::new("exec.in_package");

/// Execution limits.
///
/// Part of the [`crate::TraceKey`] cache identity: two runs of the same
/// program under different limits produce different retired streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunConfig {
    /// Maximum retired instructions before the run stops.
    pub max_insts: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            max_insts: 500_000_000,
            max_depth: 100_000,
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed a `Halt`.
    Halted,
    /// The instruction limit was reached.
    InstLimit,
}

/// Summary of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Total retired instructions.
    pub retired: u64,
    /// Retired conditional branches.
    pub cond_branches: u64,
    /// Retired instructions from package functions.
    pub in_package: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A `Ret` executed with an empty call stack.
    ReturnWithoutCall(CodeRef),
    /// The call depth limit was exceeded.
    CallDepthExceeded(CodeRef),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ReturnWithoutCall(b) => write!(f, "return with empty call stack at {b}"),
            ExecError::CallDepthExceeded(b) => write!(f, "call depth exceeded at {b}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Interprets a laid-out program, feeding every retired instruction to a
/// [`Sink`].
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    layout: &'p Layout,
    regs: [u64; NUM_REGS],
    mem: Memory,
    stack: Vec<CodeRef>,
    in_package: Vec<bool>,
}

impl<'p> Executor<'p> {
    /// Creates an executor with memory initialized from the program's data
    /// segments and `sp` pointing at the stack base.
    pub fn new(program: &'p Program, layout: &'p Layout) -> Executor<'p> {
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::SP.index()] = STACK_BASE;
        Executor {
            program,
            layout,
            regs,
            mem: Memory::from_segments(&program.data),
            stack: Vec::new(),
            in_package: program.funcs.iter().map(|f| f.is_package()).collect(),
        }
    }

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Current value of a register reinterpreted as `f64`.
    pub fn reg_f64(&self, r: Reg) -> f64 {
        f64::from_bits(self.reg(r))
    }

    /// The simulated data memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    fn read_src(&self, s: Src) -> u64 {
        match s {
            Src::Reg(r) => self.reg(r),
            Src::Imm(v) => v as u64,
        }
    }

    fn write(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Runs from the program entry until halt or a limit.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on a return with an empty call stack or on
    /// call-depth overflow.
    pub fn run(&mut self, sink: &mut impl Sink, cfg: &RunConfig) -> Result<RunStats, ExecError> {
        let entry = self.program.func(self.program.entry).entry;
        self.run_from(
            CodeRef {
                func: self.program.entry,
                block: entry,
            },
            sink,
            cfg,
        )
    }

    /// Runs from an arbitrary code location until halt or a limit.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on a return with an empty call stack or on
    /// call-depth overflow.
    pub fn run_from(
        &mut self,
        start: CodeRef,
        sink: &mut impl Sink,
        cfg: &RunConfig,
    ) -> Result<RunStats, ExecError> {
        let mut cur = start;
        let mut stats = RunStats {
            retired: 0,
            cond_branches: 0,
            in_package: 0,
            stop: StopReason::InstLimit,
        };

        'outer: while stats.retired < cfg.max_insts {
            let func = self.program.func(cur.func);
            let block = func.block(cur.block);
            let in_package = self.in_package[cur.func.0 as usize];
            let base = self.layout.addr_of(cur);

            for (i, inst) in block.insts.iter().enumerate() {
                let addr = base + i as u64 * INST_BYTES;
                let mut ev = Retired {
                    loc: cur,
                    addr,
                    fu: inst.fu(),
                    latency: inst.latency(),
                    def: None,
                    uses: [None; 3],
                    mem_addr: None,
                    is_store: false,
                    ctrl: None,
                    in_package,
                };
                self.step(inst, &mut ev);
                stats.retired += 1;
                if in_package {
                    stats.in_package += 1;
                }
                sink.retire(&ev);
            }

            // Terminator.
            let enc = self.layout.encoding(cur);
            let term_addr = base + block.insts.len() as u64 * INST_BYTES;
            let emit_ctrl = |this: &Self,
                             sink: &mut dyn Sink,
                             stats: &mut RunStats,
                             addr: u64,
                             ctrl: Ctrl,
                             uses: [Option<Reg>; 3]| {
                stats.retired += 1;
                if in_package {
                    stats.in_package += 1;
                }
                if ctrl.is_cond {
                    stats.cond_branches += 1;
                }
                let _ = this;
                sink.retire(&Retired {
                    loc: cur,
                    addr,
                    fu: FuClass::Branch,
                    latency: 1,
                    def: None,
                    uses,
                    mem_addr: None,
                    is_store: false,
                    ctrl: Some(ctrl),
                    in_package,
                });
            };

            let next: CodeRef = match &block.term {
                Terminator::Goto(t) => {
                    if enc == TermEncoding::Jump {
                        emit_ctrl(
                            self,
                            sink,
                            &mut stats,
                            term_addr,
                            Ctrl {
                                block: cur,
                                is_cond: false,
                                arch_taken: true,
                                taken: true,
                                is_call: false,
                                is_ret: false,
                                target: self.layout.addr_of(*t),
                                ret_addr: 0,
                            },
                            [None; 3],
                        );
                    }
                    *t
                }
                Terminator::Br {
                    cond,
                    rs1,
                    rs2,
                    taken,
                    not_taken,
                } => {
                    let a = self.reg(*rs1);
                    let b = self.read_src(*rs2);
                    let arch = cond.eval(a, b);
                    let next = if arch { *taken } else { *not_taken };
                    let encoded_taken = match enc {
                        TermEncoding::BrFall | TermEncoding::BrJump => arch,
                        TermEncoding::BrInverted => !arch,
                        _ => unreachable!("conditional branch with non-branch encoding"),
                    };
                    let uses = [Some(*rs1), rs2.reg(), None];
                    emit_ctrl(
                        self,
                        sink,
                        &mut stats,
                        term_addr,
                        Ctrl {
                            block: cur,
                            is_cond: true,
                            arch_taken: arch,
                            taken: encoded_taken,
                            is_call: false,
                            is_ret: false,
                            target: self.layout.addr_of(next),
                            ret_addr: 0,
                        },
                        uses,
                    );
                    // Branch-plus-jump encoding: the fall-through path
                    // executes an extra jump.
                    if enc == TermEncoding::BrJump && !arch {
                        emit_ctrl(
                            self,
                            sink,
                            &mut stats,
                            term_addr + INST_BYTES,
                            Ctrl {
                                block: cur,
                                is_cond: false,
                                arch_taken: true,
                                taken: true,
                                is_call: false,
                                is_ret: false,
                                target: self.layout.addr_of(next),
                                ret_addr: 0,
                            },
                            [None; 3],
                        );
                    }
                    next
                }
                Terminator::Call { callee, ret_to } => {
                    if self.stack.len() >= cfg.max_depth {
                        return Err(ExecError::CallDepthExceeded(cur));
                    }
                    self.stack.push(CodeRef {
                        func: cur.func,
                        block: *ret_to,
                    });
                    let target = self.program.func(*callee);
                    let next = CodeRef {
                        func: *callee,
                        block: target.entry,
                    };
                    emit_ctrl(
                        self,
                        sink,
                        &mut stats,
                        term_addr,
                        Ctrl {
                            block: cur,
                            is_cond: false,
                            arch_taken: true,
                            taken: true,
                            is_call: true,
                            is_ret: false,
                            target: self.layout.addr_of(next),
                            ret_addr: self.layout.addr_of(CodeRef {
                                func: cur.func,
                                block: *ret_to,
                            }),
                        },
                        [None; 3],
                    );
                    next
                }
                Terminator::CallThrough { target, ret_to } => {
                    if self.stack.len() >= cfg.max_depth {
                        return Err(ExecError::CallDepthExceeded(cur));
                    }
                    self.stack.push(CodeRef {
                        func: cur.func,
                        block: *ret_to,
                    });
                    emit_ctrl(
                        self,
                        sink,
                        &mut stats,
                        term_addr,
                        Ctrl {
                            block: cur,
                            is_cond: false,
                            arch_taken: true,
                            taken: true,
                            is_call: true,
                            is_ret: false,
                            target: self.layout.addr_of(*target),
                            ret_addr: self.layout.addr_of(CodeRef {
                                func: cur.func,
                                block: *ret_to,
                            }),
                        },
                        [None; 3],
                    );
                    *target
                }
                Terminator::Ret => {
                    let Some(next) = self.stack.pop() else {
                        return Err(ExecError::ReturnWithoutCall(cur));
                    };
                    emit_ctrl(
                        self,
                        sink,
                        &mut stats,
                        term_addr,
                        Ctrl {
                            block: cur,
                            is_cond: false,
                            arch_taken: true,
                            taken: true,
                            is_call: false,
                            is_ret: true,
                            target: self.layout.addr_of(next),
                            ret_addr: 0,
                        },
                        [None; 3],
                    );
                    next
                }
                Terminator::Halt => {
                    emit_ctrl(
                        self,
                        sink,
                        &mut stats,
                        term_addr,
                        Ctrl {
                            block: cur,
                            is_cond: false,
                            arch_taken: false,
                            taken: false,
                            is_call: false,
                            is_ret: false,
                            target: 0,
                            ret_addr: 0,
                        },
                        [None; 3],
                    );
                    stats.stop = StopReason::Halted;
                    break 'outer;
                }
            };
            cur = next;
        }
        RETIRED.add(stats.retired);
        COND_BRANCHES.add(stats.cond_branches);
        IN_PACKAGE.add(stats.in_package);
        Ok(stats)
    }

    fn step(&mut self, inst: &Inst, ev: &mut Retired) {
        match inst {
            Inst::Nop => {}
            Inst::Li { rd, imm } => {
                self.write(*rd, *imm as u64);
                ev.def = Some(*rd);
            }
            Inst::Fli { rd, imm } => {
                self.write(*rd, imm.to_bits());
                ev.def = Some(*rd);
            }
            Inst::Mov { rd, rs } => {
                let v = self.reg(*rs);
                self.write(*rd, v);
                ev.def = Some(*rd);
                ev.uses[0] = Some(*rs);
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = self.reg(*rs1);
                let b = self.read_src(*rs2);
                self.write(*rd, eval_alu(*op, a, b));
                ev.def = Some(*rd);
                ev.uses[0] = Some(*rs1);
                ev.uses[1] = rs2.reg();
            }
            Inst::Falu { op, rd, rs1, rs2 } => {
                let a = f64::from_bits(self.reg(*rs1));
                let b = f64::from_bits(self.reg(*rs2));
                self.write(*rd, eval_falu(*op, a, b).to_bits());
                ev.def = Some(*rd);
                ev.uses[0] = Some(*rs1);
                ev.uses[1] = Some(*rs2);
            }
            Inst::Itof { rd, rs } => {
                let v = self.reg(*rs) as i64 as f64;
                self.write(*rd, v.to_bits());
                ev.def = Some(*rd);
                ev.uses[0] = Some(*rs);
            }
            Inst::Ftoi { rd, rs } => {
                let v = f64::from_bits(self.reg(*rs)) as i64 as u64;
                self.write(*rd, v);
                ev.def = Some(*rd);
                ev.uses[0] = Some(*rs);
            }
            Inst::Load { rd, base, offset } => {
                let addr = self.reg(*base).wrapping_add(*offset as u64);
                let v = self.mem.read(addr);
                self.write(*rd, v);
                ev.def = Some(*rd);
                ev.uses[0] = Some(*base);
                ev.mem_addr = Some(addr);
            }
            Inst::Store { src, base, offset } => {
                let addr = self.reg(*base).wrapping_add(*offset as u64);
                let v = self.reg(*src);
                self.mem.write(addr, v);
                ev.uses[0] = Some(*src);
                ev.uses[1] = Some(*base);
                ev.mem_addr = Some(addr);
                ev.is_store = true;
            }
            Inst::Consume { .. } => {
                // Pseudo-instruction: architecturally a no-op.
            }
        }
    }
}

fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_rem(b as i64) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Seq => (a == b) as u64,
    }
}

fn eval_falu(op: FaluOp, a: f64, b: f64) -> f64 {
    match op {
        FaluOp::Add => a + b,
        FaluOp::Sub => a - b,
        FaluOp::Mul => a * b,
        FaluOp::Div => a / b,
        FaluOp::Min => a.min(b),
        FaluOp::Max => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InstCounts, NullSink};
    use vp_isa::Cond;
    use vp_program::ProgramBuilder;

    fn run_program(build: impl FnOnce(&mut ProgramBuilder)) -> (Program, RunStats, [u64; 4]) {
        let mut pb = ProgramBuilder::new();
        build(&mut pb);
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        let stats = ex
            .run(&mut NullSink, &RunConfig::default())
            .expect("run failed");
        let r = [
            ex.reg(Reg::int(20)),
            ex.reg(Reg::int(21)),
            ex.reg(Reg::int(22)),
            ex.reg(Reg::int(23)),
        ];
        (p, stats, r)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (_, stats, r) = run_program(|pb| {
            pb.func("main", |f| {
                f.li(Reg::int(20), 6);
                f.li(Reg::int(21), 7);
                f.mul(Reg::int(22), Reg::int(20), Reg::int(21));
                f.halt();
            });
        });
        assert_eq!(r[2], 42);
        assert_eq!(stats.stop, StopReason::Halted);
        assert_eq!(stats.retired, 4);
    }

    #[test]
    fn loop_executes_expected_iterations() {
        let (_, stats, r) = run_program(|pb| {
            pb.func("main", |f| {
                let i = Reg::int(20);
                let acc = Reg::int(21);
                f.li(acc, 0);
                f.for_range(i, 0, 10, |f| {
                    f.add(acc, acc, i);
                });
                f.halt();
            });
        });
        assert_eq!(r[1], 45);
        assert_eq!(stats.cond_branches, 11); // 10 taken + 1 exit test
    }

    #[test]
    fn call_and_return() {
        let (_, _, r) = run_program(|pb| {
            let sq = pb.declare("square");
            pb.define(sq, |f| {
                f.mul(Reg::ARG0, Reg::ARG0, Reg::ARG0);
                f.ret();
            });
            let main = pb.declare("main");
            pb.define(main, |f| {
                f.call_args(sq, &[Src::Imm(9)]);
                f.mov(Reg::int(20), Reg::ARG0);
                f.halt();
            });
            pb.set_entry(main);
        });
        assert_eq!(r[0], 81);
    }

    #[test]
    fn recursion_computes_factorial() {
        let (_, _, r) = run_program(|pb| {
            let fact = pb.declare("fact");
            pb.define(fact, |f| {
                let n = Reg::ARG0;
                let c = f.cond(Cond::Lt, n, Src::Imm(2));
                f.if_else(
                    c,
                    |f| {
                        f.li(n, 1);
                        f.ret();
                    },
                    |f| {
                        // save n, recurse on n-1, multiply.
                        f.frame_alloc(1);
                        f.spill(n, 0);
                        f.addi(n, n, -1);
                        f.call(fact);
                        f.reload(Reg::int(30), 0);
                        f.mul(n, n, Reg::int(30));
                        f.frame_free(1);
                        f.ret();
                    },
                );
            });
            let main = pb.declare("main");
            pb.define(main, |f| {
                f.call_args(fact, &[Src::Imm(6)]);
                f.mov(Reg::int(20), Reg::ARG0);
                f.halt();
            });
            pb.set_entry(main);
        });
        assert_eq!(r[0], 720);
    }

    #[test]
    fn memory_roundtrip_through_program() {
        let mut pb = ProgramBuilder::new();
        let table = pb.data(vec![5, 10, 15]);
        pb.func("main", |f| {
            let b = Reg::int(25);
            f.li(b, table as i64);
            f.load(Reg::int(20), b, 8);
            f.addi(Reg::int(20), Reg::int(20), 1);
            f.store(Reg::int(20), b, 16);
            f.load(Reg::int(21), b, 16);
            f.halt();
        });
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        assert_eq!(ex.reg(Reg::int(20)), 11);
        assert_eq!(ex.reg(Reg::int(21)), 11);
    }

    #[test]
    fn fp_pipeline() {
        let (_, _, _r) = run_program(|pb| {
            pb.func("main", |f| {
                f.fli(Reg::fp(0), 1.5);
                f.fli(Reg::fp(1), 2.0);
                f.falu(FaluOp::Mul, Reg::fp(2), Reg::fp(0), Reg::fp(1));
                f.ftoi(Reg::int(20), Reg::fp(2));
                f.halt();
            });
        });
        // computed inside run_program's register dump
    }

    #[test]
    fn fp_values_convert() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            f.li(Reg::int(20), 7);
            f.itof(Reg::fp(0), Reg::int(20));
            f.fli(Reg::fp(1), 0.5);
            f.falu(FaluOp::Add, Reg::fp(2), Reg::fp(0), Reg::fp(1));
            f.halt();
        });
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        assert_eq!(ex.reg_f64(Reg::fp(2)), 7.5);
    }

    #[test]
    fn inst_limit_stops_infinite_loop() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let head = f.new_block();
            f.goto(head);
            f.switch_to(head);
            f.nop();
            f.goto(head);
        });
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        let stats = ex
            .run(
                &mut NullSink,
                &RunConfig {
                    max_insts: 1000,
                    max_depth: 10,
                },
            )
            .unwrap();
        assert_eq!(stats.stop, StopReason::InstLimit);
        assert!(stats.retired >= 1000);
    }

    #[test]
    fn return_without_call_is_error() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| f.ret());
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        let err = ex.run(&mut NullSink, &RunConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::ReturnWithoutCall(_)));
    }

    #[test]
    fn event_stream_reports_branch_directions() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let i = Reg::int(20);
            f.li(i, 0);
            f.for_range(i, 0, 4, |f| f.nop());
            f.halt();
        });
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut counts = InstCounts::new();
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut counts, &RunConfig::default()).unwrap();
        assert_eq!(counts.cond_branches, 5);
        assert!(counts.taken_transfers > 0);
    }

    #[test]
    fn div_by_zero_yields_zero() {
        assert_eq!(eval_alu(AluOp::Div, 5, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, 5, 0), 0);
    }

    #[test]
    fn signed_ops() {
        assert_eq!(eval_alu(AluOp::Div, (-6i64) as u64, 2), (-3i64) as u64);
        assert_eq!(eval_alu(AluOp::Sra, (-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(eval_alu(AluOp::Slt, (-1i64) as u64, 0), 1);
        assert_eq!(eval_alu(AluOp::Sltu, (-1i64) as u64, 0), 0);
    }
}

#[cfg(test)]
mod call_through_tests {
    use super::*;
    use crate::event::NullSink;
    use vp_program::{Block, FuncKind, Function, Terminator};

    /// Builds: main calls pkg; pkg block0 CallThroughs into helper's
    /// SECOND block (skipping its entry) pushing a trampoline; helper's
    /// Ret must land on the trampoline, which sets a marker then Rets to
    /// main's continuation.
    #[test]
    fn call_through_enters_mid_function_and_returns_to_trampoline() {
        let mut p = Program::default();
        // helper: b0 (entry, never run here) -> b1: r20 = 5; ret
        let mut helper = Function::new("helper");
        helper.push_block(Block {
            insts: vec![Inst::Li {
                rd: Reg::int(20),
                imm: 999,
            }],
            term: Terminator::Goto(CodeRef::new(0, 1)),
        });
        helper.push_block(Block {
            insts: vec![Inst::Li {
                rd: Reg::int(20),
                imm: 5,
            }],
            term: Terminator::Ret,
        });
        let helper_id = p.push_func(helper);

        // pkg: b0: CallThrough -> helper:b1, ret_to b1; b1: r21 = 7; ret
        let mut pkg = Function::new("pkg");
        pkg.kind = FuncKind::Package { phase: 0 };
        pkg.push_block(Block::empty(Terminator::CallThrough {
            target: CodeRef {
                func: helper_id,
                block: vp_isa::BlockId(1),
            },
            ret_to: vp_isa::BlockId(1),
        }));
        pkg.push_block(Block {
            insts: vec![Inst::Li {
                rd: Reg::int(21),
                imm: 7,
            }],
            term: Terminator::Ret,
        });
        let pkg_id = p.push_func(pkg);

        // main: call pkg; halt.
        let mut main = Function::new("main");
        main.push_block(Block::empty(Terminator::Call {
            callee: pkg_id,
            ret_to: vp_isa::BlockId(1),
        }));
        main.push_block(Block::empty(Terminator::Halt));
        let main_id = p.push_func(main);
        p.entry = main_id;
        p.validate().unwrap();

        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        let stats = ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        assert_eq!(stats.stop, StopReason::Halted);
        assert_eq!(ex.reg(Reg::int(20)), 5, "entered helper at b1, not b0");
        assert_eq!(
            ex.reg(Reg::int(21)),
            7,
            "helper's ret reached the trampoline"
        );
    }
}
