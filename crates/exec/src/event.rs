//! Retired-instruction events and the sinks that consume them.

use vp_isa::reg::NUM_REGS;
use vp_isa::{CodeRef, FuClass, Reg};

/// Control-transfer details attached to a retired control instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ctrl {
    /// Block whose terminator produced this control instruction.
    pub block: CodeRef,
    /// Whether this is a conditional branch (the only kind the Branch
    /// Behavior Buffer profiles).
    pub is_cond: bool,
    /// Architectural direction: the `Br` condition held. Meaningless for
    /// unconditional transfers (reported as `true`).
    pub arch_taken: bool,
    /// Encoded direction: the fetch stream was redirected (the instruction
    /// did not fall through). This is what the branch predictor and fetch
    /// unit observe.
    pub taken: bool,
    /// Whether this is a call.
    pub is_call: bool,
    /// Whether this is a return.
    pub is_ret: bool,
    /// Address of the next instruction fetched after this one.
    pub target: u64,
    /// For calls: the return address the matching return will transfer to
    /// (consumed by the return-address-stack model). Zero otherwise.
    pub ret_addr: u64,
}

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// Block the instruction belongs to.
    pub loc: CodeRef,
    /// Instruction fetch address.
    pub addr: u64,
    /// Functional unit class.
    pub fu: FuClass,
    /// Result latency with full bypassing (L1-hit latency for loads).
    pub latency: u32,
    /// Destination register, if any.
    pub def: Option<Reg>,
    /// Source registers (up to three; `None`-padded).
    pub uses: [Option<Reg>; 3],
    /// Effective byte address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Whether this is a store (as opposed to a load) when `mem_addr` is
    /// set.
    pub is_store: bool,
    /// Control-transfer details for control instructions.
    pub ctrl: Option<Ctrl>,
    /// Whether the instruction came from an extracted package function.
    pub in_package: bool,
}

/// Per-event flag bits and field packing for the [`ColumnBatch`] views.
///
/// The batched replay kernel can split each decoded chunk into compact
/// per-column arrays so hot sinks (the timing model, the hot-spot
/// detector) read a handful of flat `u8`/`u64` columns instead of chasing
/// `Option`s through 80-byte [`Retired`] records. This module defines the
/// column encoding; [`ColumnBatch`] carries the views.
pub mod col {
    use super::{FuClass, Retired, NUM_REGS};

    /// `Retired::is_store` (meaningful only with [`MEM`]).
    pub const STORE: u8 = 1 << 0;
    /// The event carries an effective memory address (`mem_addr` is set).
    pub const MEM: u8 = 1 << 1;
    /// `Ctrl::arch_taken` (meaningful only with [`CTRL`]).
    pub const ARCH_TAKEN: u8 = 1 << 2;
    /// `Ctrl::taken` (meaningful only with [`CTRL`]).
    pub const TAKEN: u8 = 1 << 3;
    /// The event is a control transfer (`ctrl` is set).
    pub const CTRL: u8 = 1 << 4;
    /// `Ctrl::is_cond` (meaningful only with [`CTRL`]).
    pub const COND: u8 = 1 << 5;
    /// `Ctrl::is_call` (meaningful only with [`CTRL`]).
    pub const CALL: u8 = 1 << 6;
    /// `Ctrl::is_ret` (meaningful only with [`CTRL`]).
    pub const RET: u8 = 1 << 7;

    /// Source-register sentinel in the packed exec word: an absent `uses`
    /// slot encodes this index, which consumers back with an always-zero
    /// scoreboard entry so operand-readiness math stays branch-free.
    pub const USE_NONE: usize = NUM_REGS;
    /// Destination-register sentinel: an absent `def` encodes this index,
    /// a scratch scoreboard slot that absorbs the (dead) writeback.
    pub const DEF_NONE: usize = NUM_REGS + 1;

    /// Bit offset of the second source register in the exec word.
    pub const USE1_SHIFT: u32 = 8;
    /// Bit offset of the third source register in the exec word.
    pub const USE2_SHIFT: u32 = 16;
    /// Bit offset of the destination register in the exec word.
    pub const DEF_SHIFT: u32 = 24;
    /// Bit offset of the functional-unit class (2 bits, [`fu_index`]).
    pub const FU_SHIFT: u32 = 32;
    /// Bit offset of the result latency (29 bits, [`LATENCY_MASK`]).
    pub const LATENCY_SHIFT: u32 = 34;
    /// Mask for the latency field once shifted down by [`LATENCY_SHIFT`].
    pub const LATENCY_MASK: u64 = (1 << 29) - 1;
    /// Bit offset of the `Retired::in_package` flag — the static bit the
    /// 8-bit flag column has no room for, carried in the exec word's top
    /// bit so columns-only sinks can count package residency.
    pub const IN_PACKAGE_SHIFT: u32 = 63;
    /// Mask for one register field (8 bits).
    pub const REG_MASK: u64 = 0xff;

    /// Canonical dense index of a functional-unit class, used for the
    /// 2-bit field at [`FU_SHIFT`] and for per-class unit-count tables.
    pub fn fu_index(c: FuClass) -> usize {
        match c {
            FuClass::IntAlu => 0,
            FuClass::Fp => 1,
            FuClass::Mem => 2,
            FuClass::Branch => 3,
        }
    }

    /// Packs the issue-relevant fields of one event — three sources,
    /// destination, functional unit, latency, package residency — into a
    /// single word.
    pub fn pack_exec(r: &Retired) -> u64 {
        let use_of = |i: usize| r.uses[i].map_or(USE_NONE, |u| u.index()) as u64;
        let def = r.def.map_or(DEF_NONE, |d| d.index()) as u64;
        debug_assert!(
            u64::from(r.latency) <= LATENCY_MASK,
            "latency overflows the exec word"
        );
        use_of(0)
            | use_of(1) << USE1_SHIFT
            | use_of(2) << USE2_SHIFT
            | def << DEF_SHIFT
            | (fu_index(r.fu) as u64) << FU_SHIFT
            | u64::from(r.latency) << LATENCY_SHIFT
            | u64::from(r.in_package) << IN_PACKAGE_SHIFT
    }

    /// Derives the flag byte for one event (the view a column decoder
    /// produces; also the reference the equivalence tests pin against).
    pub fn pack_flags(r: &Retired) -> u8 {
        let mut f = 0;
        if r.mem_addr.is_some() {
            f |= MEM;
        }
        if r.is_store {
            f |= STORE;
        }
        if let Some(c) = &r.ctrl {
            f |= CTRL;
            if c.is_cond {
                f |= COND;
            }
            if c.arch_taken {
                f |= ARCH_TAKEN;
            }
            if c.taken {
                f |= TAKEN;
            }
            if c.is_call {
                f |= CALL;
            }
            if c.is_ret {
                f |= RET;
            }
        }
        f
    }
}

/// Column views over one decoded replay chunk.
///
/// Produced by the batched replay kernel when the sink opts in through
/// [`Sink::wants_columns`]. All column slices have the same length; `events`
/// holds the equivalent [`Retired`] records so column-oblivious sinks (and
/// tuple members that did not opt in) can fall back to the struct path.
///
/// Column semantics per event `i`:
/// * `flags[i]` — [`col`] bits;
/// * `addr[i]` — fetch address;
/// * `exec[i]` — packed sources/destination/FU/latency ([`col::pack_exec`]);
/// * `mem[i]` — effective memory address, 0 unless [`col::MEM`];
/// * `target[i]` — for returns the decoded return target, for calls the
///   return address pushed on the RAS, for other control transfers the
///   architectural target; 0 for non-control events. The three cases are
///   disjoint under the consumer priority `COND` → `RET` → `CALL`.
#[derive(Debug, Clone, Copy)]
pub struct ColumnBatch<'a> {
    /// The decoded events, for struct-path fallback consumers.
    pub events: &'a [Retired],
    /// Per-event [`col`] flag bytes.
    pub flags: &'a [u8],
    /// Per-event fetch addresses.
    pub addr: &'a [u64],
    /// Per-event packed exec words.
    pub exec: &'a [u64],
    /// Per-event effective memory addresses.
    pub mem: &'a [u64],
    /// Per-event control-transfer auxiliary addresses.
    pub target: &'a [u64],
}

impl ColumnBatch<'_> {
    /// Number of events in the chunk.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

/// One decoded event in column form, passed by value (five registers) to
/// the closure of [`CapturedTrace::replay_events_with`]. Field semantics
/// match the [`ColumnBatch`] columns of the same names.
///
/// [`CapturedTrace::replay_events_with`]: crate::CapturedTrace::replay_events_with
#[derive(Debug, Clone, Copy)]
pub struct ColEvent {
    /// [`col`] flag bits.
    pub flags: u8,
    /// Fetch address.
    pub addr: u64,
    /// Packed sources/destination/FU/latency word ([`col::pack_exec`]).
    pub exec: u64,
    /// Effective memory address, 0 unless [`col::MEM`].
    pub mem: u64,
    /// Control-transfer auxiliary address (see [`ColumnBatch::target`]).
    pub target: u64,
}

/// Consumer of the retired stream.
///
/// Sinks compose with tuples: `(&mut hsd, &mut counts)` style composition is
/// provided through the tuple implementation.
pub trait Sink {
    /// Observes one retired instruction.
    fn retire(&mut self, r: &Retired);

    /// Observes a chunk of consecutive retired instructions.
    ///
    /// The batched replay kernel ([`CapturedTrace::replay`]) decodes into a
    /// reusable chunk buffer and hands whole chunks to the sink through this
    /// method. The default forwards event by event, so existing sinks keep
    /// working unchanged; hot consumers override it with a tight loop that
    /// hoists per-call setup out of the per-event path. Overrides must be
    /// observationally identical to the default: same events, same order.
    ///
    /// [`CapturedTrace::replay`]: crate::CapturedTrace::replay
    fn retire_batch(&mut self, batch: &[Retired]) {
        for r in batch {
            self.retire(r);
        }
    }

    /// Whether this sink prefers the column-split chunk form.
    ///
    /// When any sink in the composition returns `true`, the batched replay
    /// kernel additionally splits each decoded chunk into [`ColumnBatch`]
    /// views and dispatches through [`Sink::retire_columns`] instead of
    /// [`Sink::retire_batch`]. The default is `false`.
    fn wants_columns(&self) -> bool {
        false
    }

    /// Observes a chunk in column-split form.
    ///
    /// Only called when [`Sink::wants_columns`] returned `true` somewhere in
    /// the sink composition. The default falls back to the struct path over
    /// `b.events`, so sinks that never opted in behave identically inside a
    /// tuple with one that did. Overrides must be observationally identical
    /// to the default.
    fn retire_columns(&mut self, b: &ColumnBatch<'_>) {
        self.retire_batch(b.events);
    }

    /// Whether this sink (and, for tuples, every member) reads only the
    /// column views, never [`ColumnBatch::events`].
    ///
    /// When the whole composition returns `true`, the replay kernel skips
    /// materializing the `Retired` struct form entirely and hands over a
    /// [`ColumnBatch`] whose `events` slice is empty. Only return `true`
    /// from a sink whose [`Sink::retire_columns`] override ignores
    /// `events`; the default is `false`.
    fn columns_only(&self) -> bool {
        false
    }
}

/// A sink that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn retire(&mut self, _r: &Retired) {}

    fn retire_batch(&mut self, _batch: &[Retired]) {}

    fn retire_columns(&mut self, _b: &ColumnBatch<'_>) {}

    fn columns_only(&self) -> bool {
        true
    }
}

impl<S: Sink + ?Sized> Sink for &mut S {
    fn retire(&mut self, r: &Retired) {
        (**self).retire(r);
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        (**self).retire_batch(batch);
    }

    fn wants_columns(&self) -> bool {
        (**self).wants_columns()
    }

    fn retire_columns(&mut self, b: &ColumnBatch<'_>) {
        (**self).retire_columns(b);
    }

    fn columns_only(&self) -> bool {
        (**self).columns_only()
    }
}

impl<A: Sink, B: Sink> Sink for (A, B) {
    fn retire(&mut self, r: &Retired) {
        self.0.retire(r);
        self.1.retire(r);
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        self.0.retire_batch(batch);
        self.1.retire_batch(batch);
    }

    fn wants_columns(&self) -> bool {
        self.0.wants_columns() || self.1.wants_columns()
    }

    fn retire_columns(&mut self, b: &ColumnBatch<'_>) {
        // Each member picks its own form: opted-in members get the
        // columns, the rest fall through their default to `b.events`.
        self.0.retire_columns(b);
        self.1.retire_columns(b);
    }

    fn columns_only(&self) -> bool {
        self.0.columns_only() && self.1.columns_only()
    }
}

impl<A: Sink, B: Sink, C: Sink> Sink for (A, B, C) {
    fn retire(&mut self, r: &Retired) {
        self.0.retire(r);
        self.1.retire(r);
        self.2.retire(r);
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        self.0.retire_batch(batch);
        self.1.retire_batch(batch);
        self.2.retire_batch(batch);
    }

    fn wants_columns(&self) -> bool {
        self.0.wants_columns() || self.1.wants_columns() || self.2.wants_columns()
    }

    fn retire_columns(&mut self, b: &ColumnBatch<'_>) {
        self.0.retire_columns(b);
        self.1.retire_columns(b);
        self.2.retire_columns(b);
    }

    fn columns_only(&self) -> bool {
        self.0.columns_only() && self.1.columns_only() && self.2.columns_only()
    }
}

/// Simple aggregate counters over the retired stream, including the
/// package-residency numbers behind the paper's Figure 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstCounts {
    /// Total retired instructions.
    pub total: u64,
    /// Retired instructions from package functions.
    pub in_package: u64,
    /// Retired conditional branches.
    pub cond_branches: u64,
    /// Retired taken (encoded direction) control transfers.
    pub taken_transfers: u64,
    /// Retired loads and stores.
    pub mem_ops: u64,
}

impl InstCounts {
    /// Creates zeroed counters.
    pub fn new() -> InstCounts {
        InstCounts::default()
    }

    /// Fraction of retired instructions executed inside packages
    /// (Figure 8's metric), in `[0, 1]`.
    pub fn package_coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.in_package as f64 / self.total as f64
        }
    }
}

impl Sink for InstCounts {
    fn retire(&mut self, r: &Retired) {
        self.total += 1;
        if r.in_package {
            self.in_package += 1;
        }
        if r.mem_addr.is_some() {
            self.mem_ops += 1;
        }
        if let Some(c) = &r.ctrl {
            if c.is_cond {
                self.cond_branches += 1;
            }
            if c.taken {
                self.taken_transfers += 1;
            }
        }
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        // Branch-free accumulation into locals; the per-field conversions
        // vectorize where the per-event `if` ladder does not.
        let (mut in_package, mut cond, mut taken, mut mem) = (0u64, 0u64, 0u64, 0u64);
        for r in batch {
            in_package += u64::from(r.in_package);
            mem += u64::from(r.mem_addr.is_some());
            if let Some(c) = &r.ctrl {
                cond += u64::from(c.is_cond);
                taken += u64::from(c.taken);
            }
        }
        self.total += batch.len() as u64;
        self.in_package += in_package;
        self.mem_ops += mem;
        self.cond_branches += cond;
        self.taken_transfers += taken;
    }

    fn wants_columns(&self) -> bool {
        true
    }

    fn retire_columns(&mut self, b: &ColumnBatch<'_>) {
        // Everything this sink counts lives in the flag byte plus the
        // exec word's in-package bit, so the whole chunk reduces without
        // touching (or materializing) the 80-byte struct form. `COND` and
        // `TAKEN` imply `CTRL` in the column encoding, matching the
        // struct path's ladder through `ctrl`.
        let (mut in_package, mut cond, mut taken, mut mem) = (0u64, 0u64, 0u64, 0u64);
        for (&f, &e) in b.flags.iter().zip(b.exec) {
            in_package += e >> col::IN_PACKAGE_SHIFT;
            mem += u64::from(f & col::MEM != 0);
            cond += u64::from(f & col::COND != 0);
            taken += u64::from(f & col::TAKEN != 0);
        }
        self.total += b.len() as u64;
        self.in_package += in_package;
        self.mem_ops += mem;
        self.cond_branches += cond;
        self.taken_transfers += taken;
    }

    fn columns_only(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(in_package: bool) -> Retired {
        Retired {
            loc: CodeRef::new(0, 0),
            addr: 0x1000,
            fu: FuClass::IntAlu,
            latency: 1,
            def: None,
            uses: [None; 3],
            mem_addr: None,
            is_store: false,
            ctrl: None,
            in_package,
        }
    }

    #[test]
    fn counts_accumulate() {
        let mut c = InstCounts::new();
        c.retire(&dummy(false));
        c.retire(&dummy(true));
        assert_eq!(c.total, 2);
        assert_eq!(c.in_package, 1);
        assert!((c.package_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_coverage_is_zero() {
        assert_eq!(InstCounts::new().package_coverage(), 0.0);
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut pair = (InstCounts::new(), InstCounts::new());
        pair.retire(&dummy(false));
        assert_eq!(pair.0.total, 1);
        assert_eq!(pair.1.total, 1);
    }

    #[test]
    fn exec_word_carries_in_package_above_latency() {
        let mut r = dummy(true);
        r.latency = (col::LATENCY_MASK) as u32;
        let word = col::pack_exec(&r);
        assert_eq!(word >> col::IN_PACKAGE_SHIFT, 1);
        assert_eq!(
            word >> col::LATENCY_SHIFT & col::LATENCY_MASK,
            u64::from(r.latency)
        );
        r.in_package = false;
        assert_eq!(col::pack_exec(&r) >> col::IN_PACKAGE_SHIFT, 0);
    }

    #[test]
    fn column_counts_match_struct_counts() {
        // A batch exercising every counted property: plain, in-package,
        // load, and both directions of a conditional branch.
        let mut batch = vec![dummy(false), dummy(true)];
        let mut load = dummy(true);
        load.mem_addr = Some(0x2000);
        batch.push(load);
        for taken in [false, true] {
            let mut br = dummy(false);
            br.ctrl = Some(Ctrl {
                block: CodeRef::new(0, 0),
                is_cond: true,
                is_call: false,
                is_ret: false,
                taken,
                arch_taken: taken,
                target: 0x3000,
                ret_addr: 0,
            });
            batch.push(br);
        }

        let mut via_struct = InstCounts::new();
        via_struct.retire_batch(&batch);

        let flags: Vec<u8> = batch.iter().map(col::pack_flags).collect();
        let exec: Vec<u64> = batch.iter().map(col::pack_exec).collect();
        let zeros = vec![0u64; batch.len()];
        let mut via_cols = InstCounts::new();
        via_cols.retire_columns(&ColumnBatch {
            events: &[],
            flags: &flags,
            addr: &zeros,
            exec: &exec,
            mem: &zeros,
            target: &zeros,
        });
        assert_eq!(via_cols, via_struct, "column path must count identically");
        assert!(via_cols.columns_only(), "InstCounts never reads the events");
    }
}
