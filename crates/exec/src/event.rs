//! Retired-instruction events and the sinks that consume them.

use vp_isa::{CodeRef, FuClass, Reg};

/// Control-transfer details attached to a retired control instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ctrl {
    /// Block whose terminator produced this control instruction.
    pub block: CodeRef,
    /// Whether this is a conditional branch (the only kind the Branch
    /// Behavior Buffer profiles).
    pub is_cond: bool,
    /// Architectural direction: the `Br` condition held. Meaningless for
    /// unconditional transfers (reported as `true`).
    pub arch_taken: bool,
    /// Encoded direction: the fetch stream was redirected (the instruction
    /// did not fall through). This is what the branch predictor and fetch
    /// unit observe.
    pub taken: bool,
    /// Whether this is a call.
    pub is_call: bool,
    /// Whether this is a return.
    pub is_ret: bool,
    /// Address of the next instruction fetched after this one.
    pub target: u64,
    /// For calls: the return address the matching return will transfer to
    /// (consumed by the return-address-stack model). Zero otherwise.
    pub ret_addr: u64,
}

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// Block the instruction belongs to.
    pub loc: CodeRef,
    /// Instruction fetch address.
    pub addr: u64,
    /// Functional unit class.
    pub fu: FuClass,
    /// Result latency with full bypassing (L1-hit latency for loads).
    pub latency: u32,
    /// Destination register, if any.
    pub def: Option<Reg>,
    /// Source registers (up to three; `None`-padded).
    pub uses: [Option<Reg>; 3],
    /// Effective byte address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Whether this is a store (as opposed to a load) when `mem_addr` is
    /// set.
    pub is_store: bool,
    /// Control-transfer details for control instructions.
    pub ctrl: Option<Ctrl>,
    /// Whether the instruction came from an extracted package function.
    pub in_package: bool,
}

/// Consumer of the retired stream.
///
/// Sinks compose with tuples: `(&mut hsd, &mut counts)` style composition is
/// provided through the tuple implementation.
pub trait Sink {
    /// Observes one retired instruction.
    fn retire(&mut self, r: &Retired);

    /// Observes a chunk of consecutive retired instructions.
    ///
    /// The batched replay kernel ([`CapturedTrace::replay`]) decodes into a
    /// reusable chunk buffer and hands whole chunks to the sink through this
    /// method. The default forwards event by event, so existing sinks keep
    /// working unchanged; hot consumers override it with a tight loop that
    /// hoists per-call setup out of the per-event path. Overrides must be
    /// observationally identical to the default: same events, same order.
    ///
    /// [`CapturedTrace::replay`]: crate::CapturedTrace::replay
    fn retire_batch(&mut self, batch: &[Retired]) {
        for r in batch {
            self.retire(r);
        }
    }
}

/// A sink that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn retire(&mut self, _r: &Retired) {}

    fn retire_batch(&mut self, _batch: &[Retired]) {}
}

impl<S: Sink + ?Sized> Sink for &mut S {
    fn retire(&mut self, r: &Retired) {
        (**self).retire(r);
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        (**self).retire_batch(batch);
    }
}

impl<A: Sink, B: Sink> Sink for (A, B) {
    fn retire(&mut self, r: &Retired) {
        self.0.retire(r);
        self.1.retire(r);
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        self.0.retire_batch(batch);
        self.1.retire_batch(batch);
    }
}

impl<A: Sink, B: Sink, C: Sink> Sink for (A, B, C) {
    fn retire(&mut self, r: &Retired) {
        self.0.retire(r);
        self.1.retire(r);
        self.2.retire(r);
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        self.0.retire_batch(batch);
        self.1.retire_batch(batch);
        self.2.retire_batch(batch);
    }
}

/// Simple aggregate counters over the retired stream, including the
/// package-residency numbers behind the paper's Figure 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstCounts {
    /// Total retired instructions.
    pub total: u64,
    /// Retired instructions from package functions.
    pub in_package: u64,
    /// Retired conditional branches.
    pub cond_branches: u64,
    /// Retired taken (encoded direction) control transfers.
    pub taken_transfers: u64,
    /// Retired loads and stores.
    pub mem_ops: u64,
}

impl InstCounts {
    /// Creates zeroed counters.
    pub fn new() -> InstCounts {
        InstCounts::default()
    }

    /// Fraction of retired instructions executed inside packages
    /// (Figure 8's metric), in `[0, 1]`.
    pub fn package_coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.in_package as f64 / self.total as f64
        }
    }
}

impl Sink for InstCounts {
    fn retire(&mut self, r: &Retired) {
        self.total += 1;
        if r.in_package {
            self.in_package += 1;
        }
        if r.mem_addr.is_some() {
            self.mem_ops += 1;
        }
        if let Some(c) = &r.ctrl {
            if c.is_cond {
                self.cond_branches += 1;
            }
            if c.taken {
                self.taken_transfers += 1;
            }
        }
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        // Branch-free accumulation into locals; the per-field conversions
        // vectorize where the per-event `if` ladder does not.
        let (mut in_package, mut cond, mut taken, mut mem) = (0u64, 0u64, 0u64, 0u64);
        for r in batch {
            in_package += u64::from(r.in_package);
            mem += u64::from(r.mem_addr.is_some());
            if let Some(c) = &r.ctrl {
                cond += u64::from(c.is_cond);
                taken += u64::from(c.taken);
            }
        }
        self.total += batch.len() as u64;
        self.in_package += in_package;
        self.mem_ops += mem;
        self.cond_branches += cond;
        self.taken_transfers += taken;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(in_package: bool) -> Retired {
        Retired {
            loc: CodeRef::new(0, 0),
            addr: 0x1000,
            fu: FuClass::IntAlu,
            latency: 1,
            def: None,
            uses: [None; 3],
            mem_addr: None,
            is_store: false,
            ctrl: None,
            in_package,
        }
    }

    #[test]
    fn counts_accumulate() {
        let mut c = InstCounts::new();
        c.retire(&dummy(false));
        c.retire(&dummy(true));
        assert_eq!(c.total, 2);
        assert_eq!(c.in_package, 1);
        assert!((c.package_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_coverage_is_zero() {
        assert_eq!(InstCounts::new().package_coverage(), 0.0);
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut pair = (InstCounts::new(), InstCounts::new());
        pair.retire(&dummy(false));
        assert_eq!(pair.0.total, 1);
        assert_eq!(pair.1.total, 1);
    }
}
