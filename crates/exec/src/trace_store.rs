//! Retired-trace capture and replay: record a workload's retired-instruction
//! stream once, then feed it to any number of [`Sink`] consumers without
//! re-executing the program.
//!
//! The paper separates *collection* (the Hot Spot Detector watches the
//! retired-branch stream in hardware) from *consumption* (region
//! identification, packaging, timing). This module gives the harness the
//! same separation: one architectural execution produces a
//! [`CapturedTrace`]; every later consumer — another detector
//! configuration, the `vp-sim` timing model, branch-count oracles —
//! replays the recorded stream instead of re-interpreting the program.
//!
//! # Encoding
//!
//! Almost every field of a [`Retired`] event is *static*: for a fixed
//! program and layout, the instruction at a given fetch address always has
//! the same location, FU class, latency, register defs/uses, and
//! control-transfer kind. The recorder therefore splits the stream:
//!
//! * a **static side-table** with one entry per distinct fetch address,
//!   holding a template `Retired` event plus the (at most two) observed
//!   control-transfer targets, keyed densely in first-seen order;
//! * a **dynamic byte stream** with one record per retired instruction: a
//!   flags byte (sequential-index bit, memory bit, branch directions),
//!   then optional LEB128 varints — a zig-zag table-index delta when
//!   execution did not fall through to the next recorded address, a
//!   zig-zag delta-coded effective address for loads/stores, and an
//!   explicit target only for returns (the one transfer whose target is
//!   not a function of the address and direction).
//!
//! Straight-line code costs one byte per instruction; the amortized cost
//! stays well under the 8-bytes-per-instruction budget even on
//! memory-heavy workloads (see `tests/trace_replay.rs`).
//!
//! # Caching
//!
//! [`TraceStore`] is a bounded, thread-safe map from [`TraceKey`]
//! (workload label + structural fingerprint + [`RunConfig`] limits) to
//! shared captures. [`TraceStore::capture_or_replay`] is the one-call
//! front door used by the experiment harness: a hit replays, a miss
//! executes once while recording — and concurrent misses on the same key
//! are single-flighted, so exactly one thread interprets while the rest
//! wait and replay. The byte budget comes from `VP_TRACE_CACHE_MB`
//! (default 512); least-recently-used captures are evicted when it is
//! exceeded, so oversubscribed sweeps degrade to re-execution instead of
//! exhausting memory. `VP_TRACE_CACHE_MB=0` disables the memory tier
//! cleanly: with no disk tier either, runs execute directly and pay no
//! recording cost at all.
//!
//! # Persistence
//!
//! When `VP_TRACE_DIR` is set, the global store layers an on-disk tier
//! ([`persist::DiskTier`]) under the memory LRU: lookups resolve
//! memory-hit → disk-hit (load, CRC-verify, promote) → live capture
//! (write-through), so a warmed cache survives process restarts and is
//! shared between concurrently running shard processes. The disk budget
//! is `VP_TRACE_DISK_MB` (default 2048), enforced by mtime-LRU eviction.
//! Corrupted or version-mismatched files are refused and re-captured,
//! never replayed wrong.
//!
//! Instrumentation (`vp-trace` counters, stamped into every run
//! manifest): `trace_store.captures`, `.replays`, `.hits`, `.evictions`,
//! `.bytes`, and for the disk tier `.disk_hits`, `.disk_bytes`,
//! `.disk_evictions`.
//!
//! ```
//! use vp_program::{ProgramBuilder, Layout};
//! use vp_exec::{CapturedTrace, InstCounts, RunConfig};
//! use vp_isa::Reg;
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", |f| {
//!     let i = Reg::int(8);
//!     f.li(i, 0);
//!     f.for_range(i, 0, 100, |f| f.nop());
//!     f.halt();
//! });
//! let p = pb.build();
//! let layout = Layout::natural(&p);
//!
//! // Execute once, recording the retired stream...
//! let trace = CapturedTrace::capture(&p, &layout, &RunConfig::default())?;
//!
//! // ...then replay it through as many sinks as needed, no executor.
//! let mut counts = InstCounts::new();
//! let stats = trace.replay(&mut counts);
//! assert_eq!(counts.total, stats.retired);
//! assert_eq!(stats.retired, trace.stats().retired);
//! # Ok::<(), vp_exec::ExecError>(())
//! ```

use crate::event::{Retired, Sink};
use crate::exec::{ExecError, Executor, RunConfig, RunStats};
use crate::fx::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use vp_program::{Layout, Program};
use vp_trace::Counter;

pub mod persist;

pub use persist::{crc32, DiskTier, DEFAULT_DISK_MB, FORMAT_VERSION};

/// Architectural executions performed because no capture was available.
static CAPTURES: Counter = Counter::new("trace_store.captures");
/// Full replays of a captured trace through a sink.
static REPLAYS: Counter = Counter::new("trace_store.replays");
/// Store lookups answered from cache.
static HITS: Counter = Counter::new("trace_store.hits");
/// Captures evicted to stay inside the byte budget.
static EVICTIONS: Counter = Counter::new("trace_store.evictions");
/// Total encoded bytes captured (monotonic, not resident).
static BYTES: Counter = Counter::new("trace_store.bytes");

/// Default cache budget when `VP_TRACE_CACHE_MB` is unset.
pub const DEFAULT_CACHE_MB: usize = 512;

/// Default chunk size (in events) of the batched replay kernel when
/// `VP_REPLAY_BATCH` is unset.
///
/// Sized so the chunk buffer (`batch × size_of::<Retired>()`, 80 bytes per
/// event) stays L1-resident: at 512 events the buffer is 40 KB and the
/// whole working set fits comfortably, where the previous 4096-event
/// default streamed a 320 KB buffer through the cache every chunk and
/// lost to the per-event decoder on monomorphized sinks (the BENCH_6
/// 0.77× inversion). Measured on the twolf replay workload, 512 beats
/// 64/128/256 as well.
pub const DEFAULT_REPLAY_BATCH: usize = 512;

/// Default chunk size for column-form sinks ([`Sink::wants_columns`]).
/// The column scratch is five parallel output streams plus the sink's own
/// tables (timing-model caches, scoreboard), so its working set leaves
/// less L1 headroom than the single struct buffer; 256 beats 96–2048 on
/// the fused-sim replay bench while the struct path still prefers 512.
pub const DEFAULT_REPLAY_BATCH_COLS: usize = 256;

/// Chunk size for [`CapturedTrace::replay`], from `VP_REPLAY_BATCH`;
/// unset falls back to the per-form default.
fn replay_batch_from_env(cols: bool) -> usize {
    parse_replay_batch(std::env::var("VP_REPLAY_BATCH").ok().as_deref(), cols)
}

/// Parses a `VP_REPLAY_BATCH` value; unset, unparsable, or zero values
/// fall back to [`DEFAULT_REPLAY_BATCH`] ([`DEFAULT_REPLAY_BATCH_COLS`]
/// for column-form sink compositions).
fn parse_replay_batch(v: Option<&str>, cols: bool) -> usize {
    v.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(if cols {
            DEFAULT_REPLAY_BATCH_COLS
        } else {
            DEFAULT_REPLAY_BATCH
        })
}

// ---------------------------------------------------------------- varints

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline(always)]
fn get_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline(always)]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------- static table

/// Per-address static information: a template event plus the observed
/// control targets, indexed by architectural direction.
#[derive(Debug, Clone)]
pub(crate) struct StaticSlot {
    template: Retired,
    targets: [Option<u64>; 2],
}

const FLAG_SEQ: u8 = 1 << 0;
const FLAG_MEM: u8 = 1 << 1;
const FLAG_ARCH_TAKEN: u8 = 1 << 2;
const FLAG_TAKEN: u8 = 1 << 3;

/// A [`Sink`] that records the retired stream it observes.
///
/// Attach it (alone or tupled with live consumers) to an
/// [`Executor`] run, then call [`TraceRecorder::finish`] with the run's
/// stats to obtain the immutable [`CapturedTrace`].
#[derive(Debug, Default)]
pub struct TraceRecorder {
    slots: Vec<StaticSlot>,
    /// Fetch address of each slot, parallel to `slots`: the capture fast
    /// path resolves sequential execution against this dense array with
    /// one compare instead of a hash probe per event.
    addrs: Vec<u64>,
    by_addr: FxHashMap<u64, u32>,
    stream: Vec<u8>,
    prev_idx: i64,
    last_mem: u64,
    events: u64,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            prev_idx: -1,
            ..TraceRecorder::default()
        }
    }

    /// Seals the recording into a [`CapturedTrace`].
    pub fn finish(self, stats: RunStats) -> CapturedTrace {
        let trace = CapturedTrace::assemble(self.slots, self.stream.into(), stats, self.events);
        CAPTURES.incr();
        BYTES.add(trace.bytes() as u64);
        // Flight payload: (trace bytes, event count).
        vp_trace::flight("trace_store.capture", trace.bytes() as u64, trace.events);
        trace
    }

    /// Slot resolution off the sequential fast path (taken branches, call
    /// and loop back-edges): hash-probe the address map, registering a new
    /// slot on first sight.
    fn retire_slot_slow(&mut self, r: &Retired) -> u32 {
        match self.by_addr.get(&r.addr) {
            Some(&i) => i,
            None => {
                let i = self.slots.len() as u32;
                let mut template = *r;
                template.mem_addr = None;
                if let Some(c) = &mut template.ctrl {
                    c.arch_taken = false;
                    c.taken = false;
                    c.target = 0;
                }
                self.slots.push(StaticSlot {
                    template,
                    targets: [None; 2],
                });
                self.addrs.push(r.addr);
                self.by_addr.insert(r.addr, i);
                i
            }
        }
    }
}

impl Sink for TraceRecorder {
    fn retire(&mut self, r: &Retired) {
        // Fast path: straight-line execution of already-seen code. Slots
        // are numbered in first-seen order, so whenever execution falls
        // through, the next event's address equals the next slot's — one
        // dense-array compare replaces the per-event hash probe, and the
        // record is the bare one-byte `FLAG_SEQ | ...` form. Addresses are
        // unique per slot (`by_addr` is injective), so a match *proves*
        // the slot index.
        let next = (self.prev_idx + 1) as usize;
        let idx = if self.addrs.get(next) == Some(&r.addr) {
            next as u32
        } else {
            self.retire_slot_slow(r)
        };

        let mut flags = 0u8;
        let seq = i64::from(idx) == self.prev_idx + 1;
        if seq {
            flags |= FLAG_SEQ;
        }
        if r.mem_addr.is_some() {
            flags |= FLAG_MEM;
        }
        if let Some(c) = &r.ctrl {
            if c.arch_taken {
                flags |= FLAG_ARCH_TAKEN;
            }
            if c.taken {
                flags |= FLAG_TAKEN;
            }
        }
        self.stream.push(flags);
        if !seq {
            put_varint(
                &mut self.stream,
                zigzag(i64::from(idx) - (self.prev_idx + 1)),
            );
        }
        self.prev_idx = i64::from(idx);

        if let Some(m) = r.mem_addr {
            put_varint(
                &mut self.stream,
                zigzag(m.wrapping_sub(self.last_mem) as i64),
            );
            self.last_mem = m;
        }
        if let Some(c) = &r.ctrl {
            let slot = &mut self.slots[idx as usize];
            debug_assert_eq!(
                slot.template.loc, r.loc,
                "static fields must be constant per address"
            );
            if c.is_ret {
                // A return's target depends on the dynamic call stack.
                put_varint(
                    &mut self.stream,
                    zigzag(c.target.wrapping_sub(r.addr) as i64),
                );
            } else {
                let dir = &mut slot.targets[usize::from(c.arch_taken)];
                match dir {
                    Some(t) => debug_assert_eq!(*t, c.target, "per-direction target is static"),
                    None => *dir = Some(c.target),
                }
            }
        }
        self.events += 1;
    }
}

// ------------------------------------------------------------- the trace

/// Backing storage of a trace's dynamic byte stream: an owned heap buffer
/// (live captures, legacy disk loads) or a borrowed window into a
/// memory-mapped `.vptrace` file (the zero-copy [`DiskTier`] load path —
/// the kernel's page cache is the only copy of the stream bytes).
pub(crate) enum StreamBytes {
    /// Heap-allocated stream (captures; platforms without mmap).
    Owned(Vec<u8>),
    /// Window into a shared read-only file mapping.
    Mapped {
        map: Arc<persist::mmap::MappedFile>,
        off: usize,
        len: usize,
    },
}

impl StreamBytes {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            StreamBytes::Owned(v) => v.as_slice(),
            StreamBytes::Mapped { map, off, len } => &map.as_slice()[*off..*off + *len],
        }
    }
}

impl std::ops::Deref for StreamBytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for StreamBytes {
    fn from(v: Vec<u8>) -> StreamBytes {
        StreamBytes::Owned(v)
    }
}

impl std::fmt::Debug for StreamBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamBytes::Owned(v) => write!(f, "StreamBytes::Owned({} bytes)", v.len()),
            StreamBytes::Mapped { len, .. } => write!(f, "StreamBytes::Mapped({len} bytes)"),
        }
    }
}

/// A recorded retired-instruction stream, replayable through any [`Sink`].
#[derive(Debug)]
pub struct CapturedTrace {
    slots: Vec<StaticSlot>,
    /// Derived column: fetch address per slot (return-target base in the
    /// decode parse pass). Kept out of [`StaticSlot`] so the parse pass
    /// touches an 8-byte array entry instead of a 120-byte slot record.
    slot_addr: Vec<u64>,
    /// Derived column: 1 where the slot's template is a return (the one
    /// record shape that carries an extra varint in the dynamic stream).
    slot_is_ret: Vec<u8>,
    /// Derived records backing the column decoder: one interleaved
    /// [`SlotCol`] per slot, so the per-event column split loads a single
    /// 48-byte record (one bounds check, one cache-line stream) instead of
    /// walking five parallel arrays.
    slot_cols: Vec<SlotCol>,
    stream: StreamBytes,
    stats: RunStats,
    events: u64,
}

/// Per-slot static halves of the [`ColumnBatch`] encoding, interleaved so
/// the column decoder touches one record per event. Fields mirror the
/// batch columns: `flags` is the template's static [`col`] bits (dynamic
/// `MEM`/`TAKEN`/`ARCH_TAKEN` come from the stream record), `exec` the
/// packed exec word, `mem` the static memory address (0 when none), `tgt`
/// the control auxiliary address per architectural direction
/// (`[targets[0], targets[1]]` for branches and jumps, the RAS return
/// address in both lanes for calls, zero for returns — their target is
/// decoded from the stream — and non-control slots).
#[derive(Debug, Clone, Copy)]
struct SlotCol {
    exec: u64,
    mem: u64,
    tgt: [u64; 2],
    addr: u64,
    flags: u8,
    /// 1 where the slot is a return (carries an extra stream varint).
    is_ret: u8,
}

/// Reusable per-replay scratch backing the [`ColumnBatch`] views: one
/// allocation per replay, rewritten in place by the column decoder.
#[derive(Debug, Default)]
struct ColScratch {
    flags: Vec<u8>,
    addr: Vec<u64>,
    exec: Vec<u64>,
    mem: Vec<u64>,
    target: Vec<u64>,
}

impl ColScratch {
    fn with_capacity(n: usize) -> ColScratch {
        ColScratch {
            flags: vec![0; n],
            addr: vec![0; n],
            exec: vec![0; n],
            mem: vec![0; n],
            target: vec![0; n],
        }
    }
}

/// Decode position carried across chunk boundaries by the batched replay
/// kernel: byte offset into the stream plus the two delta-coding anchors.
#[derive(Debug)]
struct ReplayCursor {
    pos: usize,
    prev_idx: i64,
    last_mem: u64,
}

impl Default for ReplayCursor {
    fn default() -> ReplayCursor {
        ReplayCursor {
            pos: 0,
            prev_idx: -1,
            last_mem: 0,
        }
    }
}

impl CapturedTrace {
    /// Builds a trace from its encoded parts, deriving the per-slot decode
    /// columns (`slot_addr`, `slot_is_ret`) the SoA parse pass reads
    /// instead of the full slot records. The single constructor used by
    /// both live capture ([`TraceRecorder::finish`]) and disk decode.
    pub(crate) fn assemble(
        slots: Vec<StaticSlot>,
        stream: StreamBytes,
        stats: RunStats,
        events: u64,
    ) -> CapturedTrace {
        use crate::event::col;
        let slot_addr = slots.iter().map(|s| s.template.addr).collect();
        let slot_is_ret = slots
            .iter()
            .map(|s| u8::from(s.template.ctrl.as_ref().is_some_and(|c| c.is_ret)))
            .collect();
        // Static halves of the column encoding: the per-event decoder ORs
        // in the dynamic MEM/TAKEN/ARCH_TAKEN bits from the stream record.
        let slot_cols = slots
            .iter()
            .map(|s| SlotCol {
                exec: col::pack_exec(&s.template),
                mem: s.template.mem_addr.unwrap_or(0),
                tgt: match &s.template.ctrl {
                    // Consumer priority is COND → RET → CALL, so a call's
                    // lanes can carry its RAS return address: a call is
                    // never read through the COND lane selection.
                    Some(c) if c.is_ret => [0, 0],
                    Some(c) if !c.is_cond && c.is_call => [c.ret_addr; 2],
                    Some(_) => [s.targets[0].unwrap_or(0), s.targets[1].unwrap_or(0)],
                    None => [0, 0],
                },
                addr: s.template.addr,
                flags: col::pack_flags(&s.template) & !(col::TAKEN | col::ARCH_TAKEN),
                is_ret: u8::from(s.template.ctrl.as_ref().is_some_and(|c| c.is_ret)),
            })
            .collect();
        CapturedTrace {
            slots,
            slot_addr,
            slot_is_ret,
            slot_cols,
            stream,
            stats,
            events,
        }
    }

    /// Executes `program` once under `cfg`, recording the retired stream.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from the executor; nothing is recorded on
    /// error.
    pub fn capture(
        program: &Program,
        layout: &Layout,
        cfg: &RunConfig,
    ) -> Result<CapturedTrace, ExecError> {
        Self::capture_with(program, layout, cfg, &mut crate::event::NullSink)
    }

    /// Like [`CapturedTrace::capture`], but also feeds `sink` during the
    /// recording run, so first-time consumers do not pay a separate
    /// replay pass.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from the executor.
    pub fn capture_with(
        program: &Program,
        layout: &Layout,
        cfg: &RunConfig,
        sink: &mut impl Sink,
    ) -> Result<CapturedTrace, ExecError> {
        let mut rec = TraceRecorder::new();
        let stats = Executor::new(program, layout).run(&mut (&mut rec, sink), cfg)?;
        Ok(rec.finish(stats))
    }

    /// Replays the recorded stream into `sink`, reconstructing every
    /// [`Retired`] event bit-for-bit, and returns the original run's
    /// [`RunStats`].
    ///
    /// This is the batched front door: events are decoded into a reusable
    /// chunk buffer (`VP_REPLAY_BATCH` events per chunk, default
    /// [`DEFAULT_REPLAY_BATCH`]) and dispatched through
    /// [`Sink::retire_batch`], so per-event sink dispatch is amortized
    /// across the chunk. Event content and order are identical to
    /// [`CapturedTrace::replay_per_event`] at every chunk size.
    pub fn replay(&self, sink: &mut impl Sink) -> RunStats {
        let batch = replay_batch_from_env(sink.wants_columns());
        self.replay_batched(sink, batch)
    }

    /// Like [`CapturedTrace::replay`], with an explicit chunk size instead
    /// of the `VP_REPLAY_BATCH` environment knob. `batch` is clamped to at
    /// least 1.
    pub fn replay_batched(&self, sink: &mut impl Sink, batch: usize) -> RunStats {
        REPLAYS.incr();
        if self.stream.is_empty() {
            return self.stats;
        }
        // Every event consumes at least one stream byte, so `stream.len()`
        // bounds the events a replay can ever produce: oversized chunk
        // requests (`VP_REPLAY_BATCH=999999999`) degrade to a single
        // right-sized buffer instead of an absurd allocation.
        let batch = batch.clamp(1, self.stream.len());
        let mut cur = ReplayCursor::default();
        if sink.wants_columns() {
            // Column form. When every member of the sink composition reads
            // only columns, the struct materialization is skipped entirely
            // and the `events` view stays empty.
            let cols_only = sink.columns_only();
            let mut cols = ColScratch::with_capacity(batch);
            let mut buf: Vec<Retired> = if cols_only {
                Vec::new()
            } else {
                vec![self.slots[0].template; batch]
            };
            while cur.pos < self.stream.len() {
                let n = if cols_only {
                    self.decode_chunk_cols::<false>(&mut cur, &mut buf, &mut cols)
                } else {
                    self.decode_chunk_cols::<true>(&mut cur, &mut buf, &mut cols)
                };
                sink.retire_columns(&crate::ColumnBatch {
                    events: if cols_only { &[] } else { &buf[..n] },
                    flags: &cols.flags[..n],
                    addr: &cols.addr[..n],
                    exec: &cols.exec[..n],
                    mem: &cols.mem[..n],
                    target: &cols.target[..n],
                });
            }
            return self.stats;
        }
        // The chunk buffer is allocated once per replay and written in
        // place by the decoder; the filler template is never observed
        // (only `buf[..n]` decoded events reach the sink).
        let mut buf: Vec<Retired> = vec![self.slots[0].template; batch];
        while cur.pos < self.stream.len() {
            let n = self.decode_chunk(&mut cur, &mut buf);
            sink.retire_batch(&buf[..n]);
        }
        self.stats
    }

    /// Decodes up to `buf.len()` events at `cur` into `buf`, advancing the
    /// cursor past the consumed bytes. Returns the number of events
    /// decoded.
    ///
    /// The kernel is structured around the trace's SoA split: the serial
    /// parse work reads only the byte stream and the two compact per-slot
    /// columns ([`CapturedTrace::slot_is_ret`], [`CapturedTrace::slot_addr`]),
    /// never a >100-byte [`StaticSlot`] record, so the cross-event
    /// dependency chain (stream position, slot index, memory anchor) runs
    /// out of a few cache lines. Materialization — the 80-byte template
    /// copy plus patches — hangs off that chain as pure dataflow. On top
    /// of this, runs of 1-byte straight-line records are detected by
    /// scanning the stream and expanded in a dedicated tight copy loop
    /// with no per-event parse at all (see the comment in the body).
    fn decode_chunk(&self, cur: &mut ReplayCursor, buf: &mut [Retired]) -> usize {
        let stream = self.stream.as_slice();
        let slot_is_ret = self.slot_is_ret.as_slice();
        let slot_addr = self.slot_addr.as_slice();
        let mut pos = cur.pos;
        let mut prev_idx = cur.prev_idx;
        let mut last_mem = cur.last_mem;
        let mut n = 0;

        let slots = self.slots.as_slice();
        for out in buf.iter_mut() {
            if pos >= stream.len() {
                break;
            }
            // Parse: resolve this record's deltas against the cursor
            // anchors, reading only stream bytes and the compact per-slot
            // columns. Crucially, the stream position for the *next*
            // record depends on whether this slot is a return
            // (`slot_is_ret`) — sourcing that from the 1-byte column keeps
            // the serial decode chain inside a few cache lines instead of
            // chaining through a >100-byte slot record per event.
            let flags = stream[pos];
            pos += 1;
            let idx = if flags & FLAG_SEQ != 0 {
                prev_idx + 1
            } else {
                prev_idx + 1 + unzigzag(get_varint(stream, &mut pos))
            };
            prev_idx = idx;
            let s = idx as usize;
            let mem = if flags & FLAG_MEM != 0 {
                last_mem = last_mem.wrapping_add(unzigzag(get_varint(stream, &mut pos)) as u64);
                last_mem
            } else {
                0
            };
            let tgt = if slot_is_ret[s] != 0 {
                slot_addr[s].wrapping_add(unzigzag(get_varint(stream, &mut pos)) as u64)
            } else {
                0
            };

            // Materialize: expand the parsed fields into the 80-byte
            // event. Nothing below feeds back into the parse chain, so
            // the slot load, template copy, and patch stores retire
            // behind the next iterations' parsing.
            let slot = &slots[s];
            *out = slot.template;
            if flags & FLAG_MEM != 0 {
                out.mem_addr = Some(mem);
            }
            if let Some(c) = &mut out.ctrl {
                c.arch_taken = flags & FLAG_ARCH_TAKEN != 0;
                c.taken = flags & FLAG_TAKEN != 0;
                c.target = if c.is_ret {
                    tgt
                } else {
                    slot.targets[usize::from(c.arch_taken)]
                        .expect("observed direction has a recorded target")
                };
            }
            n += 1;
        }

        cur.pos = pos;
        cur.prev_idx = prev_idx;
        cur.last_mem = last_mem;
        n
    }

    /// Like [`CapturedTrace::decode_chunk`], but additionally splits the
    /// chunk into the flat [`ColumnBatch`] scratch columns. The parse chain
    /// is identical; the extra work per event is five column stores whose
    /// values are already in registers (dynamic stream bits) or come from
    /// the single interleaved [`SlotCol`] record derived once in
    /// [`CapturedTrace::assemble`] — one extra load per event, no
    /// slot-record traffic. All five output columns are re-sliced to a
    /// common length up front so the per-event stores compile without
    /// bounds checks.
    ///
    /// With `EVENTS = false` (a columns-only sink composition) the struct
    /// materialization is compiled out and `buf` may be empty; the chunk
    /// size then comes from the column scratch capacity.
    fn decode_chunk_cols<const EVENTS: bool>(
        &self,
        cur: &mut ReplayCursor,
        buf: &mut [Retired],
        cols: &mut ColScratch,
    ) -> usize {
        use crate::event::col;
        // The dynamic column bits are chosen to coincide with the stream
        // record's flag bits, so the dynamic half of the flag byte is a
        // single mask of the record byte.
        const _: () = assert!(
            col::MEM == FLAG_MEM && col::ARCH_TAKEN == FLAG_ARCH_TAKEN && col::TAKEN == FLAG_TAKEN
        );
        const DYN_MASK: u8 = FLAG_MEM | FLAG_ARCH_TAKEN | FLAG_TAKEN;

        let stream = self.stream.as_slice();
        let slot_cols = self.slot_cols.as_slice();
        let mut pos = cur.pos;
        let mut prev_idx = cur.prev_idx;
        let mut last_mem = cur.last_mem;
        let mut n = 0;
        let max = cols.flags.len();
        let out_flags = &mut cols.flags[..max];
        let out_addr = &mut cols.addr[..max];
        let out_exec = &mut cols.exec[..max];
        let out_mem = &mut cols.mem[..max];
        let out_tgt = &mut cols.target[..max];
        let buf = if EVENTS { &mut buf[..max] } else { buf };

        let slots = self.slots.as_slice();
        while n < max {
            if pos >= stream.len() {
                break;
            }
            // Parse: identical serial chain to `decode_chunk`, with the
            // slot columns sourced from the one interleaved record.
            let flags = stream[pos];
            pos += 1;
            let idx = if flags & FLAG_SEQ != 0 {
                prev_idx + 1
            } else {
                prev_idx + 1 + unzigzag(get_varint(stream, &mut pos))
            };
            prev_idx = idx;
            let s = idx as usize;
            let sc = &slot_cols[s];
            let mem = if flags & FLAG_MEM != 0 {
                last_mem = last_mem.wrapping_add(unzigzag(get_varint(stream, &mut pos)) as u64);
                last_mem
            } else {
                sc.mem
            };
            let is_ret = sc.is_ret != 0;
            let tgt = if is_ret {
                sc.addr
                    .wrapping_add(unzigzag(get_varint(stream, &mut pos)) as u64)
            } else {
                sc.tgt[usize::from(flags & FLAG_ARCH_TAKEN != 0)]
            };

            // Column split: everything below is pure dataflow off the
            // parse chain.
            out_flags[n] = sc.flags | (flags & DYN_MASK);
            out_addr[n] = sc.addr;
            out_exec[n] = sc.exec;
            out_mem[n] = mem;
            out_tgt[n] = tgt;

            // Materialize the struct form for column-oblivious members of
            // a composed sink, exactly as `decode_chunk` does.
            if EVENTS {
                let slot = &slots[s];
                let out = &mut buf[n];
                *out = slot.template;
                if flags & FLAG_MEM != 0 {
                    out.mem_addr = Some(mem);
                }
                if let Some(c) = &mut out.ctrl {
                    c.arch_taken = flags & FLAG_ARCH_TAKEN != 0;
                    c.taken = flags & FLAG_TAKEN != 0;
                    c.target = if c.is_ret {
                        tgt
                    } else {
                        slot.targets[usize::from(c.arch_taken)]
                            .expect("observed direction has a recorded target")
                    };
                }
            }
            n += 1;
        }

        cur.pos = pos;
        cur.prev_idx = prev_idx;
        cur.last_mem = last_mem;
        n
    }

    /// Replays the stream as per-event [`ColEvent`](crate::ColEvent) records through `f`,
    /// fusing decode with the consumer in a single loop.
    ///
    /// The decoder's serial chain (stream position, slot index, memory
    /// anchor) and a typical consumer's state chains are independent per
    /// event, so inlining the consumer into the decode loop lets the host
    /// overlap them — where the chunked [`CapturedTrace::replay`] pays the
    /// decode and consume chains additively across alternating loops —
    /// and the column values flow through registers with no scratch-column
    /// round trip. Event values and order are identical to the column
    /// views [`Sink::retire_columns`] receives (pinned by tests).
    ///
    /// Returns the original run's [`RunStats`], like every replay entry
    /// point.
    pub fn replay_events_with<F: FnMut(crate::ColEvent)>(&self, mut f: F) -> RunStats {
        use crate::event::col;
        const _: () = assert!(
            col::MEM == FLAG_MEM && col::ARCH_TAKEN == FLAG_ARCH_TAKEN && col::TAKEN == FLAG_TAKEN
        );
        const DYN_MASK: u8 = FLAG_MEM | FLAG_ARCH_TAKEN | FLAG_TAKEN;
        REPLAYS.incr();

        let stream = self.stream.as_slice();
        let slot_cols = self.slot_cols.as_slice();
        let mut pos = 0usize;
        let mut prev_idx: i64 = -1;
        let mut last_mem = 0u64;
        while pos < stream.len() {
            // Parse: identical serial chain to `decode_chunk_cols`.
            let flags = stream[pos];
            pos += 1;
            let idx = if flags & FLAG_SEQ != 0 {
                prev_idx + 1
            } else {
                prev_idx + 1 + unzigzag(get_varint(stream, &mut pos))
            };
            prev_idx = idx;
            let s = idx as usize;
            let sc = &slot_cols[s];
            let mem = if flags & FLAG_MEM != 0 {
                last_mem = last_mem.wrapping_add(unzigzag(get_varint(stream, &mut pos)) as u64);
                last_mem
            } else {
                sc.mem
            };
            let target = if sc.is_ret != 0 {
                sc.addr
                    .wrapping_add(unzigzag(get_varint(stream, &mut pos)) as u64)
            } else {
                sc.tgt[usize::from(flags & FLAG_ARCH_TAKEN != 0)]
            };
            f(crate::ColEvent {
                flags: sc.flags | (flags & DYN_MASK),
                addr: sc.addr,
                exec: sc.exec,
                mem,
                target,
            });
        }
        self.stats
    }

    /// Replays one event at a time through [`Sink::retire`] — the
    /// pre-batching decoder, kept as the reference implementation for
    /// bit-exactness tests and as the baseline the replay-throughput bench
    /// reports against.
    pub fn replay_per_event(&self, sink: &mut impl Sink) -> RunStats {
        REPLAYS.incr();
        let mut pos = 0usize;
        let mut prev_idx: i64 = -1;
        let mut last_mem = 0u64;
        while pos < self.stream.len() {
            let flags = self.stream[pos];
            pos += 1;
            let idx = if flags & FLAG_SEQ != 0 {
                prev_idx + 1
            } else {
                prev_idx + 1 + unzigzag(get_varint(&self.stream, &mut pos))
            };
            prev_idx = idx;
            let slot = &self.slots[idx as usize];
            let mut ev = slot.template;
            if flags & FLAG_MEM != 0 {
                last_mem =
                    last_mem.wrapping_add(unzigzag(get_varint(&self.stream, &mut pos)) as u64);
                ev.mem_addr = Some(last_mem);
            }
            if let Some(c) = &mut ev.ctrl {
                c.arch_taken = flags & FLAG_ARCH_TAKEN != 0;
                c.taken = flags & FLAG_TAKEN != 0;
                c.target = if c.is_ret {
                    ev.addr
                        .wrapping_add(unzigzag(get_varint(&self.stream, &mut pos)) as u64)
                } else {
                    slot.targets[usize::from(c.arch_taken)]
                        .expect("observed direction has a recorded target")
                };
            }
            sink.retire(&ev);
        }
        self.stats
    }

    /// The recorded run's summary statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Number of retired instructions recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Approximate resident size of the capture in bytes.
    pub fn bytes(&self) -> usize {
        self.stream.len() + self.slots.len() * std::mem::size_of::<StaticSlot>()
    }
}

// --------------------------------------------------------------- the key

/// Cache key for a capture: which workload ran, a structural fingerprint
/// of the program *and* its layout, the [`RunConfig`] limits, and a
/// *variant* distinguishing rewritten flavors of the same workload.
///
/// The fingerprint hashes every block's instruction count and laid-out
/// address, so regenerating the same workload (same builder, same scale)
/// maps to the same key while any structural or layout change misses.
/// The variant is 0 for the original binary; packed binaries use the
/// package-set fingerprint ([`TraceKey::packed`]), so the original and
/// each packed flavor of one workload coexist in the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Workload label, e.g. `"300.twolf A"`.
    pub workload: String,
    /// Structural checksum of (program, layout).
    pub fingerprint: u64,
    /// Rewrite variant: 0 for the original binary, the package-set
    /// fingerprint for a packed binary.
    pub variant: u64,
    /// [`RunConfig::max_insts`] of the run.
    pub max_insts: u64,
    /// [`RunConfig::max_depth`] of the run.
    pub max_depth: u64,
}

impl TraceKey {
    /// Builds the key for running `program` under `layout` and `cfg`.
    pub fn new(workload: &str, program: &Program, layout: &Layout, cfg: &RunConfig) -> TraceKey {
        // FNV-1a over the structural outline; cheap relative to one run.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(program.funcs.len() as u64);
        mix(u64::from(program.entry.0));
        for (fi, f) in program.funcs.iter().enumerate() {
            mix(f.blocks.len() as u64);
            for (bi, b) in f.blocks.iter().enumerate() {
                mix(b.insts.len() as u64);
                mix(layout.addr_of(vp_isa::CodeRef::new(fi as u32, bi as u32)));
            }
        }
        TraceKey {
            workload: workload.to_string(),
            fingerprint: h,
            variant: 0,
            max_insts: cfg.max_insts,
            max_depth: cfg.max_depth as u64,
        }
    }

    /// Builds the key for a *packed* flavor of `workload`: same structural
    /// fingerprinting over the rewritten `program`/`layout`, tagged with
    /// the package-set fingerprint so packed captures never alias the
    /// original's (or another configuration's) cache entries.
    pub fn packed(
        workload: &str,
        program: &Program,
        layout: &Layout,
        cfg: &RunConfig,
        package_fingerprint: u64,
    ) -> TraceKey {
        TraceKey {
            variant: package_fingerprint,
            ..TraceKey::new(workload, program, layout, cfg)
        }
    }
}

// ------------------------------------------------------------- the store

struct StoreEntry {
    trace: Arc<CapturedTrace>,
    last_used: u64,
}

struct StoreInner {
    map: FxHashMap<TraceKey, StoreEntry>,
    clock: u64,
    bytes: usize,
}

/// Terminal state of one in-flight capture, shared with every thread that
/// requested the same [`TraceKey`] while it ran.
#[derive(Clone)]
enum FlightOutcome {
    /// The leader captured successfully; waiters replay this trace.
    Done(Arc<CapturedTrace>),
    /// The leader's execution failed; waiters propagate the same error.
    Failed(ExecError),
    /// The leader panicked or unwound without completing; waiters re-run
    /// the lookup and one of them becomes the new leader.
    Cancelled,
}

/// Single-flight rendezvous: the first thread to miss on a key becomes the
/// *leader* and executes; every other thread blocks here until the leader
/// publishes an outcome.
struct Flight {
    state: Mutex<Option<FlightOutcome>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> FlightOutcome {
        let mut state = self.state.lock().expect("trace flight");
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.cv.wait(state).expect("trace flight");
        }
    }

    fn complete(&self, outcome: FlightOutcome) {
        *self.state.lock().expect("trace flight") = Some(outcome);
        self.cv.notify_all();
    }
}

/// Completes a leader's flight as `Cancelled` if the leader unwinds (e.g.
/// a panic inside the executor) before publishing a real outcome, so
/// waiters never deadlock on an abandoned capture.
struct FlightGuard<'a> {
    store: &'a TraceStore,
    key: &'a TraceKey,
    flight: Arc<Flight>,
    done: bool,
}

impl FlightGuard<'_> {
    fn finish(mut self, outcome: FlightOutcome) {
        self.flight.complete(outcome);
        self.store
            .flights
            .lock()
            .expect("trace flights")
            .remove(self.key);
        self.done = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.flight.complete(FlightOutcome::Cancelled);
            self.store
                .flights
                .lock()
                .expect("trace flights")
                .remove(self.key);
        }
    }
}

/// A bounded, thread-safe cache of [`CapturedTrace`]s keyed by
/// [`TraceKey`], with least-recently-used eviction, an optional on-disk
/// persistence tier ([`DiskTier`]), and single-flight deduplication of
/// concurrent captures.
pub struct TraceStore {
    cap_bytes: usize,
    disk: Option<DiskTier>,
    inner: Mutex<StoreInner>,
    flights: Mutex<FxHashMap<TraceKey, Arc<Flight>>>,
    /// Entry count and resident bytes packed into one word
    /// (`entries << OCC_BYTES_BITS | bytes`), republished by every
    /// mutator while it still holds the `inner` lock. Observers read the
    /// pair in a single atomic load — consistent *and* contention-free,
    /// so the sweep's per-cell feed events never queue behind a capture
    /// inserting under the store lock.
    occupancy: AtomicU64,
}

/// Low bits of [`TraceStore::occupancy`] holding resident bytes (16 TiB
/// of headroom); the entry count lives above.
const OCC_BYTES_BITS: u32 = 44;

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("cap_bytes", &self.cap_bytes)
            .field("resident_bytes", &self.resident_bytes())
            .field("len", &self.len())
            .field("disk", &self.disk)
            .finish()
    }
}

/// Parses a `VP_TRACE_CACHE_MB`-style value; `None`/unparsable falls back
/// to [`DEFAULT_CACHE_MB`].
fn cache_mb_from(spec: Option<&str>) -> usize {
    spec.and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_CACHE_MB)
}

impl TraceStore {
    /// Creates a store bounded to `cap_bytes` of encoded trace data.
    pub fn new(cap_bytes: usize) -> TraceStore {
        TraceStore {
            cap_bytes,
            disk: None,
            inner: Mutex::new(StoreInner {
                map: FxHashMap::default(),
                clock: 0,
                bytes: 0,
            }),
            flights: Mutex::new(FxHashMap::default()),
            occupancy: AtomicU64::new(0),
        }
    }

    /// Republishes the packed occupancy word. Callers must hold the
    /// `inner` lock (enforced by taking the guard's target), which
    /// serializes writers; readers never take the lock.
    fn publish_occupancy(&self, inner: &StoreInner) {
        debug_assert!((inner.bytes as u64) < 1 << OCC_BYTES_BITS);
        let packed = ((inner.map.len() as u64) << OCC_BYTES_BITS) | inner.bytes as u64;
        self.occupancy.store(packed, Ordering::Release);
    }

    /// Creates a store bounded to `mb` megabytes.
    pub fn with_capacity_mb(mb: usize) -> TraceStore {
        TraceStore::new(mb * 1024 * 1024)
    }

    /// Attaches (or removes) the on-disk persistence tier. Lookups then
    /// resolve memory-hit → disk-hit (load + promote) → live capture, and
    /// every insert is written through to disk.
    pub fn with_disk(mut self, disk: Option<DiskTier>) -> TraceStore {
        self.disk = disk;
        self
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<&DiskTier> {
        self.disk.as_ref()
    }

    /// Whether caching is fully disabled (`VP_TRACE_CACHE_MB=0` and no
    /// disk tier): [`TraceStore::capture_or_replay`] then executes
    /// directly, without paying any recording cost.
    pub fn caching_disabled(&self) -> bool {
        self.cap_bytes == 0 && self.disk.is_none()
    }

    /// The process-wide store used by the experiment harness, sized from
    /// `VP_TRACE_CACHE_MB` (default 512) at first use, with the disk tier
    /// attached when `VP_TRACE_DIR` is set (budget `VP_TRACE_DISK_MB`,
    /// default 2048).
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            TraceStore::with_capacity_mb(cache_mb_from(
                std::env::var("VP_TRACE_CACHE_MB").ok().as_deref(),
            ))
            .with_disk(DiskTier::from_env())
        })
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &TraceKey) -> Option<Arc<CapturedTrace>> {
        let mut inner = self.inner.lock().expect("trace store");
        inner.clock += 1;
        let clock = inner.clock;
        let hit = inner.map.get_mut(key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.trace)
        });
        if let Some(trace) = &hit {
            HITS.incr();
            // Flight payload: (trace bytes, event count).
            vp_trace::flight("trace_store.hit", trace.bytes() as u64, trace.events);
        }
        hit
    }

    /// Looks `key` up across both tiers: a memory hit refreshes recency;
    /// a disk hit loads, verifies, promotes into the memory tier, and
    /// counts as `trace_store.disk_hits`.
    pub fn fetch(&self, key: &TraceKey) -> Option<Arc<CapturedTrace>> {
        if let Some(trace) = self.get(key) {
            return Some(trace);
        }
        let loaded = Arc::new(self.disk.as_ref()?.load(key)?);
        // Promote without writing back: the file we just read is current.
        self.insert_memory(key.clone(), Arc::clone(&loaded));
        Some(loaded)
    }

    /// Inserts a capture, evicting least-recently-used entries until the
    /// byte budget holds, and writes it through to the disk tier when one
    /// is attached. A capture larger than the whole memory budget is not
    /// cached in memory (callers keep their `Arc`; later requests fall
    /// back to disk or re-execute), but is still persisted — the two
    /// tiers budget independently.
    pub fn insert(&self, key: TraceKey, trace: Arc<CapturedTrace>) {
        if let Some(disk) = &self.disk {
            if let Err(e) = disk.store(&key, &trace) {
                eprintln!(
                    "vp-exec: failed to persist trace for {:?} under {}: {e}",
                    key.workload,
                    disk.root().display()
                );
            }
        }
        self.insert_memory(key, trace);
    }

    fn insert_memory(&self, key: TraceKey, trace: Arc<CapturedTrace>) {
        let size = trace.bytes();
        if size > self.cap_bytes {
            return;
        }
        let mut inner = self.inner.lock().expect("trace store");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.trace.bytes();
        }
        while inner.bytes + size > self.cap_bytes {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.trace.bytes();
                EVICTIONS.incr();
                // Flight payload: (evicted bytes, resident bytes after).
                vp_trace::flight(
                    "trace_store.evict",
                    e.trace.bytes() as u64,
                    inner.bytes as u64,
                );
            }
        }
        inner.bytes += size;
        inner.map.insert(
            key,
            StoreEntry {
                trace,
                last_used: clock,
            },
        );
        self.publish_occupancy(&inner);
    }

    /// Replays `key`'s capture into `sink` if cached (memory or disk);
    /// otherwise executes `program` once with the recorder (and `sink`)
    /// attached and caches the result in both tiers. Returns the run's
    /// stats either way.
    ///
    /// Concurrent calls for the same key are deduplicated: exactly one
    /// thread executes (the *leader*), the rest block and then replay the
    /// leader's capture, so an N-way sweep over one workload pays one
    /// interpretation, not N.
    ///
    /// When caching is fully disabled ([`TraceStore::caching_disabled`]),
    /// the program executes directly with no recorder attached — the
    /// recording cost is only paid when the capture can be kept.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from a capture run; failed runs are never
    /// cached.
    pub fn capture_or_replay(
        &self,
        key: TraceKey,
        program: &Program,
        layout: &Layout,
        cfg: &RunConfig,
        sink: &mut impl Sink,
    ) -> Result<RunStats, ExecError> {
        if self.caching_disabled() {
            return Executor::new(program, layout).run(sink, cfg);
        }
        self.capture_or_replay_shared(key, program, layout, cfg, sink)
            .map(|(_, stats)| stats)
    }

    /// Like [`TraceStore::capture_or_replay`], but also hands back the
    /// shared capture so the caller can replay it into further consumers
    /// (this is how `vp_metrics::profile` derives baseline timing without
    /// re-executing). Because the caller keeps the trace, this records
    /// even when caching is disabled.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from a capture run.
    pub fn capture_or_replay_shared(
        &self,
        key: TraceKey,
        program: &Program,
        layout: &Layout,
        cfg: &RunConfig,
        sink: &mut impl Sink,
    ) -> Result<(Arc<CapturedTrace>, RunStats), ExecError> {
        loop {
            if let Some(trace) = self.fetch(&key) {
                let stats = trace.replay(sink);
                return Ok((trace, stats));
            }

            let flight = {
                let mut flights = self.flights.lock().expect("trace flights");
                match flights.get(&key) {
                    Some(f) => Some(Arc::clone(f)),
                    None => {
                        flights.insert(key.clone(), Arc::new(Flight::new()));
                        None
                    }
                }
            };

            match flight {
                // Another thread is already capturing this key: wait for
                // its outcome and replay.
                Some(flight) => match flight.wait() {
                    FlightOutcome::Done(trace) => {
                        let stats = trace.replay(sink);
                        return Ok((trace, stats));
                    }
                    FlightOutcome::Failed(e) => return Err(e),
                    FlightOutcome::Cancelled => continue,
                },
                // We are the leader: execute once while recording, feeding
                // `sink` live, then publish for the waiters.
                None => {
                    let flight = Arc::clone(
                        self.flights
                            .lock()
                            .expect("trace flights")
                            .get(&key)
                            .expect("leader flight registered"),
                    );
                    let guard = FlightGuard {
                        store: self,
                        key: &key,
                        flight,
                        done: false,
                    };
                    // Re-check under flight ownership: a racing leader may
                    // have completed between our fetch miss and takeover.
                    if let Some(trace) = self.get(&key) {
                        let stats = trace.replay(sink);
                        guard.finish(FlightOutcome::Done(Arc::clone(&trace)));
                        return Ok((trace, stats));
                    }
                    match CapturedTrace::capture_with(program, layout, cfg, sink) {
                        Ok(trace) => {
                            let trace = Arc::new(trace);
                            let stats = trace.stats();
                            self.insert(key.clone(), Arc::clone(&trace));
                            guard.finish(FlightOutcome::Done(Arc::clone(&trace)));
                            return Ok((trace, stats));
                        }
                        Err(e) => {
                            guard.finish(FlightOutcome::Failed(e.clone()));
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Number of cached captures.
    pub fn len(&self) -> usize {
        self.snapshot().entries
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident across all cached captures.
    pub fn resident_bytes(&self) -> usize {
        self.snapshot().resident_bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// One consistent view of the store's occupancy, without taking the
    /// store lock.
    ///
    /// Periodic observers (the sweep's per-cell live-feed events, the
    /// `sweep watch` resident-bytes row) want entries and bytes from the
    /// *same instant*; calling [`TraceStore::len`] and
    /// [`TraceStore::resident_bytes`] back to back can interleave with a
    /// concurrent insert or eviction between the two reads. Both values
    /// come from one atomic load of the packed occupancy word that
    /// mutators republish under the lock, so a snapshot is always a state
    /// the store actually passed through — and a feed event emitted from
    /// a worker's `cell.done` path no longer queues behind a concurrent
    /// capture holding the store lock through an eviction scan.
    pub fn snapshot(&self) -> StoreSnapshot {
        let packed = self.occupancy.load(Ordering::Acquire);
        StoreSnapshot {
            entries: (packed >> OCC_BYTES_BITS) as usize,
            resident_bytes: (packed & ((1 << OCC_BYTES_BITS) - 1)) as usize,
            capacity_bytes: self.cap_bytes,
        }
    }

    /// Drops every cached capture.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace store");
        inner.map.clear();
        inner.bytes = 0;
        self.publish_occupancy(&inner);
    }
}

/// A point-in-time view of a [`TraceStore`]'s occupancy
/// ([`TraceStore::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Cached captures resident in memory.
    pub entries: usize,
    /// Bytes held by those captures.
    pub resident_bytes: usize,
    /// The configured in-memory byte budget.
    pub capacity_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::InstCounts;
    use vp_isa::{Cond, Reg, Src};
    use vp_program::ProgramBuilder;

    pub(crate) fn sample_program() -> (Program, Layout) {
        let mut pb = ProgramBuilder::new();
        let table = pb.data(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let callee = pb.declare("callee");
        pb.define(callee, |f| {
            f.mul(Reg::ARG0, Reg::ARG0, Reg::ARG0);
            f.ret();
        });
        let main = pb.declare("main");
        pb.define(main, |f| {
            let i = Reg::int(20);
            let acc = Reg::int(21);
            let base = Reg::int(22);
            f.li(acc, 0);
            f.li(base, table as i64);
            f.for_range(i, 0, 8, |f| {
                let v = Reg::int(23);
                f.alu(vp_isa::AluOp::Shl, v, i, Src::Imm(3));
                f.add(v, v, base);
                f.load(v, v, 0);
                let c = f.cond(Cond::Lt, v, Src::Imm(4));
                f.if_else(c, |f| f.add(acc, acc, v), |f| f.store(v, base, 0));
            });
            f.call_args(callee, &[Src::Imm(7)]);
            f.halt();
        });
        pb.set_entry(main);
        let p = pb.build();
        let layout = Layout::natural(&p);
        (p, layout)
    }

    /// Collects every replayed event verbatim.
    #[derive(Default)]
    struct Collect(Vec<Retired>);
    impl Sink for Collect {
        fn retire(&mut self, r: &Retired) {
            self.0.push(*r);
        }
    }

    #[test]
    fn replay_reproduces_stream_exactly() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let mut live = Collect::default();
        let stats = Executor::new(&p, &layout).run(&mut live, &cfg).unwrap();

        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let mut replayed = Collect::default();
        let rstats = trace.replay(&mut replayed);

        assert_eq!(stats, rstats);
        assert_eq!(live.0.len(), replayed.0.len());
        for (a, b) in live.0.iter().zip(&replayed.0) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn batched_replay_matches_per_event_at_every_chunking() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();

        let mut reference = Collect::default();
        let ref_stats = trace.replay_per_event(&mut reference);

        // Degenerate (1), a non-divisor that straddles chunk boundaries,
        // a power of two, and larger-than-the-trace.
        for batch in [1, 7, 64, usize::MAX / 2] {
            let mut got = Collect::default();
            let stats = trace.replay_batched(&mut got, batch);
            assert_eq!(stats, ref_stats, "batch={batch}: stats diverged");
            assert_eq!(got.0, reference.0, "batch={batch}: events diverged");
        }
        // `batch = 0` is clamped, not a panic or an empty replay.
        let mut got = Collect::default();
        trace.replay_batched(&mut got, 0);
        assert_eq!(got.0, reference.0);
    }

    #[test]
    fn replay_batch_env_parsing() {
        assert_eq!(parse_replay_batch(None, false), DEFAULT_REPLAY_BATCH);
        assert_eq!(parse_replay_batch(None, true), DEFAULT_REPLAY_BATCH_COLS);
        assert_eq!(parse_replay_batch(Some("1"), false), 1);
        assert_eq!(parse_replay_batch(Some(" 512 "), true), 512);
        assert_eq!(parse_replay_batch(Some("0"), false), DEFAULT_REPLAY_BATCH);
        assert_eq!(
            parse_replay_batch(Some("junk"), true),
            DEFAULT_REPLAY_BATCH_COLS
        );
    }

    #[test]
    fn capture_with_feeds_sink_during_recording() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let mut counts = InstCounts::new();
        let trace = CapturedTrace::capture_with(&p, &layout, &cfg, &mut counts).unwrap();
        assert_eq!(counts.total, trace.stats().retired);
        assert_eq!(trace.events(), trace.stats().retired);
    }

    #[test]
    fn encoding_meets_byte_budget() {
        // The budget is amortized: the static side-table is bounded by the
        // program's static size, so the run must be long enough for the
        // dynamic stream to dominate — as any real workload is.
        let mut pb = ProgramBuilder::new();
        let table = pb.data(vec![0; 64]);
        pb.func("main", |f| {
            let i = Reg::int(20);
            let b = Reg::int(21);
            let v = Reg::int(22);
            f.li(b, table as i64);
            f.for_range(i, 0, 2000, |f| {
                f.alu(vp_isa::AluOp::And, v, i, Src::Imm(63));
                f.alu(vp_isa::AluOp::Shl, v, v, Src::Imm(3));
                f.add(v, v, b);
                f.load(v, v, 0);
                f.store(v, b, 0);
            });
            f.halt();
        });
        let p = pb.build();
        let layout = Layout::natural(&p);
        let trace = CapturedTrace::capture(&p, &layout, &RunConfig::default()).unwrap();
        assert!(
            trace.bytes() as u64 <= 8 * trace.events(),
            "{} bytes for {} events",
            trace.bytes(),
            trace.events()
        );
    }

    #[test]
    fn store_hits_and_replays_equivalently() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let store = TraceStore::with_capacity_mb(4);
        let key = TraceKey::new("sample", &p, &layout, &cfg);

        let mut first = InstCounts::new();
        store
            .capture_or_replay(key.clone(), &p, &layout, &cfg, &mut first)
            .unwrap();
        assert_eq!(store.len(), 1);

        let mut second = InstCounts::new();
        store
            .capture_or_replay(key, &p, &layout, &cfg, &mut second)
            .unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn store_evicts_lru_under_pressure() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let trace = Arc::new(CapturedTrace::capture(&p, &layout, &cfg).unwrap());
        let one = trace.bytes();
        // Room for exactly two captures.
        let store = TraceStore::new(2 * one + 1);
        for label in ["a", "b", "c"] {
            store.insert(TraceKey::new(label, &p, &layout, &cfg), Arc::clone(&trace));
        }
        assert_eq!(store.len(), 2, "third insert evicts the oldest");
        assert!(store.resident_bytes() <= store.capacity_bytes());
        assert!(store.get(&TraceKey::new("a", &p, &layout, &cfg)).is_none());
        assert!(store.get(&TraceKey::new("c", &p, &layout, &cfg)).is_some());
    }

    #[test]
    fn oversized_capture_is_not_cached() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let store = TraceStore::new(16);
        let mut sink = crate::event::NullSink;
        store
            .capture_or_replay(
                TraceKey::new("big", &p, &layout, &cfg),
                &p,
                &layout,
                &cfg,
                &mut sink,
            )
            .unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn key_distinguishes_config_and_structure() {
        let (p, layout) = sample_program();
        let base = RunConfig::default();
        let limited = RunConfig {
            max_insts: 10,
            ..base
        };
        let k1 = TraceKey::new("w", &p, &layout, &base);
        let k2 = TraceKey::new("w", &p, &layout, &limited);
        assert_ne!(k1, k2);
        assert_eq!(k1, TraceKey::new("w", &p, &layout, &base));
    }

    #[test]
    fn zero_budget_disables_caching_without_recording() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let store = TraceStore::with_capacity_mb(0);
        assert!(store.caching_disabled());

        let mut direct = InstCounts::new();
        let direct_stats = Executor::new(&p, &layout).run(&mut direct, &cfg).unwrap();

        let ((), report) = vp_trace::scoped(|| {
            for _ in 0..2 {
                let key = TraceKey::new("w", &p, &layout, &cfg);
                let mut counts = InstCounts::new();
                let stats = store
                    .capture_or_replay(key, &p, &layout, &cfg, &mut counts)
                    .unwrap();
                assert_eq!(stats, direct_stats);
                assert_eq!(counts, direct);
            }
        });
        // The old behaviour captured (paying the recording cost) and then
        // failed to cache; now the run executes with no recorder at all.
        assert_eq!(report.counter("trace_store.captures"), 0);
        assert_eq!(report.counter("trace_store.replays"), 0);
        assert_eq!(report.counter("trace_store.evictions"), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn zero_memory_budget_still_uses_disk_tier() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let dir = std::env::temp_dir().join(format!("vptrace-test-{}-mem0", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::with_capacity_mb(0)
            .with_disk(Some(DiskTier::new(&dir, 64 * 1024 * 1024).unwrap()));
        assert!(!store.caching_disabled());

        let ((), report) = vp_trace::scoped(|| {
            for _ in 0..2 {
                let key = TraceKey::new("w", &p, &layout, &cfg);
                let mut counts = InstCounts::new();
                store
                    .capture_or_replay(key, &p, &layout, &cfg, &mut counts)
                    .unwrap();
            }
        });
        assert_eq!(report.counter("trace_store.captures"), 1);
        assert_eq!(report.counter("trace_store.disk_hits"), 1);
        assert_eq!(report.counter("trace_store.replays"), 1);
        assert!(store.is_empty(), "memory tier stays empty at budget 0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_mb_parsing() {
        assert_eq!(cache_mb_from(None), DEFAULT_CACHE_MB);
        assert_eq!(cache_mb_from(Some("1")), 1);
        assert_eq!(cache_mb_from(Some(" 64 ")), 64);
        assert_eq!(cache_mb_from(Some("nonsense")), DEFAULT_CACHE_MB);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0i64, 1, -1, 63, -64, 300, -300, i64::MAX / 2, i64::MIN / 2];
        for &v in &values {
            put_varint(&mut buf, zigzag(v));
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(unzigzag(get_varint(&buf, &mut pos)), v);
        }
        assert_eq!(pos, buf.len());
    }
}
