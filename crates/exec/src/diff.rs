//! Differential replay: structural alignment of a packed binary's retired
//! stream against the original binary's capture.
//!
//! Rewriting (`vp-core`) promises that the packed binary does *the same
//! architectural work* as the original — launch points, package links, and
//! exit blocks redirect control flow but never change what is computed.
//! This module checks that promise per run, rather than trusting it:
//!
//! 1. Both retired streams are replayed from their [`CapturedTrace`]s into
//!    canonical **visit sequences**. A visit is a maximal run of retired
//!    events attributed to one original block; packed-side events are
//!    mapped back to original identities through an [`IdentityMap`] built
//!    from the rewriter's per-block provenance metadata.
//! 2. Events from exit blocks and launch stubs are *dropped* before
//!    alignment — they are expected, rewriter-introduced divergences
//!    (dummy consumers, migration glue between linked packages), not
//!    correctness signals.
//! 3. The two visit sequences are compared element-wise. Each visit
//!    carries its non-control instruction count, conditional-branch count,
//!    and an order-independent memory-address hash, so in-block
//!    rescheduling and layout re-encoding (fall-through `Goto`s,
//!    branch-plus-jump expansion, inverted branches) are tolerated while a
//!    wrong launch-point target, a mis-wired package link, or a corrupted
//!    block body changes the sequence and is flagged. Unconditional
//!    control events never create visits: a `Goto` retires an event only
//!    when encoded as a jump, so an *empty* block is visible or invisible
//!    purely by where layout put its successor — such blocks are
//!    transparent to the alignment on both sides.
//!
//! The first mismatch is reported with forensic context: the last N
//! aligned visits, the expected and actual visit, and the packed side's
//! package/phase attribution. [`DiffMode::from_env`] reads the `VP_DIFF`
//! knob (`off` / `report` / `strict`); callers (the `vp-metrics` harness)
//! decide whether a divergence is fatal.
//!
//! The alignment assumes the optimizer preserved the rewriter's
//! block-level structure: in-block rescheduling and relayout are fine,
//! but passes that move instructions *between* blocks (cold sinking,
//! LICM) break the per-visit counts, and callers must skip the diff for
//! such configurations.

use crate::trace_store::CapturedTrace;
use crate::{Retired, Sink, StopReason};
use std::collections::BTreeMap;
use std::fmt;
use vp_isa::{CodeRef, FuncId};
use vp_trace::{Counter, Histogram};

/// Diff runs performed.
static DIFF_RUNS: Counter = Counter::new("diff.runs");
/// Visits that aligned across the two streams.
static DIFF_ALIGNED: Counter = Counter::new("diff.aligned_visits");
/// Packed-side events dropped because they came from exit blocks.
static DIFF_EXIT_EVENTS: Counter = Counter::new("diff.exit_events");
/// Packed-side events dropped because they came from launch stubs.
static DIFF_STUB_EVENTS: Counter = Counter::new("diff.stub_events");
/// Direct package-to-package control migrations observed.
static DIFF_MIGRATIONS: Counter = Counter::new("diff.migrations");
/// Runs that ended in an unexplained divergence.
static DIFF_DIVERGENCES: Counter = Counter::new("diff.divergences");
/// Retired events spent inside one package per contiguous stay.
static H_RESIDENCY: Histogram = Histogram::new("diff.package_residency");
/// Dropped (exit/stub) events bridging one package-to-package migration.
static H_MIGRATION_GAP: Histogram = Histogram::new("diff.migration_gap");
/// Aligned-visit run length per diff run (the full sequence when clean).
static H_ALIGN_RUN: Histogram = Histogram::new("diff.alignment_run");

/// How the harness reacts to packed-run divergences (`VP_DIFF`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffMode {
    /// Skip differential replay entirely.
    Off,
    /// Diff every packed run; record divergences in counters and report
    /// sections but keep going.
    Report,
    /// Diff every packed run; an unexplained divergence is fatal.
    Strict,
}

impl DiffMode {
    /// Parses one mode name (`off`, `report`, `strict`).
    pub fn parse(s: &str) -> Option<DiffMode> {
        match s {
            "off" => Some(DiffMode::Off),
            "report" => Some(DiffMode::Report),
            "strict" => Some(DiffMode::Strict),
            _ => None,
        }
    }

    /// Reads `VP_DIFF`; unset defaults to [`DiffMode::Report`].
    ///
    /// # Panics
    ///
    /// Panics on a set-but-unrecognized value — a typo silently disabling
    /// the correctness check would defeat its purpose.
    pub fn from_env() -> DiffMode {
        match std::env::var("VP_DIFF") {
            Ok(s) => DiffMode::parse(s.trim())
                .unwrap_or_else(|| panic!("VP_DIFF must be off|report|strict, got {s:?}")),
            Err(_) => DiffMode::Report,
        }
    }
}

/// Provenance of one packed-program block, as recorded by the rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockIdentity {
    /// The original block this package block was copied from (for exit
    /// blocks: the original block the exit transfers to).
    pub origin: CodeRef,
    /// Index of the owning package.
    pub package: u32,
    /// Phase the owning package serves.
    pub phase: u32,
    /// Exit block (dummy consumers; events are expected divergences).
    pub is_exit: bool,
    /// Launch stub (events are expected divergences).
    pub is_stub: bool,
}

/// Maps packed-program locations back to original-program identities.
///
/// Only package functions need entries; locations without one are original
/// code and map to themselves. `vp-core` builds this from `PackOutput`
/// metadata (`PackOutput::identity_map`); the type lives here so the diff
/// engine stays free of a dependency on the packer.
#[derive(Debug, Clone, Default)]
pub struct IdentityMap {
    funcs: BTreeMap<FuncId, Vec<BlockIdentity>>,
}

impl IdentityMap {
    /// An empty map: every location is treated as original code.
    pub fn new() -> IdentityMap {
        IdentityMap::default()
    }

    /// Registers a package function's per-block identities, indexed by
    /// block id (parallel to the installed function's blocks).
    pub fn insert_package(&mut self, func: FuncId, blocks: Vec<BlockIdentity>) {
        self.funcs.insert(func, blocks);
    }

    /// The identity of `loc`, if it is a known package block.
    pub fn lookup(&self, loc: CodeRef) -> Option<&BlockIdentity> {
        self.funcs
            .get(&loc.func)
            .and_then(|blocks| blocks.get(loc.block.0 as usize))
    }

    /// Number of registered package functions.
    pub fn packages(&self) -> usize {
        self.funcs.len()
    }
}

/// One canonical visit: a maximal run of retired events attributed to one
/// original block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    /// Original-program block the events belong to.
    pub origin: CodeRef,
    /// Non-control retired events in the visit.
    pub plain: u64,
    /// Conditional branches retired in the visit.
    pub cond: u64,
    /// Order-independent hash of the visit's memory effective addresses.
    pub mem: u64,
    /// Package attribution of the packed side (`None` on the original side
    /// and for packed events in original code). Forensic only — alignment
    /// ignores it.
    pub package: Option<u32>,
    /// Phase attribution, parallel to `package`.
    pub phase: Option<u32>,
}

impl Visit {
    fn matches(&self, other: &Visit, check_mem: bool) -> bool {
        self.origin == other.origin
            && self.plain == other.plain
            && self.cond == other.cond
            && (!check_mem || self.mem == other.mem)
    }
}

impl fmt::Display for Visit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f{}b{}: {} insts, {} cond, mem {:#x}",
            self.origin.func.0, self.origin.block.0, self.plain, self.cond, self.mem
        )?;
        if let Some(p) = self.package {
            write!(f, " [package {p}")?;
            if let Some(ph) = self.phase {
                write!(f, ", phase {ph}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Options of one diff run.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Aligned visits to retain as context before the first divergence.
    pub context: usize,
    /// Compare per-visit memory-address hashes (requires that the
    /// optimizer only reordered instructions, never moved them across
    /// blocks).
    pub check_mem: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            context: 8,
            check_mem: true,
        }
    }
}

/// Forensic record of the first alignment mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the first mismatching visit.
    pub index: u64,
    /// The original stream's visit at that index (`None`: stream ended).
    pub expected: Option<Visit>,
    /// The packed stream's visit at that index (`None`: stream ended).
    pub actual: Option<Visit>,
    /// The last aligned visits before the mismatch, oldest first.
    pub context: Vec<Visit>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at visit #{}", self.index)?;
        match &self.expected {
            Some(v) => writeln!(f, "  expected (original): {v}")?,
            None => writeln!(f, "  expected (original): <stream ended>")?,
        }
        match &self.actual {
            Some(v) => writeln!(f, "  actual   (packed):   {v}")?,
            None => writeln!(f, "  actual   (packed):   <stream ended>")?,
        }
        writeln!(f, "  last {} aligned visits:", self.context.len())?;
        for v in &self.context {
            writeln!(f, "    {v}")?;
        }
        Ok(())
    }
}

/// Overall verdict of one diff run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffVerdict {
    /// Both runs halted and every visit aligned.
    Clean,
    /// At least one run hit its instruction limit; tail mismatches are
    /// expected and nothing is claimed beyond the aligned prefix.
    Truncated,
    /// An unexplained divergence: the packed binary did different
    /// architectural work.
    Diverged,
    /// The diff was not applicable (e.g. block-moving optimizations were
    /// enabled) and was skipped.
    Skipped,
}

impl fmt::Display for DiffVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiffVerdict::Clean => "clean",
            DiffVerdict::Truncated => "truncated",
            DiffVerdict::Diverged => "diverged",
            DiffVerdict::Skipped => "skipped",
        })
    }
}

/// Result of structurally aligning a packed run against the original.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Overall verdict.
    pub verdict: DiffVerdict,
    /// Canonical visits in the original stream.
    pub orig_visits: u64,
    /// Canonical visits in the packed stream (exit/stub events dropped).
    pub packed_visits: u64,
    /// Length of the aligned prefix.
    pub aligned_visits: u64,
    /// Packed events dropped as exit-block noise.
    pub exit_events: u64,
    /// Packed events dropped as launch-stub noise.
    pub stub_events: u64,
    /// Direct package-to-package migrations in the packed stream.
    pub migrations: u64,
    /// First-divergence forensics, present unless fully aligned.
    pub divergence: Option<Divergence>,
}

impl DiffReport {
    /// A report for a configuration where the diff does not apply.
    pub fn skipped() -> DiffReport {
        DiffReport {
            verdict: DiffVerdict::Skipped,
            orig_visits: 0,
            packed_visits: 0,
            aligned_visits: 0,
            exit_events: 0,
            stub_events: 0,
            migrations: 0,
            divergence: None,
        }
    }

    /// Whether this run found no unexplained divergence.
    pub fn is_clean(&self) -> bool {
        self.verdict != DiffVerdict::Diverged
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verdict {}: {}/{} visits aligned ({} original), \
             {} exit + {} stub events dropped, {} migrations",
            self.verdict,
            self.aligned_visits,
            self.packed_visits,
            self.orig_visits,
            self.exit_events,
            self.stub_events,
            self.migrations
        )?;
        if let Some(d) = &self.divergence {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Builds a canonical visit sequence from a retired stream.
struct VisitBuilder<'m> {
    map: Option<&'m IdentityMap>,
    visits: Vec<Visit>,
    /// Dropped events since the last kept event.
    dropped_run: u64,
    exit_events: u64,
    stub_events: u64,
    migrations: u64,
    gaps: Vec<u64>,
    residencies: Vec<u64>,
    cur_pkg: Option<u32>,
    cur_residency: u64,
}

impl<'m> VisitBuilder<'m> {
    fn new(map: Option<&'m IdentityMap>) -> VisitBuilder<'m> {
        VisitBuilder {
            map,
            visits: Vec::new(),
            dropped_run: 0,
            exit_events: 0,
            stub_events: 0,
            migrations: 0,
            gaps: Vec::new(),
            residencies: Vec::new(),
            cur_pkg: None,
            cur_residency: 0,
        }
    }

    fn finish(&mut self) {
        if self.cur_pkg.is_some() && self.cur_residency > 0 {
            self.residencies.push(self.cur_residency);
        }
        self.cur_pkg = None;
        self.cur_residency = 0;
    }
}

impl Sink for VisitBuilder<'_> {
    fn retire(&mut self, r: &Retired) {
        let (origin, package, phase) = match self.map.and_then(|m| m.lookup(r.loc)) {
            Some(id) if id.is_stub => {
                self.stub_events += 1;
                self.dropped_run += 1;
                return;
            }
            Some(id) if id.is_exit => {
                self.exit_events += 1;
                self.dropped_run += 1;
                return;
            }
            Some(id) => (id.origin, Some(id.package), Some(id.phase)),
            None => (r.loc, None, None),
        };

        // Package residency and migration tracking (event granularity).
        if package != self.cur_pkg {
            if self.cur_pkg.is_some() && self.cur_residency > 0 {
                self.residencies.push(self.cur_residency);
            }
            if package.is_some() && self.cur_pkg.is_some() {
                // Direct package-to-package transfer: an inter-package
                // link, bridged only by dropped exit-block glue.
                self.migrations += 1;
                self.gaps.push(self.dropped_run);
            }
            self.cur_pkg = package;
            self.cur_residency = 0;
            if let Some(pkg) = package {
                // Flight payload: (package id, events dropped in the gap
                // since the last in-package event) — the package-switch
                // timeline.
                vp_trace::flight("diff.pkg_enter", u64::from(pkg), self.dropped_run);
            }
        }
        if package.is_some() {
            self.cur_residency += 1;
        }
        self.dropped_run = 0;

        let is_ctrl = r.ctrl.is_some();
        let cond = u64::from(r.ctrl.is_some_and(|c| c.is_cond));
        // Unconditional control events are layout artifacts, not work: a
        // `Goto` retires an event when encoded as a jump and nothing when
        // its target is the fall-through, so whether an *empty* block
        // appears in the stream at all depends on where relayout put its
        // successor. Visits are therefore built only from architectural
        // work — plain instructions and conditional decisions.
        if is_ctrl && cond == 0 {
            return;
        }
        // Fold the memory address in order-independently: in-block
        // rescheduling reorders loads/stores without changing their
        // effective addresses.
        let mem = r.mem_addr.map_or(0, |a| {
            a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(r.is_store)
        });

        match self.visits.last_mut() {
            // Merge into the open visit of the same origin. Merging is on
            // origin alone (not package): a packed stream that leaves a
            // package mid-block-run and re-enters the same original block
            // must collapse exactly like the original stream does.
            Some(v) if v.origin == origin => {
                v.plain += u64::from(!is_ctrl);
                v.cond += cond;
                v.mem = v.mem.wrapping_add(mem);
            }
            _ => self.visits.push(Visit {
                origin,
                plain: u64::from(!is_ctrl),
                cond,
                mem,
                package,
                phase,
            }),
        }
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        // The mapped side is a sequential state machine (dropped-run
        // counters, residency tracking) — the default per-event fold is
        // already the right shape there. Without an identity map (the
        // original side of every diff) no event is ever dropped and the
        // package machinery never fires, so only the visit fold remains:
        // specialize that path.
        if self.map.is_some() {
            for r in batch {
                self.retire(r);
            }
            return;
        }
        for r in batch {
            let is_ctrl = r.ctrl.is_some();
            let cond = u64::from(r.ctrl.is_some_and(|c| c.is_cond));
            if is_ctrl && cond == 0 {
                continue;
            }
            let mem = r.mem_addr.map_or(0, |a| {
                a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(r.is_store)
            });
            match self.visits.last_mut() {
                Some(v) if v.origin == r.loc => {
                    v.plain += u64::from(!is_ctrl);
                    v.cond += cond;
                    v.mem = v.mem.wrapping_add(mem);
                }
                _ => self.visits.push(Visit {
                    origin: r.loc,
                    plain: u64::from(!is_ctrl),
                    cond,
                    mem,
                    package: None,
                    phase: None,
                }),
            }
        }
    }
}

/// Aligns the packed run's retired stream against the original capture.
///
/// Replays both traces into canonical visit sequences (mapping the packed
/// side through `map`, dropping exit/stub events) and compares them
/// element-wise. Counters (`diff.*`) and the residency/migration/alignment
/// histograms are recorded as side effects.
pub fn diff_traces(
    original: &CapturedTrace,
    packed: &CapturedTrace,
    map: &IdentityMap,
    opts: &DiffOptions,
) -> DiffReport {
    let _s = vp_trace::span("exec.diff");
    let mut ob = VisitBuilder::new(None);
    let orig_stats = original.replay(&mut ob);
    ob.finish();
    let mut pb = VisitBuilder::new(Some(map));
    let packed_stats = packed.replay(&mut pb);
    pb.finish();

    let n = ob.visits.len().min(pb.visits.len());
    let mut aligned = 0u64;
    let mut first_mismatch: Option<usize> = None;
    for i in 0..n {
        if ob.visits[i].matches(&pb.visits[i], opts.check_mem) {
            aligned += 1;
        } else {
            first_mismatch = Some(i);
            break;
        }
    }
    if first_mismatch.is_none() && ob.visits.len() != pb.visits.len() {
        first_mismatch = Some(n);
    }

    let truncated =
        orig_stats.stop != StopReason::Halted || packed_stats.stop != StopReason::Halted;
    // Truncation only excuses mismatches at the *tail* of the common
    // prefix (a partial final visit, or one stream ending early); an early
    // mismatch with a truncated run is still a real divergence.
    let tail_mismatch = first_mismatch.is_none_or(|i| i + 1 >= n);
    let verdict = match (first_mismatch, truncated) {
        (None, false) => DiffVerdict::Clean,
        (None, true) => DiffVerdict::Truncated,
        (Some(_), true) if tail_mismatch => DiffVerdict::Truncated,
        (Some(_), _) => DiffVerdict::Diverged,
    };
    let divergence = first_mismatch.map(|i| Divergence {
        index: i as u64,
        expected: ob.visits.get(i).copied(),
        actual: pb.visits.get(i).copied(),
        context: ob.visits[i.saturating_sub(opts.context)..i].to_vec(),
    });

    DIFF_RUNS.incr();
    DIFF_ALIGNED.add(aligned);
    DIFF_EXIT_EVENTS.add(pb.exit_events);
    DIFF_STUB_EVENTS.add(pb.stub_events);
    DIFF_MIGRATIONS.add(pb.migrations);
    if verdict == DiffVerdict::Diverged {
        DIFF_DIVERGENCES.incr();
        // Flight payload: (first mismatched visit index, aligned prefix).
        vp_trace::flight(
            "diff.divergence",
            first_mismatch.unwrap_or(0) as u64,
            aligned,
        );
    }
    for &r in &pb.residencies {
        H_RESIDENCY.observe(r);
    }
    for &g in &pb.gaps {
        H_MIGRATION_GAP.observe(g);
    }
    H_ALIGN_RUN.observe(aligned);

    DiffReport {
        verdict,
        orig_visits: ob.visits.len() as u64,
        packed_visits: pb.visits.len() as u64,
        aligned_visits: aligned,
        exit_events: pb.exit_events,
        stub_events: pb.stub_events,
        migrations: pb.migrations,
        divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunConfig, Sink};
    use vp_isa::Reg;
    use vp_program::{Layout, ProgramBuilder};

    fn captured(p: &vp_program::Program) -> CapturedTrace {
        let layout = Layout::natural(p);
        CapturedTrace::capture(p, &layout, &RunConfig::default()).expect("capture")
    }

    fn counting_loop(extra_nop: bool) -> vp_program::Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let i = Reg::int(8);
            f.li(i, 0);
            f.for_range(i, 0, 50, |f| {
                f.addi(Reg::int(9), Reg::int(9), 1);
                if extra_nop {
                    f.nop();
                }
            });
            f.halt();
        });
        pb.build()
    }

    #[test]
    fn identical_programs_diff_clean() {
        let p = counting_loop(false);
        let a = captured(&p);
        let b = captured(&p);
        let rep = diff_traces(&a, &b, &IdentityMap::new(), &DiffOptions::default());
        assert_eq!(rep.verdict, DiffVerdict::Clean, "{rep}");
        assert_eq!(rep.aligned_visits, rep.orig_visits);
        assert!(rep.divergence.is_none());
    }

    #[test]
    fn different_block_bodies_diverge_with_context() {
        let a = captured(&counting_loop(false));
        let b = captured(&counting_loop(true));
        let rep = diff_traces(&a, &b, &IdentityMap::new(), &DiffOptions::default());
        assert_eq!(rep.verdict, DiffVerdict::Diverged, "{rep}");
        let rendered = format!("{rep}");
        assert!(rendered.contains("first divergence"), "{rendered}");
        let d = rep.divergence.expect("forensics attached");
        assert!(d.expected.is_some() && d.actual.is_some());
        assert_eq!(
            d.expected.unwrap().origin,
            d.actual.unwrap().origin,
            "same block, different instruction count"
        );
        assert_ne!(d.expected.unwrap().plain, d.actual.unwrap().plain);
        // Context holds the visits leading up to the loop body.
        assert!(d.context.len() <= DiffOptions::default().context);
    }

    #[test]
    fn identity_map_folds_copies_back_and_drops_exits() {
        // "Package" simulation: main calls `helper`; the packed variant
        // calls an appended copy whose blocks map back to the original.
        let build = |packed: bool| {
            let mut pb = ProgramBuilder::new();
            // Original functions keep their ids; the copy is appended
            // after them, exactly like the rewriter installs packages.
            let helper = pb.declare("helper");
            let main = pb.declare("main");
            pb.define(helper, |f| {
                f.addi(Reg::ARG0, Reg::ARG0, 7);
                f.ret();
            });
            let copy = if packed {
                let c = pb.declare("helper$pkg");
                pb.define(c, |f| {
                    f.addi(Reg::ARG0, Reg::ARG0, 7);
                    f.ret();
                });
                Some(c)
            } else {
                None
            };
            pb.define(main, |f| {
                f.li(Reg::ARG0, 1);
                f.call(copy.unwrap_or(helper));
                f.halt();
            });
            pb.set_entry(main);
            (pb.build(), copy, helper)
        };

        let (orig, _, _) = build(false);
        let (packed, copy, helper) = build(true);
        let copy = copy.unwrap();

        let mut map = IdentityMap::new();
        let blocks: Vec<BlockIdentity> = packed
            .func(copy)
            .blocks
            .iter()
            .enumerate()
            .map(|(b, _)| BlockIdentity {
                origin: CodeRef {
                    func: helper,
                    block: vp_isa::BlockId(b as u32),
                },
                package: 0,
                phase: 0,
                is_exit: false,
                is_stub: false,
            })
            .collect();
        map.insert_package(copy, blocks);

        let a = captured(&orig);
        let b = captured(&packed);
        let rep = diff_traces(&a, &b, &map, &DiffOptions::default());
        assert_eq!(rep.verdict, DiffVerdict::Clean, "{rep}");

        // A wrong identity (the corrupted-metadata case) must diverge.
        let mut bad = IdentityMap::new();
        bad.insert_package(
            copy,
            packed
                .func(copy)
                .blocks
                .iter()
                .enumerate()
                .map(|(b, _)| BlockIdentity {
                    origin: CodeRef {
                        func: helper,
                        block: vp_isa::BlockId(b as u32 + 1),
                    },
                    package: 0,
                    phase: 0,
                    is_exit: false,
                    is_stub: false,
                })
                .collect(),
        );
        let rep = diff_traces(&a, &b, &bad, &DiffOptions::default());
        assert_eq!(rep.verdict, DiffVerdict::Diverged, "{rep}");
    }

    #[test]
    fn exit_and_stub_events_are_dropped_and_counted() {
        // Replay a hand-rolled stream through the builder: one original
        // block, then an exit block, then a stub.
        let mut b = VisitBuilder::new(None);
        let ev = crate::event::Retired {
            loc: CodeRef::new(0, 0),
            addr: 0,
            fu: vp_isa::FuClass::IntAlu,
            latency: 1,
            def: None,
            uses: [None; 3],
            mem_addr: None,
            is_store: false,
            ctrl: None,
            in_package: false,
        };
        b.retire(&ev);
        assert_eq!(b.visits.len(), 1);

        let mut map = IdentityMap::new();
        map.insert_package(
            FuncId(9),
            vec![
                BlockIdentity {
                    origin: CodeRef::new(0, 0),
                    package: 0,
                    phase: 0,
                    is_exit: true,
                    is_stub: false,
                },
                BlockIdentity {
                    origin: CodeRef::new(0, 0),
                    package: 0,
                    phase: 0,
                    is_exit: false,
                    is_stub: true,
                },
            ],
        );
        let mut pbuild = VisitBuilder::new(Some(&map));
        let mut exit_ev = ev;
        exit_ev.loc = CodeRef::new(9, 0);
        pbuild.retire(&exit_ev);
        let mut stub_ev = ev;
        stub_ev.loc = CodeRef::new(9, 1);
        pbuild.retire(&stub_ev);
        pbuild.finish();
        assert_eq!(pbuild.visits.len(), 0);
        assert_eq!(pbuild.exit_events, 1);
        assert_eq!(pbuild.stub_events, 1);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(DiffMode::parse("off"), Some(DiffMode::Off));
        assert_eq!(DiffMode::parse("report"), Some(DiffMode::Report));
        assert_eq!(DiffMode::parse("strict"), Some(DiffMode::Strict));
        assert_eq!(DiffMode::parse("bogus"), None);
    }

    #[test]
    fn diff_records_counters_and_histograms() {
        let p = counting_loop(false);
        let a = captured(&p);
        let ((), report) = vp_trace::scoped(|| {
            let rep = diff_traces(&a, &a, &IdentityMap::new(), &DiffOptions::default());
            assert_eq!(rep.verdict, DiffVerdict::Clean);
        });
        assert_eq!(report.counter("diff.runs"), 1);
        assert!(report.counter("diff.aligned_visits") > 0);
        assert_eq!(report.counter("diff.divergences"), 0);
        assert!(report.histogram("diff.alignment_run").count >= 1);
    }
}
