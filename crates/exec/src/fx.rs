//! A minimal in-repo FxHash (the rustc hasher): a fast, non-cryptographic
//! multiply-xor hash for the hot-path maps in this crate.
//!
//! The default `std::collections::HashMap` hasher is SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per `u64` key. The capture-side
//! maps ([`TraceRecorder`]'s address→slot table, the [`TraceStore`] LRU and
//! its single-flight table) are keyed by values an attacker does not
//! control — fetch addresses and workload fingerprints produced by the
//! harness itself — so the collision-resistance is pure overhead there.
//! This module is the offline-build substitute for the `rustc-hash` crate:
//! same algorithm (rotate, xor, multiply by a golden-ratio-derived
//! constant), no dependency.
//!
//! [`TraceRecorder`]: crate::TraceRecorder
//! [`TraceStore`]: crate::TraceStore

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// 64-bit multiplier from rustc's FxHash: `2^64 / φ`, forced odd.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The FxHash state: one 64-bit word folded as
/// `hash = (rotl5(hash) ^ word) * K`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "c" and "a" + "bc" differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let b = BuildHasherDefault::<FxHasher>::default();
        assert_eq!(b.hash_one(0xdead_beefu64), b.hash_one(0xdead_beefu64));
        assert_eq!(b.hash_one("300.twolf A"), b.hash_one("300.twolf A"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(|h| h.write_u64(0x1000));
        let b = hash_of(|h| h.write_u64(0x1004));
        assert_ne!(a, b);
        assert_ne!(hash_of(|h| h.write(b"ab")), hash_of(|h| h.write(b"ba")));
    }

    #[test]
    fn tail_bytes_and_length_both_count() {
        // Same 8-byte prefix, different 3-byte tails.
        assert_ne!(
            hash_of(|h| h.write(b"abcdefghXYZ")),
            hash_of(|h| h.write(b"abcdefghXYW")),
        );
        // Same bytes where the split between full words and tail differs
        // only by length.
        assert_ne!(hash_of(|h| h.write(b"abc")), hash_of(|h| h.write(b"abc\0")),);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&(i as u32)));
        }
    }
}
