//! Minimal read-only file memory-mapping, dependency-free.
//!
//! The workspace deliberately has no external crates, so this speaks to
//! the kernel directly: on Linux (x86_64 / aarch64) `mmap`/`munmap` are
//! issued as raw syscalls via inline assembly. Other platforms report
//! mapping as unsupported and callers fall back to an owned read —
//! correctness never depends on this module, only `disk_load` throughput.
//!
//! A [`MappedFile`] is a shared, immutable, page-cache-backed view of a
//! whole file. `.vptrace` files are written atomically (temp + rename)
//! and never truncated in place; eviction unlinks them, which on Linux
//! leaves existing mappings valid until dropped. The one way to fault a
//! mapping is an external actor truncating a live file under us — the
//! same actor could corrupt an owned read mid-`fs::read`, so the tier's
//! CRC covers both paths equally.

use std::path::Path;

/// A read-only memory mapping of an entire file.
///
/// The mapping is `MAP_PRIVATE` over an immutable file: the pages are
/// plain memory for the mapping's lifetime, shared freely across threads
/// (hence the manual `Send`/`Sync`), and released on drop.
pub(crate) struct MappedFile {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only for its whole lifetime and the
// underlying pages stay valid until `munmap` in `Drop`; concurrent reads
// from any thread are race-free.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only in full. Returns `None` when mapping is
    /// unsupported on this platform, the file is absent or empty, or the
    /// syscall fails — callers fall back to an owned read.
    pub(crate) fn map(path: &Path) -> Option<MappedFile> {
        sys::map_readonly(path)
    }

    /// Whether this platform has a real mapping path at all.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn supported() -> bool {
        sys::SUPPORTED
    }

    /// The mapped bytes.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live read-only mapping of exactly `len`
        // bytes, valid until `Drop`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The mapping's length in bytes.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe a mapping we own; nothing can read
        // through it after drop.
        unsafe { sys::unmap(self.ptr, self.len) }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MappedFile({} bytes)", self.len)
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::MappedFile;
    use std::fs::File;
    use std::os::fd::AsRawFd;
    use std::path::Path;

    pub(crate) const SUPPORTED: bool = true;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(nr: usize, a0: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a0,
            in("rsi") a1,
            in("rdx") a2,
            in("r10") a3,
            in("r8") a4,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(nr: usize, a0: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a0 as isize => ret,
            in("x1") a1,
            in("x2") a2,
            in("x3") a3,
            in("x4") a4,
            in("x5") 0usize,
            options(nostack),
        );
        ret
    }

    pub(crate) fn map_readonly(path: &Path) -> Option<MappedFile> {
        let file = File::open(path).ok()?;
        let len = usize::try_from(file.metadata().ok()?.len()).ok()?;
        if len == 0 {
            return None; // zero-length mmap is EINVAL; an empty image is refused anyway
        }
        // SAFETY: plain mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0);
        // the fd outlives the call (mappings persist past close).
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd() as usize,
            )
        };
        // Linux returns -errno in [-4095, -1] on failure.
        if (-4095..0).contains(&ret) {
            return None;
        }
        Some(MappedFile {
            ptr: ret as *const u8,
            len,
        })
    }

    pub(crate) unsafe fn unmap(ptr: *const u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0);
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::MappedFile;
    use std::path::Path;

    pub(crate) const SUPPORTED: bool = false;

    pub(crate) fn map_readonly(_path: &Path) -> Option<MappedFile> {
        None
    }

    pub(crate) unsafe fn unmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_matches_an_owned_read() {
        let path = std::env::temp_dir().join(format!("vp-mmap-test-{}", std::process::id()));
        let content: Vec<u8> = (0..100_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) as u8)
            .collect();
        std::fs::write(&path, &content).unwrap();

        match MappedFile::map(&path) {
            Some(map) => {
                assert!(MappedFile::supported());
                assert_eq!(map.len(), content.len());
                assert_eq!(map.as_slice(), &content[..]);
                // Unlinking a mapped file leaves the mapping readable.
                std::fs::remove_file(&path).unwrap();
                assert_eq!(map.as_slice(), &content[..]);
            }
            None => {
                assert!(
                    !MappedFile::supported(),
                    "mapping failed on a supported platform"
                );
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn empty_and_absent_files_are_refused() {
        let path = std::env::temp_dir().join(format!("vp-mmap-empty-{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        assert!(MappedFile::map(&path).is_none(), "empty file");
        std::fs::remove_file(&path).unwrap();
        assert!(MappedFile::map(&path).is_none(), "absent file");
    }
}
