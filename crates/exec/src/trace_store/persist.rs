//! On-disk persistence tier for [`CapturedTrace`]s.
//!
//! The in-memory [`TraceStore`](super::TraceStore) dies with the process,
//! so detector-configuration sweeps and CI runs re-pay the full
//! interpreter cost on every invocation. This module serializes the
//! `(side-table, stream)` pair of a capture under its [`TraceKey`]
//! fingerprint into a directory (`VP_TRACE_DIR`), so a warmed cache
//! survives process restarts and is shared between concurrently running
//! shard processes.
//!
//! # File format (`.vptrace`, version [`FORMAT_VERSION`])
//!
//! ```text
//! offset  size  field
//! 0       4     magic "VPTR"
//! 4       4     format version (LE u32)
//! 8       4     CRC-32 (IEEE) of the payload (LE u32)
//! 12      ..    payload
//! ```
//!
//! The payload is varint-coded and opens with a shared **header string
//! table** (each string stored once, referenced by index) followed by an
//! echo of the owning [`TraceKey`] — workload name (by table index),
//! structural fingerprint, variant, and run limits — which makes every
//! file self-describing and lets the loader refuse a capture whose key
//! does not match the request (e.g. after a path-hash collision). Then
//! come run stats, event count, the static side-table section, and the
//! raw dynamic stream section. The CRC covers everything after the fixed
//! header, so a truncated or bit-flipped file is *refused* at load — the
//! caller falls back to live execution and overwrites the entry — never
//! replayed wrong.
//!
//! ## Hot-slot index (v3)
//!
//! Since v3 the side-table section is a **hot-slot index**: only slots
//! actually referenced by the dynamic stream are written, preceded by the
//! logical table size, the written count, and — when the written set is
//! sparse — a delta-coded remap table of original slot indices. The
//! loader rebuilds the side table at its logical size with inert
//! placeholders in the unreferenced positions, so the stream (which
//! encodes slot references as deltas over *original* indices) replays
//! byte-identically. v2 files (dense side table, no remap) remain
//! readable; v1 files are refused.
//!
//! # Budget
//!
//! [`DiskTier`] enforces a byte budget (`VP_TRACE_DISK_MB`, default
//! 2048): after every write, the oldest-mtime files are evicted until the
//! directory fits. Loading a capture touches its mtime, making the
//! eviction order least-recently-*used*, not least-recently-written.
//! Writes are atomic (temp file + rename), so concurrent shard processes
//! sharing one `VP_TRACE_DIR` never observe half-written captures.

use super::{
    get_varint, put_varint, unzigzag, CapturedTrace, StaticSlot, StreamBytes, TraceKey, FLAG_MEM,
    FLAG_SEQ,
};
use crate::event::{Ctrl, Retired};
use crate::exec::{RunStats, StopReason};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;
use vp_isa::reg::NUM_REGS;
use vp_isa::{CodeRef, FuClass, Reg};
use vp_trace::Counter;

pub(crate) mod mmap;

/// Store lookups answered by loading a capture from `VP_TRACE_DIR`.
static DISK_HITS: Counter = Counter::new("trace_store.disk_hits");
/// Total encoded bytes written to the disk tier (monotonic).
static DISK_BYTES: Counter = Counter::new("trace_store.disk_bytes");
/// On-disk captures deleted to stay inside the disk byte budget.
static DISK_EVICTIONS: Counter = Counter::new("trace_store.disk_evictions");

/// Version stamped into every `.vptrace` header. Bump when the payload
/// encoding (this module *or* the in-memory stream encoding in
/// `trace_store`) changes shape; old files are then refused and
/// re-captured instead of mis-decoded.
///
/// History: v1 had no header string table or key echo; v2 prepends both;
/// v3 replaces the dense side-table section with the hot-slot index
/// (referenced slots only, plus a remap table). v2 files are still
/// *readable* — see `decode` — but new files are always written v3.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version `decode` still accepts.
pub const MIN_READ_VERSION: u32 = 2;

/// Default disk budget when `VP_TRACE_DISK_MB` is unset.
pub const DEFAULT_DISK_MB: u64 = 2048;

const MAGIC: &[u8; 4] = b"VPTR";
const EXT: &str = "vptrace";

// ------------------------------------------------------------------ crc32

/// Eight lookup tables for slice-by-8: `T[0]` is the classic byte-at-a-
/// time table, and `T[k][i]` advances `T[k-1][i]` by one more zero byte,
/// so one round of eight table lookups consumes eight input bytes.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// IEEE CRC-32, as used by gzip/zip. Slice-by-8: the byte-at-a-time
/// update chains one dependent table lookup per input byte (~0.5 GB/s),
/// which dominated `disk_load`; processing eight bytes per round with
/// independent lookups runs several times faster and is what keeps CRC
/// validation affordable on the zero-copy mmap path.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = (c >> 8) ^ t[0][((c ^ u32::from(b)) & 0xff) as usize];
    }
    !c
}

// --------------------------------------------------------------- encoding

const SLOT_IS_STORE: u8 = 1 << 0;
const SLOT_IN_PACKAGE: u8 = 1 << 1;
const SLOT_HAS_DEF: u8 = 1 << 2;
const SLOT_HAS_CTRL: u8 = 1 << 3;
const SLOT_IS_COND: u8 = 1 << 4;
const SLOT_IS_CALL: u8 = 1 << 5;
const SLOT_IS_RET: u8 = 1 << 6;

const NO_REG: u8 = 0xff;

fn put_reg(out: &mut Vec<u8>, r: Option<Reg>) {
    out.push(r.map_or(NO_REG, |r| r.index() as u8));
}

fn fu_code(fu: FuClass) -> u8 {
    match fu {
        FuClass::IntAlu => 0,
        FuClass::Fp => 1,
        FuClass::Mem => 2,
        FuClass::Branch => 3,
    }
}

/// Walks the dynamic stream once (a decode-lite pass: no event
/// materialization) and marks every side-table slot it references. New
/// captures reference every slot by construction, but traces that round-
/// trip through other producers (or future truncation passes) may not —
/// the hot-slot index drops the dead ones.
fn referenced_slots(trace: &CapturedTrace) -> Vec<bool> {
    let stream = trace.stream.as_slice();
    let mut seen = vec![false; trace.slots.len()];
    let mut pos = 0;
    let mut prev_idx = -1i64;
    while pos < stream.len() {
        let flags = stream[pos];
        pos += 1;
        let idx = if flags & FLAG_SEQ != 0 {
            prev_idx + 1
        } else {
            prev_idx + 1 + unzigzag(get_varint(stream, &mut pos))
        };
        prev_idx = idx;
        let slot = &trace.slots[idx as usize];
        seen[idx as usize] = true;
        if flags & FLAG_MEM != 0 {
            get_varint(stream, &mut pos); // memory-address delta
        }
        if slot.template.ctrl.as_ref().is_some_and(|c| c.is_ret) {
            get_varint(stream, &mut pos); // return-target delta
        }
    }
    seen
}

/// Serializes one side-table record (shared by the v2 and v3 layouts).
fn put_slot(payload: &mut Vec<u8>, slot: &StaticSlot) {
    let t = &slot.template;
    debug_assert!(t.mem_addr.is_none(), "templates carry no dynamic state");
    let mut flags = 0u8;
    if t.is_store {
        flags |= SLOT_IS_STORE;
    }
    if t.in_package {
        flags |= SLOT_IN_PACKAGE;
    }
    if t.def.is_some() {
        flags |= SLOT_HAS_DEF;
    }
    if let Some(c) = &t.ctrl {
        flags |= SLOT_HAS_CTRL;
        if c.is_cond {
            flags |= SLOT_IS_COND;
        }
        if c.is_call {
            flags |= SLOT_IS_CALL;
        }
        if c.is_ret {
            flags |= SLOT_IS_RET;
        }
    }
    payload.push(flags);
    put_varint(payload, t.addr);
    put_varint(payload, u64::from(t.loc.func.0));
    put_varint(payload, u64::from(t.loc.block.0));
    payload.push(fu_code(t.fu));
    put_varint(payload, u64::from(t.latency));
    if t.def.is_some() {
        put_reg(payload, t.def);
    }
    for u in t.uses {
        put_reg(payload, u);
    }
    if let Some(c) = &t.ctrl {
        put_varint(payload, u64::from(c.block.func.0));
        put_varint(payload, u64::from(c.block.block.0));
        put_varint(payload, c.ret_addr);
    }
    let presence = u8::from(slot.targets[0].is_some()) | (u8::from(slot.targets[1].is_some()) << 1);
    payload.push(presence);
    for t in slot.targets.into_iter().flatten() {
        put_varint(payload, t);
    }
}

/// Serializes a capture (and its owning key) into the versioned,
/// CRC-protected byte image (always [`FORMAT_VERSION`]).
pub(super) fn encode(key: &TraceKey, trace: &CapturedTrace) -> Vec<u8> {
    encode_versioned(key, trace, FORMAT_VERSION)
}

/// [`encode`] with an explicit format version (2 or 3); v2 emission exists
/// so the backward-compatibility path stays testable.
pub(super) fn encode_versioned(key: &TraceKey, trace: &CapturedTrace, version: u32) -> Vec<u8> {
    assert!((MIN_READ_VERSION..=FORMAT_VERSION).contains(&version));
    let mut payload = Vec::with_capacity(trace.stream.len() + 64 * trace.slots.len() + 64);

    // Header string table: every string the header references, stored
    // exactly once and addressed by index below.
    let strings = [key.workload.as_str()];
    put_varint(&mut payload, strings.len() as u64);
    for s in strings {
        put_varint(&mut payload, s.len() as u64);
        payload.extend_from_slice(s.as_bytes());
    }

    // Key echo: workload by string-table index plus the scalar fields,
    // verified against the requested key at load time.
    put_varint(&mut payload, 0); // workload string index
    for v in [key.fingerprint, key.variant, key.max_insts, key.max_depth] {
        put_varint(&mut payload, v);
    }

    // Stats header.
    put_varint(&mut payload, trace.stats.retired);
    put_varint(&mut payload, trace.stats.cond_branches);
    put_varint(&mut payload, trace.stats.in_package);
    payload.push(match trace.stats.stop {
        StopReason::Halted => 0,
        StopReason::InstLimit => 1,
    });
    put_varint(&mut payload, trace.events);

    // Static side-table section: v3 hot-slot index (logical size, written
    // count, sparse remap, referenced records only); v2 dense table.
    match version {
        2 => {
            put_varint(&mut payload, trace.slots.len() as u64);
            for slot in &trace.slots {
                put_slot(&mut payload, slot);
            }
        }
        _ => {
            let seen = referenced_slots(trace);
            let written: Vec<usize> = (0..trace.slots.len()).filter(|&i| seen[i]).collect();
            put_varint(&mut payload, trace.slots.len() as u64);
            put_varint(&mut payload, written.len() as u64);
            if written.len() < trace.slots.len() {
                // Sparse remap: original indices of the written slots,
                // delta-coded (strictly ascending, so every delta after
                // the first is >= 1).
                let mut prev = 0u64;
                for (k, &idx) in written.iter().enumerate() {
                    let idx = idx as u64;
                    put_varint(&mut payload, if k == 0 { idx } else { idx - prev });
                    prev = idx;
                }
            }
            for &idx in &written {
                put_slot(&mut payload, &trace.slots[idx]);
            }
        }
    }

    // Dynamic stream section.
    put_varint(&mut payload, trace.stream.len() as u64);
    payload.extend_from_slice(&trace.stream);

    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A bounds-checked payload reader; every accessor returns `None` past the
/// end instead of panicking, so truncated files that somehow pass the CRC
/// are still refused.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return None;
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn reg(&mut self) -> Option<Option<Reg>> {
        match self.u8()? {
            NO_REG => Some(None),
            idx if (idx as usize) < NUM_REGS => Some(Some(Reg::from_index(idx as usize))),
            _ => None,
        }
    }
}

fn decode_fu(code: u8) -> Option<FuClass> {
    Some(match code {
        0 => FuClass::IntAlu,
        1 => FuClass::Fp,
        2 => FuClass::Mem,
        3 => FuClass::Branch,
        _ => return None,
    })
}

/// An inert record occupying a side-table position the stream never
/// references (v3 hot-slot decode). Replay can never observe it.
fn placeholder_slot() -> StaticSlot {
    StaticSlot {
        template: Retired {
            loc: CodeRef::new(u32::MAX, u32::MAX),
            addr: 0,
            fu: FuClass::IntAlu,
            latency: 0,
            def: None,
            uses: [None; 3],
            mem_addr: None,
            is_store: false,
            ctrl: None,
            in_package: false,
        },
        targets: [None; 2],
    }
}

/// Deserializes one side-table record (shared by the v2 and v3 layouts).
fn read_slot(rd: &mut Rd) -> Option<StaticSlot> {
    let flags = rd.u8()?;
    let addr = rd.varint()?;
    let func = u32::try_from(rd.varint()?).ok()?;
    let block = u32::try_from(rd.varint()?).ok()?;
    let fu = decode_fu(rd.u8()?)?;
    let latency = u32::try_from(rd.varint()?).ok()?;
    let def = if flags & SLOT_HAS_DEF != 0 {
        rd.reg()?
    } else {
        None
    };
    let mut uses = [None; 3];
    for u in &mut uses {
        *u = rd.reg()?;
    }
    let ctrl = if flags & SLOT_HAS_CTRL != 0 {
        let cfunc = u32::try_from(rd.varint()?).ok()?;
        let cblock = u32::try_from(rd.varint()?).ok()?;
        let ret_addr = rd.varint()?;
        Some(Ctrl {
            block: CodeRef::new(cfunc, cblock),
            is_cond: flags & SLOT_IS_COND != 0,
            arch_taken: false,
            taken: false,
            is_call: flags & SLOT_IS_CALL != 0,
            is_ret: flags & SLOT_IS_RET != 0,
            target: 0,
            ret_addr,
        })
    } else {
        None
    };
    let presence = rd.u8()?;
    let mut targets = [None; 2];
    for (bit, t) in targets.iter_mut().enumerate() {
        if presence & (1 << bit) != 0 {
            *t = Some(rd.varint()?);
        }
    }
    Some(StaticSlot {
        template: Retired {
            loc: CodeRef::new(func, block),
            addr,
            fu,
            latency,
            def,
            uses,
            mem_addr: None,
            is_store: flags & SLOT_IS_STORE != 0,
            ctrl,
            in_package: flags & SLOT_IN_PACKAGE != 0,
        },
        targets,
    })
}

/// Everything [`decode`]/[`decode_owned`] parse out of an image, with the
/// dynamic stream left as a byte range into the original buffer so the
/// caller decides whether to copy it or reuse the allocation.
struct Parsed {
    key: TraceKey,
    slots: Vec<StaticSlot>,
    stats: RunStats,
    events: u64,
    stream_start: usize,
    stream_len: usize,
}

/// Parses and validates a byte image produced by [`encode`] (v3) or an
/// older v2 writer. Returns `None` on any mismatch — wrong magic,
/// unsupported version, CRC failure, or malformed payload.
fn parse(bytes: &[u8]) -> Option<Parsed> {
    if bytes.len() < 12 || &bytes[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    let payload = &bytes[12..];
    if crc32(payload) != stored_crc {
        return None;
    }

    let mut rd = Rd {
        buf: payload,
        pos: 0,
    };

    // Header string table.
    let n_strings = usize::try_from(rd.varint()?).ok()?;
    if n_strings > payload.len() {
        return None;
    }
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        let len = usize::try_from(rd.varint()?).ok()?;
        let s = std::str::from_utf8(rd.take(len)?).ok()?;
        strings.push(s);
    }

    // Key echo.
    let widx = usize::try_from(rd.varint()?).ok()?;
    let workload = (*strings.get(widx)?).to_string();
    let key = TraceKey {
        workload,
        fingerprint: rd.varint()?,
        variant: rd.varint()?,
        max_insts: rd.varint()?,
        max_depth: rd.varint()?,
    };

    let retired = rd.varint()?;
    let cond_branches = rd.varint()?;
    let in_package = rd.varint()?;
    let stop = match rd.u8()? {
        0 => StopReason::Halted,
        1 => StopReason::InstLimit,
        _ => return None,
    };
    let events = rd.varint()?;

    let n_slots = usize::try_from(rd.varint()?).ok()?;
    // A slot costs at least 10 bytes encoded; reject fantastic counts
    // before allocating.
    if n_slots > payload.len() {
        return None;
    }
    let slots = if version == 2 {
        // v2: dense side table, one record per slot.
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            slots.push(read_slot(&mut rd)?);
        }
        slots
    } else {
        // v3 hot-slot index: only referenced records are present; rebuild
        // the table at its logical size with placeholders elsewhere.
        let n_written = usize::try_from(rd.varint()?).ok()?;
        if n_written > n_slots {
            return None;
        }
        let indices: Vec<usize> = if n_written < n_slots {
            let mut indices = Vec::with_capacity(n_written);
            let mut prev = 0u64;
            for k in 0..n_written {
                let delta = rd.varint()?;
                let idx = if k == 0 {
                    delta
                } else {
                    // Strictly ascending: a zero delta (duplicate index)
                    // is malformed.
                    if delta == 0 {
                        return None;
                    }
                    prev.checked_add(delta)?
                };
                if idx >= n_slots as u64 {
                    return None;
                }
                prev = idx;
                indices.push(idx as usize);
            }
            indices
        } else {
            (0..n_written).collect()
        };
        let mut slots = vec![placeholder_slot(); n_slots];
        for idx in indices {
            slots[idx] = read_slot(&mut rd)?;
        }
        slots
    };

    let stream_len = usize::try_from(rd.varint()?).ok()?;
    let stream_start = 12 + rd.pos;
    rd.take(stream_len)?;
    if rd.pos != payload.len() {
        return None; // trailing garbage
    }
    Some(Parsed {
        key,
        slots,
        stats: RunStats {
            retired,
            cond_branches,
            in_package,
            stop,
        },
        events,
        stream_start,
        stream_len,
    })
}

/// Deserializes a byte image produced by [`encode`], returning the echoed
/// key alongside the capture. Returns `None` on any mismatch — wrong
/// magic, unsupported version, CRC failure, or malformed payload — so
/// callers re-execute instead of replaying garbage.
///
/// The production load path is [`decode_owned`] (it reuses the file
/// buffer); this borrowed variant is the conformance surface the format
/// tests pin down.
#[cfg_attr(not(test), allow(dead_code))]
pub(super) fn decode(bytes: &[u8]) -> Option<(TraceKey, CapturedTrace)> {
    let p = parse(bytes)?;
    let stream = bytes[p.stream_start..p.stream_start + p.stream_len].to_vec();
    Some((
        p.key,
        CapturedTrace::assemble(p.slots, stream.into(), p.stats, p.events),
    ))
}

/// [`decode`] taking ownership of the file image: the dynamic stream — the
/// bulk of every `.vptrace` — is slid to the front of the buffer with a
/// `memmove` and the allocation is reused, instead of copying it into a
/// second freshly-allocated `Vec`. This is the [`DiskTier::load`] path, so
/// a warm sweep start performs one read and zero re-allocations per trace.
pub(super) fn decode_owned(mut bytes: Vec<u8>) -> Option<(TraceKey, CapturedTrace)> {
    let p = parse(&bytes)?;
    bytes.copy_within(p.stream_start..p.stream_start + p.stream_len, 0);
    bytes.truncate(p.stream_len);
    Some((
        p.key,
        CapturedTrace::assemble(p.slots, bytes.into(), p.stats, p.events),
    ))
}

/// [`decode`] over a memory-mapped image: after parse + CRC validation
/// the dynamic stream — the bulk of every `.vptrace` — is kept as a
/// window into the mapping instead of being copied anywhere. The side
/// table and derived decode columns are still materialized (they are
/// random-access-hot during replay and tiny next to the stream), so a
/// load performs zero stream-sized allocations or copies: the kernel's
/// page cache is the only copy of the stream bytes.
pub(super) fn decode_mapped(map: Arc<mmap::MappedFile>) -> Option<(TraceKey, CapturedTrace)> {
    let p = parse(map.as_slice())?;
    let (off, len) = (p.stream_start, p.stream_len);
    Some((
        p.key,
        CapturedTrace::assemble(
            p.slots,
            StreamBytes::Mapped { map, off, len },
            p.stats,
            p.events,
        ),
    ))
}

/// Parses a `VP_TRACE_MMAP`-style value: anything but `0` (the explicit
/// opt-out) leaves mapping enabled.
fn mmap_enabled_from(spec: Option<&str>) -> bool {
    spec.is_none_or(|v| v.trim() != "0")
}

/// Whether `DiskTier::load` may memory-map (`VP_TRACE_MMAP`, default on).
fn mmap_enabled() -> bool {
    mmap_enabled_from(std::env::var("VP_TRACE_MMAP").ok().as_deref())
}

// -------------------------------------------------------------- the tier

/// Parses a `VP_TRACE_DISK_MB`-style value; `None`/unparsable falls back
/// to [`DEFAULT_DISK_MB`]. `0` disables the tier entirely.
fn disk_mb_from(spec: Option<&str>) -> u64 {
    spec.and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_DISK_MB)
}

/// The on-disk persistence tier: a directory of `.vptrace` files keyed by
/// [`TraceKey`] fingerprint, bounded by a byte budget with mtime-LRU
/// eviction.
#[derive(Debug)]
pub struct DiskTier {
    root: PathBuf,
    cap_bytes: u64,
}

impl DiskTier {
    /// Creates (and, if needed, mkdir-p's) a tier rooted at `root` with a
    /// byte budget.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>, cap_bytes: u64) -> io::Result<DiskTier> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskTier { root, cap_bytes })
    }

    /// Builds the tier from `VP_TRACE_DIR` / `VP_TRACE_DISK_MB` (default
    /// 2048 MB). Returns `None` when `VP_TRACE_DIR` is unset/empty, the
    /// budget is 0, or the directory cannot be created (with a warning:
    /// persistence is an accelerator, never a correctness requirement).
    pub fn from_env() -> Option<DiskTier> {
        let dir = std::env::var("VP_TRACE_DIR").ok()?;
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        let mb = disk_mb_from(std::env::var("VP_TRACE_DISK_MB").ok().as_deref());
        if mb == 0 {
            return None;
        }
        match DiskTier::new(dir, mb.saturating_mul(1024 * 1024)) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("vp-exec: VP_TRACE_DIR={dir} unusable ({e}); disk tier disabled");
                None
            }
        }
    }

    /// The tier's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// The file a key persists to: a sanitized workload prefix for
    /// debuggability plus a 16-hex-digit fingerprint over every key field.
    pub fn path_for(&self, key: &TraceKey) -> PathBuf {
        // FNV-1a over every key field; the workload prefix alone is not
        // unique (same label, different scale/layout/config/variant).
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix_byte = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in key.workload.bytes() {
            mix_byte(b);
        }
        for v in [key.fingerprint, key.variant, key.max_insts, key.max_depth] {
            for b in v.to_le_bytes() {
                mix_byte(b);
            }
        }
        let prefix: String = key
            .workload
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root.join(format!("{prefix}-{h:016x}.{EXT}"))
    }

    /// Loads `key`'s capture, verifying version, CRC, and the header's key
    /// echo. Returns `None` (and deletes the file, so the slot heals on
    /// the next write) when the file is absent, truncated, corrupted, from
    /// another format version, or records a *different* key than the one
    /// requested. A successful load touches the file's mtime, giving the
    /// budget sweep true LRU order.
    ///
    /// On platforms with mmap support the file is memory-mapped and the
    /// dynamic stream stays a zero-copy window into the mapping;
    /// `VP_TRACE_MMAP=0` or an mmap failure falls back
    /// to the owned single-allocation read. Either way the CRC is verified
    /// in full before anything replays.
    pub fn load(&self, key: &TraceKey) -> Option<CapturedTrace> {
        self.load_with(key, mmap_enabled())
    }

    /// [`DiskTier::load`] with the mmap decision made by the caller
    /// instead of the `VP_TRACE_MMAP` knob — the replay bench uses this to
    /// measure the zero-copy and owned-read paths side by side.
    pub fn load_with(&self, key: &TraceKey, use_mmap: bool) -> Option<CapturedTrace> {
        let path = self.path_for(key);
        let mapped = if use_mmap {
            mmap::MappedFile::map(&path)
                .map(Arc::new)
                .and_then(decode_mapped)
        } else {
            None
        };
        let decoded = match mapped {
            Some(d) => Some(d),
            // `?`: an absent file is a plain miss, not a corrupt entry —
            // don't fall through to the delete arm below.
            None => decode_owned(fs::read(&path).ok()?),
        };
        match decoded {
            Some((echoed, trace)) if echoed == *key => {
                DISK_HITS.incr();
                // Flight payload: (file bytes, event count).
                vp_trace::flight("trace_store.disk_hit", trace.bytes() as u64, trace.events);
                // Best-effort recency bump; eviction degrades to
                // least-recently-written if the touch fails.
                if let Ok(f) = fs::File::options().write(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(trace)
            }
            _ => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists `trace` under `key` atomically (temp file + rename), then
    /// evicts oldest-mtime files until the directory fits the budget.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the caller treats them as a cache miss.
    pub fn store(&self, key: &TraceKey, trace: &CapturedTrace) -> io::Result<()> {
        let bytes = encode(key, trace);
        if bytes.len() as u64 > self.cap_bytes {
            return Ok(()); // larger than the whole budget: not persistable
        }
        let path = self.path_for(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        DISK_BYTES.add(bytes.len() as u64);
        self.evict_to_budget(&path);
        Ok(())
    }

    /// Total bytes currently resident in the tier.
    pub fn resident_bytes(&self) -> u64 {
        self.scan().into_iter().map(|(_, len, _)| len).sum()
    }

    /// Number of captures currently resident in the tier.
    pub fn len(&self) -> usize {
        self.scan().len()
    }

    /// Whether the tier holds no captures.
    pub fn is_empty(&self) -> bool {
        self.scan().is_empty()
    }

    fn scan(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                out.push((path, meta.len(), mtime));
            }
        }
        out
    }

    fn evict_to_budget(&self, keep: &Path) {
        let mut files = self.scan();
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        if total <= self.cap_bytes {
            return;
        }
        // Oldest first; the tie-break on path keeps eviction deterministic
        // when a filesystem's mtime granularity groups writes.
        files.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        for (path, len, _) in files {
            if total <= self.cap_bytes {
                break;
            }
            if path == keep {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                DISK_EVICTIONS.incr();
                // Flight payload: (evicted file bytes, resident bytes after).
                vp_trace::flight("trace_store.disk_evict", len, total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::sample_program;
    use super::super::{TraceKey, TraceStore};
    use super::*;
    use crate::event::InstCounts;
    use crate::event::Sink;
    use crate::exec::RunConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tempdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vptrace-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise_at_every_length() {
        // The slice-by-8 kernel has three regimes (empty, <8-byte tail,
        // full rounds + tail); pin all of them against the reference
        // byte-at-a-time recurrence over table 0.
        fn reference(data: &[u8]) -> u32 {
            let mut c = !0u32;
            for &b in data {
                c = (c >> 8) ^ CRC32_TABLES[0][((c ^ u32::from(b)) & 0xff) as usize];
            }
            !c
        }
        let data: Vec<u8> = (0..1024u32)
            .map(|i| i.wrapping_mul(2_654_435_761) as u8)
            .collect();
        for len in (0..64).chain([255, 256, 1000, 1024]) {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn decode_mapped_matches_decode() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("mapped", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let bytes = encode(&key, &trace);

        let dir = tempdir("mapped");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.vptrace");
        fs::write(&path, &bytes).unwrap();

        let Some(map) = mmap::MappedFile::map(&path) else {
            assert!(!mmap::MappedFile::supported());
            let _ = fs::remove_dir_all(&dir);
            return;
        };
        let (km, m) = decode_mapped(std::sync::Arc::new(map)).expect("mapped image decodes");
        let (kd, d) = decode(&bytes).unwrap();
        assert_eq!(km, kd);
        assert_eq!(m.stats(), d.stats());
        assert_eq!(events_of(&m), events_of(&d));

        // Corruption is refused on the mapped path too.
        let mut bad = bytes;
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        let map = mmap::MappedFile::map(&path).unwrap();
        assert!(decode_mapped(std::sync::Arc::new(map)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_load_survives_eviction_of_the_backing_file() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("unlinked", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();

        let tier = DiskTier::new(tempdir("unlink"), 64 * 1024 * 1024).unwrap();
        tier.store(&key, &trace).unwrap();
        let loaded = tier.load(&key).expect("warm tier hits");
        // Another process's eviction unlinks the file while we hold the
        // capture; the mapping (or owned buffer) must stay replayable.
        fs::remove_file(tier.path_for(&key)).unwrap();
        assert_eq!(events_of(&loaded), events_of(&trace));
        let _ = fs::remove_dir_all(tier.root());
    }

    #[test]
    fn mmap_knob_parsing() {
        assert!(mmap_enabled_from(None));
        assert!(mmap_enabled_from(Some("1")));
        assert!(mmap_enabled_from(Some("junk")));
        assert!(!mmap_enabled_from(Some("0")));
        assert!(!mmap_enabled_from(Some(" 0 ")));
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("roundtrip", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let (echoed, reloaded) = decode(&encode(&key, &trace)).expect("roundtrip decodes");

        assert_eq!(echoed, key, "header echoes the owning key");
        assert_eq!(trace.stats(), reloaded.stats());
        assert_eq!(trace.events(), reloaded.events());

        struct Collect(Vec<Retired>);
        impl Sink for Collect {
            fn retire(&mut self, r: &Retired) {
                self.0.push(*r);
            }
        }
        let mut a = Collect(Vec::new());
        let mut b = Collect(Vec::new());
        trace.replay(&mut a);
        reloaded.replay(&mut b);
        assert_eq!(a.0, b.0, "replayed streams must be identical");
    }

    fn events_of(trace: &CapturedTrace) -> Vec<Retired> {
        struct Collect(Vec<Retired>);
        impl Sink for Collect {
            fn retire(&mut self, r: &Retired) {
                self.0.push(*r);
            }
        }
        let mut c = Collect(Vec::new());
        trace.replay(&mut c);
        c.0
    }

    #[test]
    fn v2_files_remain_readable() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("legacy", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();

        let v2 = encode_versioned(&key, &trace, 2);
        assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2);
        let (echoed, reloaded) = decode(&v2).expect("v2 image still decodes");
        assert_eq!(echoed, key);
        assert_eq!(trace.stats(), reloaded.stats());
        assert_eq!(events_of(&trace), events_of(&reloaded));
    }

    #[test]
    fn v2_to_v3_roundtrip_is_bit_exact() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("upgrade", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();

        // Read a v2 file, re-persist (always v3), read that back: the
        // upgrade path a warmed pre-v3 cache directory takes.
        let (_, from_v2) = decode(&encode_versioned(&key, &trace, 2)).unwrap();
        let v3 = encode(&key, &from_v2);
        assert_eq!(
            u32::from_le_bytes(v3[4..8].try_into().unwrap()),
            FORMAT_VERSION
        );
        let (echoed, from_v3) = decode(&v3).expect("v3 image decodes");
        assert_eq!(echoed, key);
        assert_eq!(trace.stats(), from_v3.stats());
        assert_eq!(trace.events(), from_v3.events());
        assert_eq!(events_of(&trace), events_of(&from_v3));
    }

    #[test]
    fn v3_hot_slot_index_drops_unreferenced_slots() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("hotslots", &p, &layout, &cfg);
        let mut trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let reference = events_of(&trace);

        // Dead side-table weight: slots the stream never references (as a
        // truncation pass or a foreign producer would leave behind).
        let dead = trace.slots[0].clone();
        for _ in 0..64 {
            trace.slots.push(dead.clone());
        }

        let v2 = encode_versioned(&key, &trace, 2);
        let v3 = encode(&key, &trace);
        assert!(
            v3.len() < v2.len(),
            "hot-slot index must shrink the image: v3={} v2={}",
            v3.len(),
            v2.len()
        );

        let (_, reloaded) = decode(&v3).expect("sparse v3 decodes");
        assert_eq!(
            reloaded.slots.len(),
            trace.slots.len(),
            "logical side-table size survives"
        );
        assert_eq!(events_of(&reloaded), reference);
    }

    #[test]
    fn decode_owned_matches_decode() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("owned", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let bytes = encode(&key, &trace);

        let (ka, a) = decode(&bytes).unwrap();
        let (kb, b) = decode_owned(bytes.clone()).unwrap();
        assert_eq!(ka, kb);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(events_of(&a), events_of(&b));

        // Corruption is refused identically.
        let mut bad = bytes;
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(decode_owned(bad).is_none());
    }

    #[test]
    fn decode_refuses_corruption() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("corrupt", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let good = encode(&key, &trace);
        assert!(decode(&good).is_some());

        // Truncation at every boundary of interest.
        for cut in [0, 4, 11, 12, good.len() / 2, good.len() - 1] {
            assert!(decode(&good[..cut]).is_none(), "truncated at {cut}");
        }
        // A single flipped bit anywhere must be caught by the CRC (or the
        // magic/version checks).
        for pos in [0, 5, 9, 20, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_none(), "bit flip at {pos}");
        }
        // Unsupported versions: the future and the pre-echo past.
        for v in [FORMAT_VERSION + 1, MIN_READ_VERSION - 1] {
            let mut wrong = good.clone();
            wrong[4..8].copy_from_slice(&v.to_le_bytes());
            assert!(decode(&wrong).is_none(), "version {v} refused");
        }
    }

    #[test]
    fn tier_store_load_and_self_heal() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("w", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();

        let tier = DiskTier::new(tempdir("roundtrip"), 64 * 1024 * 1024).unwrap();
        assert!(tier.load(&key).is_none(), "cold tier misses");
        tier.store(&key, &trace).unwrap();
        assert_eq!(tier.len(), 1);

        let loaded = tier.load(&key).expect("warm tier hits");
        let (mut a, mut b) = (InstCounts::new(), InstCounts::new());
        trace.replay(&mut a);
        loaded.replay(&mut b);
        assert_eq!(a, b);

        // Corrupt the file in place: load refuses *and* removes it.
        let path = tier.path_for(&key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(tier.load(&key).is_none());
        assert!(!path.exists(), "corrupt entry is deleted");
        let _ = fs::remove_dir_all(tier.root());
    }

    #[test]
    fn load_refuses_a_file_recorded_for_another_key() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key_a = TraceKey::new("alpha", &p, &layout, &cfg);
        let key_b = TraceKey::new("beta", &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();

        let tier = DiskTier::new(tempdir("echo"), 64 * 1024 * 1024).unwrap();
        tier.store(&key_a, &trace).unwrap();
        // Simulate a path-hash collision: key B's slot holds key A's file.
        fs::rename(tier.path_for(&key_a), tier.path_for(&key_b)).unwrap();
        assert!(tier.load(&key_b).is_none(), "key echo mismatch refused");
        assert!(
            !tier.path_for(&key_b).exists(),
            "mismatched entry is deleted"
        );
        let _ = fs::remove_dir_all(tier.root());
    }

    #[test]
    fn header_string_table_stores_workload_once() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let name = "a-rather-long-workload-name-that-would-hurt-if-repeated";
        let key = TraceKey::new(name, &p, &layout, &cfg);
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let bytes = encode(&key, &trace);
        let hits = bytes
            .windows(name.len())
            .filter(|w| *w == name.as_bytes())
            .count();
        assert_eq!(hits, 1, "workload name appears exactly once in the image");
    }

    #[test]
    fn tier_evicts_oldest_beyond_budget() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let trace = CapturedTrace::capture(&p, &layout, &cfg).unwrap();
        let one = encode(&TraceKey::new("a", &p, &layout, &cfg), &trace).len() as u64;

        let tier = DiskTier::new(tempdir("evict"), 2 * one + 1).unwrap();
        let keys: Vec<TraceKey> = ["a", "b", "c"]
            .iter()
            .map(|l| TraceKey::new(l, &p, &layout, &cfg))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            // Filesystem mtime granularity can be 1 ms; space the writes
            // out so eviction order is the write order.
            if i > 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            tier.store(key, &trace).unwrap();
        }
        assert_eq!(tier.len(), 2, "third write evicts the oldest");
        assert!(tier.resident_bytes() <= tier.capacity_bytes());
        assert!(tier.load(&keys[0]).is_none(), "oldest entry was evicted");
        assert!(tier.load(&keys[2]).is_some());
        let _ = fs::remove_dir_all(tier.root());
    }

    #[test]
    fn store_with_disk_survives_memory_clear() {
        let (p, layout) = sample_program();
        let cfg = RunConfig::default();
        let key = TraceKey::new("persisted", &p, &layout, &cfg);
        let dir = tempdir("store");

        let store = TraceStore::with_capacity_mb(4)
            .with_disk(Some(DiskTier::new(&dir, 64 * 1024 * 1024).unwrap()));
        let mut first = InstCounts::new();
        store
            .capture_or_replay(key.clone(), &p, &layout, &cfg, &mut first)
            .unwrap();

        // Simulate a process restart: fresh memory tier, same directory.
        let fresh = TraceStore::with_capacity_mb(4)
            .with_disk(Some(DiskTier::new(&dir, 64 * 1024 * 1024).unwrap()));
        let ((), report) = vp_trace::scoped(|| {
            let mut second = InstCounts::new();
            fresh
                .capture_or_replay(key.clone(), &p, &layout, &cfg, &mut second)
                .unwrap();
            assert_eq!(first, second);
        });
        assert_eq!(report.counter("trace_store.captures"), 0);
        assert_eq!(report.counter("trace_store.disk_hits"), 1);
        assert_eq!(report.counter("trace_store.replays"), 1);
        assert_eq!(fresh.len(), 1, "disk hit promotes into memory");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_mb_parsing() {
        assert_eq!(disk_mb_from(None), DEFAULT_DISK_MB);
        assert_eq!(disk_mb_from(Some("64")), 64);
        assert_eq!(disk_mb_from(Some(" 0 ")), 0);
        assert_eq!(disk_mb_from(Some("junk")), DEFAULT_DISK_MB);
    }
}
