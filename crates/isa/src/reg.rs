//! Architectural registers.
//!
//! The register file is a single unified namespace: integer registers
//! `r0..r63` (with `r0` hard-wired to zero) followed by floating-point
//! registers `f0..f31`. Unifying the namespaces keeps data-flow analysis in
//! `vp-program` a single-lattice problem, the same simplification the IMPACT
//! infrastructure uses internally.

/// Number of integer registers (`r0..r63`).
pub const NUM_INT_REGS: u8 = 64;
/// Number of floating-point registers (`f0..f31`).
pub const NUM_FP_REGS: u8 = 32;
/// Total number of architectural registers.
pub const NUM_REGS: usize = (NUM_INT_REGS + NUM_FP_REGS) as usize;

/// An architectural register.
///
/// ```
/// use vp_isa::Reg;
/// assert!(Reg::fp(0).is_fp());
/// assert!(!Reg::int(10).is_fp());
/// assert_eq!(Reg::ZERO, Reg::int(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `r0`. Writes are discarded.
    pub const ZERO: Reg = Reg(0);
    /// The stack pointer `r1`, by software convention.
    pub const SP: Reg = Reg(1);
    /// The global/data pointer `r2`, by software convention.
    pub const GP: Reg = Reg(2);
    /// First argument / return value register `r4`, by software convention.
    pub const ARG0: Reg = Reg(4);

    /// Integer register `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 64`.
    pub fn int(n: u8) -> Reg {
        assert!(n < NUM_INT_REGS, "integer register r{n} out of range");
        Reg(n)
    }

    /// Floating-point register `f{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!(n < NUM_FP_REGS, "fp register f{n} out of range");
        Reg(NUM_INT_REGS + n)
    }

    /// The `n`-th argument register (`r4..r11`), by software convention.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn arg(n: u8) -> Reg {
        assert!(n < 8, "argument register index {n} out of range");
        Reg(4 + n)
    }

    /// Whether this is a floating-point register.
    pub fn is_fp(self) -> bool {
        self.0 >= NUM_INT_REGS
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The flat index of this register in `0..NUM_REGS`, usable as a
    /// register-file or liveness bit-set index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a register from a flat index produced by [`Reg::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGS`.
    pub fn from_index(idx: usize) -> Reg {
        assert!(idx < NUM_REGS, "register index {idx} out of range");
        Reg(idx as u8)
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - NUM_INT_REGS)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// A dense bit set over the architectural registers, used by liveness
/// analysis and by exit-block construction.
///
/// ```
/// use vp_isa::reg::RegSet;
/// use vp_isa::Reg;
///
/// let mut s = RegSet::new();
/// s.insert(Reg::int(5));
/// assert!(s.contains(Reg::int(5)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet {
    bits: u128,
}

impl RegSet {
    /// Creates an empty register set.
    pub fn new() -> RegSet {
        RegSet::default()
    }

    /// Inserts a register; returns `true` if it was newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let mask = 1u128 << r.index();
        let fresh = self.bits & mask == 0;
        self.bits |= mask;
        fresh
    }

    /// Removes a register; returns `true` if it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let mask = 1u128 << r.index();
        let present = self.bits & mask != 0;
        self.bits &= !mask;
        present
    }

    /// Whether the set contains `r`.
    pub fn contains(&self, r: Reg) -> bool {
        self.bits & (1u128 << r.index()) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let before = self.bits;
        self.bits |= other.bits;
        self.bits != before
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterates over the members in ascending register-index order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        (0..super::reg::NUM_REGS)
            .filter(|&i| self.bits & (1u128 << i) != 0)
            .map(Reg::from_index)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<T: IntoIterator<Item = Reg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_are_distinct() {
        assert_ne!(Reg::int(0), Reg::fp(0));
        assert_eq!(Reg::fp(0).index(), 64);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(7).to_string(), "r7");
        assert_eq!(Reg::fp(3).to_string(), "f3");
        assert_eq!(Reg::SP.to_string(), "r1");
    }

    #[test]
    #[should_panic]
    fn int_register_out_of_range_panics() {
        Reg::int(64);
    }

    #[test]
    #[should_panic]
    fn fp_register_out_of_range_panics() {
        Reg::fp(32);
    }

    #[test]
    fn regset_roundtrip() {
        let mut s = RegSet::new();
        assert!(s.insert(Reg::int(3)));
        assert!(!s.insert(Reg::int(3)));
        assert!(s.insert(Reg::fp(1)));
        assert_eq!(s.len(), 2);
        let regs: Vec<Reg> = s.iter().collect();
        assert_eq!(regs, vec![Reg::int(3), Reg::fp(1)]);
        assert!(s.remove(Reg::int(3)));
        assert!(!s.remove(Reg::int(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regset_union() {
        let a: RegSet = [Reg::int(1), Reg::int(2)].into_iter().collect();
        let mut b: RegSet = [Reg::int(2), Reg::int(3)].into_iter().collect();
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn from_index_roundtrip() {
        for i in 0..NUM_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }
}
