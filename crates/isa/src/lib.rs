//! # vp-isa
//!
//! Instruction-set definitions for the Vacuum Packing reproduction.
//!
//! The paper's system operates on IMPACT-compiled EPIC binaries. This crate
//! provides the equivalent substrate: a load/store, statically-scheduled
//! instruction set with the functional-unit classes of the paper's Table 2
//! machine (integer ALU, floating point, memory, and control).
//!
//! Control-flow transfers are *not* ordinary instructions here: basic blocks
//! in `vp-program` carry an explicit terminator, and the final encoding
//! cost of a terminator (zero, one, or two control instructions) is decided
//! at layout time, exactly like a real post-link rewriter deciding whether a
//! successor can be reached by fall-through.
//!
//! ```
//! use vp_isa::{Inst, Reg, Src, AluOp};
//!
//! let add = Inst::Alu { op: AluOp::Add, rd: Reg::int(5), rs1: Reg::int(6), rs2: Src::Imm(1) };
//! assert_eq!(add.defs(), vec![Reg::int(5)]);
//! assert_eq!(add.uses(), vec![Reg::int(6)]);
//! ```

#![warn(missing_docs)]

pub mod fp;
pub mod inst;
pub mod reg;

pub use fp::Fnv;
pub use inst::{AluOp, Cond, FaluOp, FuClass, Inst, Src};
pub use reg::Reg;

/// Size in bytes of one encoded instruction. Every instruction in this ISA
/// occupies a fixed slot, as in the EPIC encodings the paper targets.
pub const INST_BYTES: u64 = 4;

/// Identifier of a function within a `vp-program` program.
///
/// Function ids are dense indices assigned by the program builder; extracted
/// packages receive fresh ids appended after the original functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifier of a basic block, local to its owning function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A global code location: a basic block within a specific function.
///
/// Cross-function `CodeRef`s are what make post-link rewriting expressible:
/// launch points in original code jump into package functions, and package
/// exits jump back into the middle of original functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CodeRef {
    /// The function containing the referenced block.
    pub func: FuncId,
    /// The referenced block within `func`.
    pub block: BlockId,
}

impl CodeRef {
    /// Creates a code reference from raw indices.
    ///
    /// ```
    /// let r = vp_isa::CodeRef::new(2, 7);
    /// assert_eq!(r.func.0, 2);
    /// assert_eq!(r.block.0, 7);
    /// ```
    pub fn new(func: u32, block: u32) -> Self {
        CodeRef {
            func: FuncId(func),
            block: BlockId(block),
        }
    }
}

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl std::fmt::Display for CodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.func, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_ref_display() {
        assert_eq!(CodeRef::new(3, 4).to_string(), "fn3:b4");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(FuncId(1) < FuncId(2));
        assert!(BlockId(0) < BlockId(9));
        assert!(CodeRef::new(0, 5) < CodeRef::new(1, 0));
    }
}
