//! Non-control instructions, operand sources, and machine-resource classes.
//!
//! Control transfers live in `vp-program`'s block terminators; everything
//! here is straight-line computation. Each instruction knows its defined and
//! used registers (for liveness and scheduling dependence), its functional
//! unit class, and its result latency on the Table 2 machine.

use crate::reg::Reg;

/// A second source operand: either a register or a small immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Register source.
    Reg(Reg),
    /// Immediate source.
    Imm(i64),
}

impl Src {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Src::Reg(r) => Some(r),
            Src::Imm(_) => None,
        }
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Src {
        Src::Reg(r)
    }
}

impl From<i64> for Src {
    fn from(v: i64) -> Src {
        Src::Imm(v)
    }
}

impl std::fmt::Display for Src {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (multi-cycle).
    Mul,
    /// Signed division (long latency). Division by zero yields 0.
    Div,
    /// Signed remainder (long latency). Remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    Shr,
    /// Arithmetic shift right (modulo 64).
    Sra,
    /// Set if less than (signed): `rd = (rs1 < rs2) as u64`.
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Set if equal: `rd = (rs1 == rs2) as u64`.
    Seq,
}

impl AluOp {
    /// Result latency in cycles on the Table 2 machine.
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 12,
            _ => 1,
        }
    }
}

/// Floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaluOp {
    /// FP addition.
    Add,
    /// FP subtraction.
    Sub,
    /// FP multiplication.
    Mul,
    /// FP division (long latency).
    Div,
    /// FP minimum.
    Min,
    /// FP maximum.
    Max,
}

impl FaluOp {
    /// Result latency in cycles on the Table 2 machine. Division is a
    /// long-latency FP operation.
    pub fn latency(self) -> u32 {
        match self {
            FaluOp::Div => 15,
            FaluOp::Min | FaluOp::Max => 2,
            _ => 3,
        }
    }
}

/// Conditional-branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// The condition taken when this one is not: used by layout to flip a
    /// branch so the hot successor becomes the fall-through.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// Evaluates the condition on two 64-bit values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

/// Functional-unit classes of the Table 2 machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU (5 units).
    IntAlu,
    /// Floating point, including long-latency FP (3 units).
    Fp,
    /// Memory (3 units).
    Mem,
    /// Control / branch (3 units).
    Branch,
}

/// A non-control instruction.
///
/// `defs`/`uses` expose the register-level data-flow needed by liveness
/// analysis, the exit-block dummy-consumer machinery, and the list
/// scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// No operation (schedule filler).
    Nop,
    /// Load immediate: `rd = imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// FP load immediate: `rd = bits(imm)`.
    Fli {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: f64,
    },
    /// Register move: `rd = rs`.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// Integer ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// Operation performed.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source (register or immediate).
        rs2: Src,
    },
    /// FP operation: `rd = op(rs1, rs2)` (all registers FP).
    Falu {
        /// Operation performed.
        op: FaluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Convert integer to FP: `rd = rs as f64`.
    Itof {
        /// Destination (FP) register.
        rd: Reg,
        /// Source (integer) register.
        rs: Reg,
    },
    /// Convert FP to integer (truncating): `rd = rs as i64`.
    Ftoi {
        /// Destination (integer) register.
        rd: Reg,
        /// Source (FP) register.
        rs: Reg,
    },
    /// Load a 64-bit word: `rd = mem[rs(base) + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Store a 64-bit word: `mem[rs(base) + offset] = src`.
    Store {
        /// Register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Pseudo-instruction: dummy consumers for registers live across a
    /// package exit (Section 3.3.1 of the paper). It executes as a no-op and
    /// exists so that data-flow analysis sees the exit's liveness without
    /// special cases.
    Consume {
        /// Registers live across the exit this pseudo-instruction guards.
        regs: Vec<Reg>,
    },
}

impl Inst {
    /// Registers written by this instruction. Writes to `r0` are discarded
    /// at execution but still reported here; the builder never emits them.
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Inst::Nop | Inst::Store { .. } | Inst::Consume { .. } => vec![],
            Inst::Li { rd, .. }
            | Inst::Fli { rd, .. }
            | Inst::Mov { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::Falu { rd, .. }
            | Inst::Itof { rd, .. }
            | Inst::Ftoi { rd, .. }
            | Inst::Load { rd, .. } => vec![*rd],
        }
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        match self {
            Inst::Nop | Inst::Li { .. } | Inst::Fli { .. } => {}
            Inst::Mov { rs, .. } | Inst::Itof { rs, .. } | Inst::Ftoi { rs, .. } => out.push(*rs),
            Inst::Alu { rs1, rs2, .. } => {
                out.push(*rs1);
                if let Src::Reg(r) = rs2 {
                    out.push(*r);
                }
            }
            Inst::Falu { rs1, rs2, .. } => {
                out.push(*rs1);
                out.push(*rs2);
            }
            Inst::Load { base, .. } => out.push(*base),
            Inst::Store { src, base, .. } => {
                out.push(*src);
                out.push(*base);
            }
            Inst::Consume { regs } => out.extend(regs.iter().copied()),
        }
        out.retain(|r| !r.is_zero());
        out
    }

    /// The functional-unit class that executes this instruction.
    pub fn fu(&self) -> FuClass {
        match self {
            Inst::Load { .. } | Inst::Store { .. } => FuClass::Mem,
            Inst::Falu { .. } | Inst::Fli { .. } | Inst::Itof { .. } | Inst::Ftoi { .. } => {
                FuClass::Fp
            }
            _ => FuClass::IntAlu,
        }
    }

    /// Result latency in cycles (time until a dependent instruction may
    /// issue, with full bypassing). Loads report their L1-hit latency; the
    /// timing model extends it on a miss.
    pub fn latency(&self) -> u32 {
        match self {
            Inst::Alu { op, .. } => op.latency(),
            Inst::Falu { op, .. } => op.latency(),
            Inst::Itof { .. } | Inst::Ftoi { .. } => 2,
            Inst::Load { .. } => 2,
            _ => 1,
        }
    }

    /// Whether this instruction touches memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Fli { rd, imm } => write!(f, "fli {rd}, {imm}"),
            Inst::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}").map(|_| ()),
            Inst::Falu { op, rd, rs1, rs2 } => write!(f, "f{op:?} {rd}, {rs1}, {rs2}"),
            Inst::Itof { rd, rs } => write!(f, "itof {rd}, {rs}"),
            Inst::Ftoi { rd, rs } => write!(f, "ftoi {rd}, {rs}"),
            Inst::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Inst::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Inst::Consume { regs } => {
                write!(f, "consume")?;
                for r in regs {
                    write!(f, " {r}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses_cover_operands() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::int(3),
            rs1: Reg::int(4),
            rs2: Src::Reg(Reg::int(5)),
        };
        assert_eq!(i.defs(), vec![Reg::int(3)]);
        assert_eq!(i.uses(), vec![Reg::int(4), Reg::int(5)]);
    }

    #[test]
    fn store_has_no_defs() {
        let i = Inst::Store {
            src: Reg::int(3),
            base: Reg::SP,
            offset: 8,
        };
        assert!(i.defs().is_empty());
        assert_eq!(i.uses(), vec![Reg::int(3), Reg::SP]);
    }

    #[test]
    fn zero_register_not_reported_as_use() {
        let i = Inst::Mov {
            rd: Reg::int(3),
            rs: Reg::ZERO,
        };
        assert!(i.uses().is_empty());
    }

    #[test]
    fn consume_uses_all_listed() {
        let i = Inst::Consume {
            regs: vec![Reg::int(1), Reg::fp(2)],
        };
        assert_eq!(i.uses().len(), 2);
        assert!(i.defs().is_empty());
    }

    #[test]
    fn latencies_follow_unit_classes() {
        assert_eq!(
            Inst::Alu {
                op: AluOp::Div,
                rd: Reg::int(1),
                rs1: Reg::int(2),
                rs2: Src::Imm(3)
            }
            .latency(),
            12
        );
        assert_eq!(
            Inst::Load {
                rd: Reg::int(1),
                base: Reg::SP,
                offset: 0
            }
            .latency(),
            2
        );
        assert_eq!(Inst::Nop.latency(), 1);
    }

    #[test]
    fn fu_classes() {
        assert_eq!(
            Inst::Load {
                rd: Reg::int(1),
                base: Reg::SP,
                offset: 0
            }
            .fu(),
            FuClass::Mem
        );
        assert_eq!(
            Inst::Falu {
                op: FaluOp::Add,
                rd: Reg::fp(0),
                rs1: Reg::fp(1),
                rs2: Reg::fp(2)
            }
            .fu(),
            FuClass::Fp
        );
        assert_eq!(Inst::Nop.fu(), FuClass::IntAlu);
    }

    #[test]
    fn cond_negate_is_involution() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu] {
            assert_eq!(c.negate().negate(), c);
            // A condition and its negation partition all outcomes.
            for (a, b) in [(1u64, 2u64), (2, 1), (5, 5), (u64::MAX, 0)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn cond_eval_signedness() {
        assert!(Cond::Lt.eval((-1i64) as u64, 0));
        assert!(!Cond::Ltu.eval((-1i64) as u64, 0));
    }
}
