//! Structural fingerprinting: an incremental FNV-1a hasher.
//!
//! Configuration structs across the workspace fold themselves into a
//! [`Fnv`] to produce stable 64-bit fingerprints for content-addressed
//! caching (trace captures, evaluation results). FNV-1a is used — not
//! `std::hash` — because the fingerprints are *persisted*: they must be
//! identical across processes, runs, and toolchain versions, while
//! `DefaultHasher` is explicitly allowed to change between releases.
//!
//! Every field is folded through a fixed-width little-endian encoding, so
//! two structs whose adjacent fields could alias under a naive byte
//! concatenation (`(1, 16)` vs `(11, 6)`) still hash differently.
//!
//! ```
//! use vp_isa::Fnv;
//!
//! let mut h = Fnv::new();
//! h.write_u64(3);
//! h.write_f64(0.25);
//! h.write_bool(true);
//! let fp = h.finish();
//! assert_ne!(fp, Fnv::new().finish());
//! ```

/// Incremental FNV-1a over 64-bit words.
///
/// All writes reduce to [`Fnv::write_u64`]: floats go through
/// [`f64::to_bits`] (bit-exact, `-0.0` and `0.0` hash differently, which
/// is the conservative choice for a cache key), booleans and enum
/// discriminants widen to `u64`.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

impl Fnv {
    /// FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the offset basis.
    pub const fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    /// Folds one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(Self::PRIME);
    }

    /// Folds a `usize` (widened to `u64`).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a `u32` (widened to `u64`).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Folds a boolean as `0`/`1`.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Folds an `f64` bit-exactly via [`f64::to_bits`].
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a byte string: its length, then each byte (the length prefix
    /// keeps `("ab", "c")` distinct from `("a", "bc")` in field
    /// sequences).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    /// Folds a UTF-8 string via [`Fnv::write_bytes`].
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The fingerprint accumulated so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a_over_words() {
        // One word through the textbook recurrence.
        let mut h = Fnv::new();
        h.write_u64(42);
        assert_eq!(h.finish(), (Fnv::OFFSET ^ 42).wrapping_mul(Fnv::PRIME));
    }

    #[test]
    fn field_order_matters() {
        let mut a = Fnv::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_string_aliasing() {
        let mut a = Fnv::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_bit_exactly() {
        let mut a = Fnv::new();
        a.write_f64(0.0);
        let mut b = Fnv::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "-0.0 is a distinct cache key");

        let mut c = Fnv::new();
        c.write_f64(0.25);
        let mut d = Fnv::new();
        d.write_f64(0.25);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn stable_across_calls() {
        // The fingerprint is persisted to disk: pin one value so an
        // accidental algorithm change fails loudly here rather than
        // silently invalidating every cache in the field.
        let mut h = Fnv::new();
        h.write_str("130.li A");
        h.write_u64(7);
        h.write_f64(0.25);
        h.write_bool(true);
        assert_eq!(h.finish(), {
            let mut r = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |v: u64| {
                r ^= v;
                r = r.wrapping_mul(0x0000_0100_0000_01b3);
            };
            mix(8);
            for b in "130.li A".bytes() {
                mix(u64::from(b));
            }
            mix(7);
            mix(0.25f64.to_bits());
            mix(1);
            r
        });
    }
}
