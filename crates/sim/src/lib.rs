//! # vp-sim
//!
//! Cycle-level timing substrate: the paper's Table 2 EPIC machine as a
//! trace-driven model.
//!
//! Attach a [`TimingModel`] to a `vp-exec` execution as a sink and read
//! cycle counts afterwards — the speedup experiment of the paper's
//! Figure 10 simulates the original and the vacuum-packed binary this way
//! and compares cycles.
//!
//! ```
//! use vp_program::{ProgramBuilder, Layout};
//! use vp_exec::{Executor, RunConfig};
//! use vp_sim::{TimingModel, MachineConfig};
//! use vp_isa::{Cond, Reg, Src};
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", |f| {
//!     let i = Reg::int(8);
//!     f.li(i, 0);
//!     f.while_(
//!         |f| f.cond(Cond::Lt, i, Src::Imm(1000)),
//!         |f| f.addi(i, i, 1),
//!     );
//!     f.halt();
//! });
//! let p = pb.build();
//! let layout = Layout::natural(&p);
//! let mut timing = TimingModel::new(MachineConfig::table2());
//! Executor::new(&p, &layout).run(&mut timing, &RunConfig::default())?;
//! assert!(timing.cycles() > 0);
//! assert!(timing.ipc() > 0.5); // tight loop, well predicted
//! # Ok::<(), vp_exec::ExecError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod pipeline;
pub mod predictor;

pub use cache::Cache;
pub use config::MachineConfig;
pub use pipeline::{TimingModel, TimingStats};
pub use predictor::{Btb, Gshare, Ras};
