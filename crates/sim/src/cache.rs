//! Set-associative LRU caches.

/// One cache line's bookkeeping: tag and LRU stamp live side by side so a
/// way scan that also inspects recency touches one 16-byte record instead
/// of two parallel arrays a cache line apart.
#[derive(Debug, Clone, Copy)]
struct Line {
    /// `u64::MAX` = invalid.
    tag: u64,
    stamp: u64,
}

/// A set-associative cache with true-LRU replacement. Only tags are
/// tracked — the timing model needs hit/miss behavior, not contents.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    /// Line-index shift when `line_bytes` is a power of two (the common
    /// geometry), letting the hot path skip a runtime 64-bit division.
    line_shift: Option<u32>,
    /// `lines[set * ways + way]`.
    lines: Vec<Line>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with the given associativity and
    /// line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a whole power-of-two
    /// number of sets.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Cache {
        let lines = size_bytes / line_bytes;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "bad cache geometry"
        );
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two"
        );
        Cache {
            sets,
            ways,
            line_bytes: line_bytes as u64,
            line_shift: (line_bytes as u64)
                .is_power_of_two()
                .then(|| (line_bytes as u64).trailing_zeros()),
            lines: vec![
                Line {
                    tag: u64::MAX,
                    stamp: 0
                };
                lines
            ],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `addr`, allocating on miss. Returns
    /// whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.line_bytes,
        };
        let set = (line as usize) & (self.sets - 1);
        let tag = line;
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];
        for l in set_lines.iter_mut() {
            if l.tag == tag {
                l.stamp = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| l.stamp)
            .expect("nonzero ways");
        victim.tag = tag;
        victim.stamp = self.clock;
        false
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x140), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 8 sets of 64B lines: three lines mapping to one set.
        let mut c = Cache::new(1024, 2, 64);
        let set_stride = 8 * 64; // lines that share a set
        let (a, b, d) = (0u64, set_stride as u64, 2 * set_stride as u64);
        c.access(a);
        c.access(b);
        c.access(a); // a most recent
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0);
        c.access(0);
        c.access(64);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        Cache::new(100, 3, 64);
    }
}
