//! Set-associative LRU caches.

/// A set-associative cache with true-LRU replacement. Only tags are
/// tracked — the timing model needs hit/miss behavior, not contents.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with the given associativity and
    /// line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a whole power-of-two
    /// number of sets.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Cache {
        let lines = size_bytes / line_bytes;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "bad cache geometry"
        );
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two"
        );
        Cache {
            sets,
            ways,
            line_bytes: line_bytes as u64,
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `addr`, allocating on miss. Returns
    /// whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.line_bytes;
        let set = (line as usize) & (self.sets - 1);
        let tag = line;
        let base = set * self.ways;
        let ways = base..base + self.ways;
        for i in ways.clone() {
            if self.tags[i] == tag {
                self.stamps[i] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        let victim = ways.min_by_key(|&i| self.stamps[i]).expect("nonzero ways");
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        false
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x140), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 8 sets of 64B lines: three lines mapping to one set.
        let mut c = Cache::new(1024, 2, 64);
        let set_stride = 8 * 64; // lines that share a set
        let (a, b, d) = (0u64, set_stride as u64, 2 * set_stride as u64);
        c.access(a);
        c.access(b);
        c.access(a); // a most recent
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0);
        c.access(0);
        c.access(64);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        Cache::new(100, 3, 64);
    }
}
