//! The trace-driven in-order EPIC timing model.
//!
//! The paper measures a ten-stage EPIC pipeline with the Table 2 resources.
//! This model replays the retired-instruction stream through the same
//! first-order constraints:
//!
//! * in-order issue of up to `issue_width` instructions per cycle, limited
//!   per functional-unit class;
//! * register scoreboarding with full bypassing (result latencies from
//!   `vp-isa`, extended by data-cache misses);
//! * a fetch model in which up to `issue_width` sequential instructions
//!   form a fetch group, a taken transfer ends the group, instruction-cache
//!   misses stall fetch, and branch mispredictions redirect fetch after the
//!   Table 2 branch-resolution latency;
//! * gshare + BTB + RAS prediction updated in retirement order.
//!
//! Wrong-path *execution* is approximated: on a misprediction the fetch
//! unit touches I-cache lines down the wrong direction for the resolution
//! window (cache pollution), but wrong-path instructions do not occupy
//! functional units. This shifts absolute cycle counts slightly but not
//! the relative comparisons the experiments report — see DESIGN.md.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::predictor::{Btb, Gshare, Ras};
use vp_exec::{col, CapturedTrace, ColumnBatch, Retired, Sink};
use vp_isa::reg::NUM_REGS;
use vp_isa::FuClass;

// Issue-bandwidth bookkeeping. Issue is in-order: every candidate issue
// cycle is clamped to at least `last_issue` (it participates in the
// readiness `max` chain), so cycles before `last_issue` are never probed
// again and cycles after it have never been issued to. The whole
// per-cycle table a naive model would keep therefore collapses to one
// packed counts word describing the `last_issue` cycle — byte lanes hold
// the total-issued count and the four per-FU-class counts (all bounded
// by `issue_width` ≤ 255).

/// Byte lane of the total-issued count in the packed issue-counts word.
const LANE_ISSUED: u32 = 0;
/// Byte lane base of the per-FU-class counts (class `k` is lane `1 + k`).
const LANE_FU: u32 = 8;

fn fu_index(c: FuClass) -> usize {
    match c {
        FuClass::IntAlu => 0,
        FuClass::Fp => 1,
        FuClass::Mem => 2,
        FuClass::Branch => 3,
    }
}

/// Aggregate timing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Instructions replayed.
    pub retired: u64,
    /// Conditional and return mispredictions.
    pub mispredicts: u64,
    /// Correctly-predicted taken transfers (each ends a fetch group).
    pub taken_redirects: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// L1 data-cache misses.
    pub dcache_misses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// Conditional branches replayed (direction-predictor lookups).
    pub cond_branches: u64,
    /// Return instructions replayed (RAS lookups).
    pub returns: u64,
    /// Instruction-cache demand accesses (one per fetched line).
    pub icache_accesses: u64,
    /// L1 data-cache accesses.
    pub dcache_accesses: u64,
    /// Unified L2 accesses (L1 misses from either side).
    pub l2_accesses: u64,
}

impl TimingStats {
    /// Fraction of predicted transfers (conditional branches and returns)
    /// resolved without a redirect.
    pub fn predictor_hit_rate(&self) -> f64 {
        let predicted = self.cond_branches + self.returns;
        if predicted == 0 {
            return 1.0;
        }
        1.0 - self.mispredicts as f64 / predicted as f64
    }

    /// Instruction-cache miss rate.
    pub fn icache_miss_rate(&self) -> f64 {
        rate(self.icache_misses, self.icache_accesses)
    }

    /// L1 data-cache miss rate.
    pub fn dcache_miss_rate(&self) -> f64 {
        rate(self.dcache_misses, self.dcache_accesses)
    }

    /// Unified L2 miss rate (relative to L2 accesses, i.e. L1 misses).
    pub fn l2_miss_rate(&self) -> f64 {
        rate(self.l2_misses, self.l2_accesses)
    }
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

use vp_trace::{Counter, Value};

static SIM_CYCLES: Counter = Counter::new("sim.cycles");
static SIM_RETIRED: Counter = Counter::new("sim.retired");
static SIM_MISPREDICTS: Counter = Counter::new("sim.mispredicts");
static SIM_COND_BRANCHES: Counter = Counter::new("sim.cond_branches");
static SIM_RETURNS: Counter = Counter::new("sim.returns");
static SIM_TAKEN_REDIRECTS: Counter = Counter::new("sim.taken_redirects");
static SIM_ICACHE_ACCESSES: Counter = Counter::new("sim.icache.accesses");
static SIM_ICACHE_MISSES: Counter = Counter::new("sim.icache.misses");
static SIM_DCACHE_ACCESSES: Counter = Counter::new("sim.dcache.accesses");
static SIM_DCACHE_MISSES: Counter = Counter::new("sim.dcache.misses");
static SIM_L2_ACCESSES: Counter = Counter::new("sim.l2.accesses");
static SIM_L2_MISSES: Counter = Counter::new("sim.l2.misses");

/// The timing model. Attach to an execution as a [`Sink`], then read
/// [`TimingModel::cycles`].
#[derive(Debug)]
pub struct TimingModel {
    cfg: MachineConfig,
    gshare: Gshare,
    btb: Btb,
    ras: Ras,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    reg_ready: [u64; NUM_REGS],
    last_issue: u64,
    /// Packed per-class issue counts for the `last_issue` cycle (see the
    /// `LANE_*` constants).
    issue_counts: u64,
    fetch_cycle: u64,
    fetch_left: u32,
    last_line: u64,
    stats: TimingStats,
}

impl TimingModel {
    /// Creates a timing model for the given machine.
    pub fn new(cfg: MachineConfig) -> TimingModel {
        TimingModel {
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_entries),
            l1i: Cache::new(cfg.l1i_bytes, cfg.cache_ways, cfg.line_bytes),
            l1d: Cache::new(cfg.l1d_bytes, cfg.cache_ways, cfg.line_bytes),
            l2: Cache::new(cfg.l2_bytes, cfg.cache_ways, cfg.line_bytes),
            reg_ready: [0; NUM_REGS],
            last_issue: 0,
            issue_counts: 0,
            fetch_cycle: 0,
            fetch_left: cfg.issue_width,
            last_line: u64::MAX,
            stats: TimingStats::default(),
            cfg,
        }
    }

    /// Total cycles consumed so far, including pipeline drain.
    pub fn cycles(&self) -> u64 {
        self.last_issue + self.cfg.front_depth as u64 + 1
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        self.stats.retired as f64 / self.cycles().max(1) as f64
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TimingStats {
        self.stats
    }

    /// Publishes the model's aggregate statistics as `sim.*` trace
    /// counters plus a `sim.rates` event carrying the predictor hit rate
    /// and per-cache miss rates. Call once per completed run.
    pub fn emit_trace(&self) {
        if !vp_trace::enabled() {
            return;
        }
        let s = &self.stats;
        SIM_CYCLES.add(self.cycles());
        SIM_RETIRED.add(s.retired);
        SIM_MISPREDICTS.add(s.mispredicts);
        SIM_COND_BRANCHES.add(s.cond_branches);
        SIM_RETURNS.add(s.returns);
        SIM_TAKEN_REDIRECTS.add(s.taken_redirects);
        SIM_ICACHE_ACCESSES.add(s.icache_accesses);
        SIM_ICACHE_MISSES.add(s.icache_misses);
        SIM_DCACHE_ACCESSES.add(s.dcache_accesses);
        SIM_DCACHE_MISSES.add(s.dcache_misses);
        SIM_L2_ACCESSES.add(s.l2_accesses);
        SIM_L2_MISSES.add(s.l2_misses);
        vp_trace::event(
            "sim.rates",
            &[
                ("predictor_hit", Value::from(s.predictor_hit_rate())),
                ("icache_miss", Value::from(s.icache_miss_rate())),
                ("dcache_miss", Value::from(s.dcache_miss_rate())),
                ("l2_miss", Value::from(s.l2_miss_rate())),
            ],
        );
    }

    fn units(&self, c: FuClass) -> u32 {
        match c {
            FuClass::IntAlu => self.cfg.int_alu_units,
            FuClass::Fp => self.cfg.fp_units,
            FuClass::Mem => self.cfg.mem_units,
            FuClass::Branch => self.cfg.branch_units,
        }
    }

    /// Extra latency of a data access through L1D → L2 → memory.
    fn daccess(&mut self, addr: u64) -> u32 {
        self.stats.dcache_accesses += 1;
        if self.l1d.access(addr) {
            0
        } else {
            self.stats.dcache_misses += 1;
            self.stats.l2_accesses += 1;
            if self.l2.access(addr) {
                self.cfg.l2_latency
            } else {
                self.stats.l2_misses += 1;
                self.cfg.l2_latency + self.cfg.mem_latency
            }
        }
    }

    /// Extra latency of an instruction fetch through L1I → L2 → memory.
    fn iaccess(&mut self, addr: u64) -> u32 {
        self.stats.icache_accesses += 1;
        if self.l1i.access(addr) {
            0
        } else {
            self.stats.icache_misses += 1;
            self.stats.l2_accesses += 1;
            if self.l2.access(addr) {
                self.cfg.l2_latency
            } else {
                self.stats.l2_misses += 1;
                self.cfg.l2_latency + self.cfg.mem_latency
            }
        }
    }
}

impl Sink for TimingModel {
    fn retire(&mut self, r: &Retired) {
        self.stats.retired += 1;
        self.retire_one(r);
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        // One retired-count update per chunk; `retire_one` stays inlined in
        // this loop, so the pipeline state it threads (fetch group,
        // register scoreboard, issue-ring cursor, predictor tables) is kept
        // hot across consecutive events instead of being re-dispatched per
        // event through the sink boundary.
        self.stats.retired += batch.len() as u64;
        for r in batch {
            self.retire_one(r);
        }
    }

    fn wants_columns(&self) -> bool {
        true
    }

    fn retire_columns(&mut self, b: &ColumnBatch<'_>) {
        self.retire_columns_fused(b);
    }
}

impl TimingModel {
    /// Retires one instruction through the model, excluding the
    /// `stats.retired` bump (done by the [`Sink`] wrappers so the batched
    /// path can hoist it out of the loop).
    #[inline]
    fn retire_one(&mut self, r: &Retired) {
        // --- fetch ---
        if self.fetch_left == 0 {
            self.fetch_cycle += 1;
            self.fetch_left = self.cfg.issue_width;
        }
        let line = r.addr / self.cfg.line_bytes as u64;
        if line != self.last_line {
            let extra = self.iaccess(r.addr);
            self.fetch_cycle += extra as u64;
            self.last_line = line;
        }
        self.fetch_left -= 1;

        // --- issue ---
        let mut t = self.fetch_cycle + self.cfg.front_depth as u64;
        t = t.max(self.last_issue);
        for u in r.uses.iter().flatten() {
            t = t.max(self.reg_ready[u.index()]);
        }
        let fu = fu_index(r.fu);
        let fu_lane = LANE_FU + 8 * fu as u32;
        let issue_width = u64::from(self.cfg.issue_width);
        let unit_cap = u64::from(self.units(r.fu));
        // `t >= last_issue` (it is in the max chain above), so the only
        // cycle with prior issue usage is `last_issue` itself; any later
        // cycle starts with fresh bandwidth.
        let mut counts = if t == self.last_issue {
            self.issue_counts
        } else {
            0
        };
        while counts >> LANE_ISSUED & 0xff >= issue_width || counts >> fu_lane & 0xff >= unit_cap {
            t += 1;
            counts = 0;
        }
        self.issue_counts = counts + ((1 << LANE_ISSUED) | (1 << fu_lane));
        self.last_issue = t;

        // --- execute / writeback ---
        let mut latency = r.latency;
        if let Some(addr) = r.mem_addr {
            let extra = self.daccess(addr);
            if !r.is_store {
                latency += extra;
            }
            // Stores retire through the store buffer without stalling
            // dependents.
        }
        if let Some(d) = r.def {
            self.reg_ready[d.index()] = t + latency as u64;
        }

        // --- control ---
        if let Some(c) = &r.ctrl {
            let mut mispredict = false;
            if c.is_cond {
                self.stats.cond_branches += 1;
                let pred = self.gshare.predict(r.addr);
                if pred != c.taken {
                    mispredict = true;
                } else if c.taken && self.btb.lookup(r.addr) != Some(c.target) {
                    // Correct direction but no target available in time.
                    mispredict = true;
                }
                self.gshare.update(r.addr, c.taken);
                if c.taken {
                    self.btb.update(r.addr, c.target);
                }
            } else if c.is_ret {
                self.stats.returns += 1;
                if self.ras.pop() != Some(c.target) {
                    mispredict = true;
                }
            } else if c.is_call {
                self.ras.push(c.ret_addr);
            }
            // Direct jumps and calls redirect fetch without penalty (their
            // targets are available at decode).

            if mispredict {
                self.stats.mispredicts += 1;
                if self.cfg.wrong_path_fetch {
                    // Pollute the I-cache down the wrong path until
                    // resolution: one sequential line per fetch cycle.
                    let wrong = if c.taken { r.addr + 4 } else { c.target };
                    for i in 0..self.cfg.branch_resolution as u64 {
                        self.iaccess(wrong + i * self.cfg.line_bytes as u64);
                    }
                    // Those touches are speculative fetches, not demand
                    // misses of committed code.
                    self.stats.icache_misses = self
                        .stats
                        .icache_misses
                        .saturating_sub(self.cfg.branch_resolution as u64);
                    self.stats.icache_accesses = self
                        .stats
                        .icache_accesses
                        .saturating_sub(self.cfg.branch_resolution as u64);
                }
                self.fetch_cycle = t + self.cfg.branch_resolution as u64;
                self.fetch_left = self.cfg.issue_width;
                self.last_line = u64::MAX;
            } else if c.taken {
                self.stats.taken_redirects += 1;
                // A taken transfer ends the fetch group.
                self.fetch_left = 0;
            }
        }
    }

    /// The fused column kernel behind [`Sink::retire_columns`].
    ///
    /// Observationally identical to running [`TimingModel::retire_one`]
    /// over the chunk (the equivalence is pinned by tests across every
    /// suite workload), restructured for throughput the same way the
    /// replay decoder was:
    ///
    /// * the per-event fetch/issue state (fetch cycle and group budget,
    ///   current I-line, last issue cycle) lives in locals for the chunk
    ///   and is written back once;
    /// * the register scoreboard is a local array with two sentinel slots,
    ///   so absent sources read an always-zero entry and absent
    ///   destinations write a scratch entry — no `Option` tests in the
    ///   issue math;
    /// * events are read from the flat [`ColumnBatch`] columns (one byte
    ///   of flags plus four words) instead of the 120-byte `Retired`
    ///   record with its `Option<Ctrl>` indirection;
    /// * the I-line index uses a shift when the line size is a power of
    ///   two, and the gshare predict/update pair is fused into one
    ///   branch-free table walk ([`Gshare::predict_update`]).
    fn retire_columns_fused(&mut self, b: &ColumnBatch<'_>) {
        let n = b.len();
        self.stats.retired += n as u64;
        let k = self.fused_consts();
        let mut st = self.fused_enter();

        // Re-slicing every column to the common batch length proves the
        // per-event loads in range, so the loop body compiles with no
        // bounds checks on any of the five columns.
        let col_flags = &b.flags[..n];
        let col_addr = &b.addr[..n];
        let col_exec = &b.exec[..n];
        let col_mem = &b.mem[..n];
        let col_tgt = &b.target[..n];
        for i in 0..n {
            self.fused_step(
                &k,
                &mut st,
                col_flags[i],
                col_addr[i],
                col_exec[i],
                col_mem[i],
                col_tgt[i],
            );
        }
        self.fused_exit(&st);
    }

    /// Replays `trace` through the model by fusing the stream decode with
    /// the timing step in a single loop ([`CapturedTrace::replay_events_with`]).
    ///
    /// This is the fastest replay path for a bare timing model — the
    /// decode's serial dependency chain (stream cursor, slot index, memory
    /// anchor) and the model's (fetch cycle, issue cursor, scoreboard)
    /// are independent per event, so fusing them into one loop lets the
    /// host overlap the two chains instead of paying them additively
    /// across alternating decode/sim chunk loops; the column values also
    /// flow through registers rather than a scratch-column round trip.
    /// Observationally identical to [`CapturedTrace::replay`] into the
    /// model (pinned by tests); use the generic [`Sink`] path when the
    /// model is composed with other sinks.
    pub fn replay_trace(&mut self, trace: &CapturedTrace) -> vp_exec::RunStats {
        let k = self.fused_consts();
        let mut st = self.fused_enter();
        let mut retired = 0u64;
        let stats = trace.replay_events_with(|e| {
            retired += 1;
            self.fused_step(&k, &mut st, e.flags, e.addr, e.exec, e.mem, e.target);
        });
        self.stats.retired += retired;
        self.fused_exit(&st);
        stats
    }

    /// Hoists the config-derived constants the fused kernels read per
    /// event.
    fn fused_consts(&self) -> FusedConsts {
        let line_bytes = self.cfg.line_bytes as u64;
        FusedConsts {
            issue_width: self.cfg.issue_width,
            issue_cap: u64::from(self.cfg.issue_width),
            front_depth: self.cfg.front_depth as u64,
            branch_resolution: self.cfg.branch_resolution,
            line_bytes,
            line_shift: line_bytes
                .is_power_of_two()
                .then(|| line_bytes.trailing_zeros()),
            units: [
                u64::from(self.cfg.int_alu_units),
                u64::from(self.cfg.fp_units),
                u64::from(self.cfg.mem_units),
                u64::from(self.cfg.branch_units),
            ],
            wrong_path_fetch: self.cfg.wrong_path_fetch,
        }
    }

    /// Copies the model's per-event pipeline state into the hoisted form
    /// the fused kernels thread through registers.
    fn fused_enter(&self) -> FusedState {
        // Local scoreboard with the two sentinel slots the exec-word
        // encoding points absent operands at: `col::USE_NONE` stays zero
        // (never written), `col::DEF_NONE` absorbs dead writebacks.
        let mut reg = [0u64; NUM_REGS + 2];
        reg[..NUM_REGS].copy_from_slice(&self.reg_ready);
        FusedState {
            fetch_cycle: self.fetch_cycle,
            fetch_left: self.fetch_left,
            last_line: self.last_line,
            last_issue: self.last_issue,
            issue_counts: self.issue_counts,
            reg,
            cond_branches: 0,
            returns: 0,
            taken_redirects: 0,
        }
    }

    /// Writes the hoisted pipeline state and deferred counters back into
    /// the model.
    fn fused_exit(&mut self, st: &FusedState) {
        self.fetch_cycle = st.fetch_cycle;
        self.fetch_left = st.fetch_left;
        self.last_line = st.last_line;
        self.last_issue = st.last_issue;
        self.issue_counts = st.issue_counts;
        self.reg_ready.copy_from_slice(&st.reg[..NUM_REGS]);
        self.stats.cond_branches += st.cond_branches;
        self.stats.returns += st.returns;
        self.stats.taken_redirects += st.taken_redirects;
    }

    /// One event through the fused pipeline model: the exact operation
    /// sequence of [`TimingModel::retire_one`], reading the column
    /// encoding and threading the hoisted state.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn fused_step(
        &mut self,
        k: &FusedConsts,
        st: &mut FusedState,
        flags: u8,
        addr: u64,
        exec: u64,
        mem: u64,
        target: u64,
    ) {
        // --- fetch ---
        if st.fetch_left == 0 {
            st.fetch_cycle += 1;
            st.fetch_left = k.issue_width;
        }
        let line = match k.line_shift {
            Some(s) => addr >> s,
            None => addr / k.line_bytes,
        };
        if line != st.last_line {
            let extra = self.iaccess(addr);
            st.fetch_cycle += extra as u64;
            st.last_line = line;
        }
        st.fetch_left -= 1;

        // --- issue ---
        // Balanced max tree: the three scoreboard reads race each other,
        // not a serial chain through `t`.
        let r0 = st.reg[(exec & col::REG_MASK) as usize];
        let r1 = st.reg[(exec >> col::USE1_SHIFT & col::REG_MASK) as usize];
        let r2 = st.reg[(exec >> col::USE2_SHIFT & col::REG_MASK) as usize];
        let mut t = (st.fetch_cycle + k.front_depth)
            .max(st.last_issue)
            .max(r0.max(r1).max(r2));
        let fu = (exec >> col::FU_SHIFT & 0x3) as usize;
        let fu_lane = LANE_FU + 8 * fu as u32;
        let unit_cap = k.units[fu];
        let mut counts = if t == st.last_issue {
            st.issue_counts
        } else {
            0
        };
        while counts >> LANE_ISSUED & 0xff >= k.issue_cap || counts >> fu_lane & 0xff >= unit_cap {
            t += 1;
            counts = 0;
        }
        st.issue_counts = counts + ((1 << LANE_ISSUED) | (1 << fu_lane));
        st.last_issue = t;

        // --- execute / writeback ---
        let mut latency = (exec >> col::LATENCY_SHIFT & col::LATENCY_MASK) as u32;
        if flags & col::MEM != 0 {
            let extra = self.daccess(mem);
            if flags & col::STORE == 0 {
                latency += extra;
            }
        }
        st.reg[(exec >> col::DEF_SHIFT & col::REG_MASK) as usize] = t + latency as u64;

        // --- control ---
        if flags & col::CTRL != 0 {
            let taken = flags & col::TAKEN != 0;
            let mut mispredict = false;
            if flags & col::COND != 0 {
                st.cond_branches += 1;
                let pred = self.gshare.predict_update(addr, taken);
                if taken {
                    // One BTB walk covers both the target check and the
                    // update; the extra pre-update read on the
                    // `pred != taken` path is invisible.
                    let old = self.btb.lookup_update(addr, target);
                    if pred != taken || old != Some(target) {
                        mispredict = true;
                    }
                } else if pred != taken {
                    mispredict = true;
                }
            } else if flags & col::RET != 0 {
                st.returns += 1;
                if self.ras.pop() != Some(target) {
                    mispredict = true;
                }
            } else if flags & col::CALL != 0 {
                // For calls the target column carries the RAS return
                // address (see the `ColumnBatch` docs).
                self.ras.push(target);
            }

            if mispredict {
                self.stats.mispredicts += 1;
                if k.wrong_path_fetch {
                    let wrong = if taken { addr + 4 } else { target };
                    for i in 0..k.branch_resolution as u64 {
                        self.iaccess(wrong + i * k.line_bytes);
                    }
                    self.stats.icache_misses = self
                        .stats
                        .icache_misses
                        .saturating_sub(k.branch_resolution as u64);
                    self.stats.icache_accesses = self
                        .stats
                        .icache_accesses
                        .saturating_sub(k.branch_resolution as u64);
                }
                st.fetch_cycle = t + k.branch_resolution as u64;
                st.fetch_left = k.issue_width;
                st.last_line = u64::MAX;
            } else if taken {
                st.taken_redirects += 1;
                st.fetch_left = 0;
            }
        }
    }
}

/// Config-derived constants hoisted once per fused replay or chunk.
#[derive(Clone, Copy)]
struct FusedConsts {
    issue_width: u32,
    issue_cap: u64,
    front_depth: u64,
    branch_resolution: u32,
    line_bytes: u64,
    line_shift: Option<u32>,
    units: [u64; 4],
    wrong_path_fetch: bool,
}

/// The per-event pipeline state of [`TimingModel`], hoisted into a stack
/// value for the duration of a fused replay or chunk so the step kernel
/// threads it through registers; [`TimingModel::fused_exit`] writes it
/// back. The hot branch counters accumulate here and flush to the stats
/// block once per replay.
struct FusedState {
    fetch_cycle: u64,
    fetch_left: u32,
    last_line: u64,
    last_issue: u64,
    issue_counts: u64,
    reg: [u64; NUM_REGS + 2],
    cond_branches: u64,
    returns: u64,
    taken_redirects: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{CodeRef, Reg};

    fn inst(
        addr: u64,
        fu: FuClass,
        def: Option<Reg>,
        uses: [Option<Reg>; 3],
        latency: u32,
    ) -> Retired {
        Retired {
            loc: CodeRef::new(0, 0),
            addr,
            fu,
            latency,
            def,
            uses,
            mem_addr: None,
            is_store: false,
            ctrl: None,
            in_package: false,
        }
    }

    #[test]
    fn independent_alu_ops_bounded_by_unit_count() {
        let mut tm = TimingModel::new(MachineConfig::table2());
        for i in 0..1000u64 {
            tm.retire(&inst(
                0x1000 + 4 * (i % 16),
                FuClass::IntAlu,
                Some(Reg::int(20)),
                [None; 3],
                1,
            ));
        }
        // 5 integer ALUs: ~200 cycles, plus the cold-start I-cache miss
        // (L1I + L2 both miss once) and pipeline fill.
        let c = tm.cycles();
        assert!((200..320).contains(&c), "cycles = {c}");
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut tm = TimingModel::new(MachineConfig::table2());
        let r = Reg::int(20);
        for i in 0..1000u64 {
            tm.retire(&inst(
                0x1000 + 4 * (i % 16),
                FuClass::IntAlu,
                Some(r),
                [Some(r), None, None],
                1,
            ));
        }
        let c = tm.cycles();
        assert!(
            c >= 1000,
            "a dependence chain runs at one per cycle, got {c}"
        );
    }

    #[test]
    fn load_miss_extends_dependent_latency() {
        let cfg = MachineConfig::table2();
        let mut hit = TimingModel::new(cfg);
        let mut miss = TimingModel::new(cfg);
        // Warm the hit model's cache.
        let mut warm = inst(0x1000, FuClass::Mem, Some(Reg::int(20)), [None; 3], 2);
        warm.mem_addr = Some(0x9000);
        hit.retire(&warm);
        for tm in [&mut hit, &mut miss] {
            let mut ld = inst(0x1010, FuClass::Mem, Some(Reg::int(21)), [None; 3], 2);
            ld.mem_addr = Some(0x9000);
            tm.retire(&ld);
            // Dependent consumer.
            tm.retire(&inst(
                0x1014,
                FuClass::IntAlu,
                Some(Reg::int(22)),
                [Some(Reg::int(21)), None, None],
                1,
            ));
        }
        assert!(
            miss.cycles() > hit.cycles(),
            "miss {} must exceed hit {}",
            miss.cycles(),
            hit.cycles()
        );
    }

    #[test]
    fn mispredicted_branch_costs_resolution_latency() {
        let cfg = MachineConfig::table2();
        let run = |pattern: &dyn Fn(u64) -> bool| {
            let mut tm = TimingModel::new(cfg);
            for i in 0..4000u64 {
                let taken = pattern(i);
                let mut br = inst(0x1000, FuClass::Branch, None, [None; 3], 1);
                br.ctrl = Some(vp_exec::Ctrl {
                    block: CodeRef::new(0, 0),
                    is_cond: true,
                    arch_taken: taken,
                    taken,
                    is_call: false,
                    is_ret: false,
                    target: if taken { 0x2000 } else { 0x1004 },
                    ret_addr: 0,
                });
                tm.retire(&br);
                tm.retire(&inst(
                    if taken { 0x2000 } else { 0x1004 },
                    FuClass::IntAlu,
                    None,
                    [None; 3],
                    1,
                ));
            }
            tm
        };
        // Steady pattern: learnable. The noisy pattern defeats gshare by
        // construction: runs of 15 taken saturate the 10-bit history to a
        // single context, then a data-like pseudo-random bit follows — the
        // same context precedes conflicting outcomes, so roughly half of
        // those bits mispredict.
        let steady = run(&|_| true);
        let noisy = run(&|i| {
            if i % 16 != 15 {
                true
            } else {
                (i / 16).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63 == 1
            }
        });
        assert!(
            noisy.stats().mispredicts > steady.stats().mispredicts + 50,
            "noisy {} vs steady {}",
            noisy.stats().mispredicts,
            steady.stats().mispredicts
        );
        assert!(noisy.cycles() > steady.cycles() + 300);
    }

    #[test]
    fn icache_miss_stalls_fetch() {
        let cfg = MachineConfig::table2();
        let mut tiny_loop = TimingModel::new(cfg);
        let mut huge_stride = TimingModel::new(cfg);
        for i in 0..2000u64 {
            tiny_loop.retire(&inst(
                0x1000 + 4 * (i % 8),
                FuClass::IntAlu,
                None,
                [None; 3],
                1,
            ));
            // Stride exceeding L1I capacity: every line misses.
            huge_stride.retire(&inst(
                0x1000 + 4096 * i,
                FuClass::IntAlu,
                None,
                [None; 3],
                1,
            ));
        }
        assert!(huge_stride.stats().icache_misses > 1900);
        assert!(huge_stride.cycles() > tiny_loop.cycles() * 5);
    }

    #[test]
    fn stats_count_retirements() {
        let mut tm = TimingModel::new(MachineConfig::table2());
        for i in 0..10 {
            tm.retire(&inst(0x1000 + 4 * i, FuClass::IntAlu, None, [None; 3], 1));
        }
        assert_eq!(tm.stats().retired, 10);
        assert!(tm.ipc() > 0.0);
    }
}

#[cfg(test)]
mod ras_tests {
    use super::*;
    use vp_exec::{Executor, RunConfig};
    use vp_isa::{Cond, Reg, Src};
    use vp_program::{Layout, ProgramBuilder};

    /// Call-heavy code: the RAS must predict nearly every return.
    #[test]
    fn returns_are_predicted_by_the_ras() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare("leaf");
        pb.define(leaf, |f| {
            f.addi(Reg::ARG0, Reg::ARG0, 1);
            f.ret();
        });
        let main = pb.declare("main");
        pb.define(main, |f| {
            let i = Reg::int(20);
            f.li(i, 0);
            f.while_(
                |f| f.cond(Cond::Lt, i, Src::Imm(2000)),
                |f| {
                    f.call(leaf);
                    f.addi(i, i, 1);
                },
            );
            f.halt();
        });
        pb.set_entry(main);
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut tm = TimingModel::new(MachineConfig::table2());
        Executor::new(&p, &layout)
            .run(&mut tm, &RunConfig::default())
            .unwrap();
        // 2000 returns; after warmup virtually all predicted.
        assert!(
            tm.stats().mispredicts < 50,
            "RAS should predict returns: {} mispredicts",
            tm.stats().mispredicts
        );
    }
}
