//! Machine configuration (the paper's Table 2).

/// Parameters of the simulated EPIC machine.
///
/// [`MachineConfig::table2`] reproduces the paper's Table 2. Latencies not
/// listed in the table (cache miss costs) use conventional values for the
/// era and are documented fields, so ablations can vary them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Instructions issued per cycle (Table 2: 8).
    pub issue_width: u32,
    /// Integer ALU units (Table 2: 5).
    pub int_alu_units: u32,
    /// Floating-point units, including long-latency FP (Table 2: 3).
    pub fp_units: u32,
    /// Memory units (Table 2: 3).
    pub mem_units: u32,
    /// Branch units (Table 2: 3).
    pub branch_units: u32,
    /// Branch resolution latency in cycles — the mispredict penalty
    /// (Table 2: 7).
    pub branch_resolution: u32,
    /// gshare history bits (Table 2: 10-bit history).
    pub gshare_bits: u32,
    /// BTB entries (Table 2: 1024).
    pub btb_entries: usize,
    /// Return-address-stack entries (Table 2: 32).
    pub ras_entries: usize,
    /// L1 instruction cache size in bytes (Table 2: 512 KB).
    pub l1i_bytes: usize,
    /// L1 data cache size in bytes (Table 2: 64 KB).
    pub l1d_bytes: usize,
    /// Unified L2 cache size in bytes (Table 2: 64 KB).
    pub l2_bytes: usize,
    /// Cache line size in bytes (not in Table 2; 64).
    pub line_bytes: usize,
    /// Cache associativity (not in Table 2; 4-way).
    pub cache_ways: usize,
    /// Extra cycles for an L1 miss that hits in L2.
    pub l2_latency: u32,
    /// Extra cycles for an access that misses L2.
    pub mem_latency: u32,
    /// Front-end depth in cycles from fetch to issue (ten-stage pipeline
    /// with issue near the middle).
    pub front_depth: u32,
    /// Model wrong-path instruction fetch on mispredictions: the fetch
    /// unit speculatively touches I-cache lines down the wrong direction
    /// until the branch resolves, polluting the cache (the paper's
    /// emulator "fully accounts for ... wrong path execution \[and\] cache
    /// utilization and pollution"). One line per front-end fetch cycle of
    /// the resolution window.
    pub wrong_path_fetch: bool,
}

impl MachineConfig {
    /// Stable structural fingerprint of every machine parameter, for
    /// content-addressed result caching.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vp_isa::Fnv::new();
        h.write_str("MachineConfig");
        h.write_u32(self.issue_width);
        h.write_u32(self.int_alu_units);
        h.write_u32(self.fp_units);
        h.write_u32(self.mem_units);
        h.write_u32(self.branch_units);
        h.write_u32(self.branch_resolution);
        h.write_u32(self.gshare_bits);
        h.write_usize(self.btb_entries);
        h.write_usize(self.ras_entries);
        h.write_usize(self.l1i_bytes);
        h.write_usize(self.l1d_bytes);
        h.write_usize(self.l2_bytes);
        h.write_usize(self.line_bytes);
        h.write_usize(self.cache_ways);
        h.write_u32(self.l2_latency);
        h.write_u32(self.mem_latency);
        h.write_u32(self.front_depth);
        h.write_bool(self.wrong_path_fetch);
        h.finish()
    }

    /// The paper's Table 2 machine.
    pub fn table2() -> MachineConfig {
        MachineConfig {
            issue_width: 8,
            int_alu_units: 5,
            fp_units: 3,
            mem_units: 3,
            branch_units: 3,
            branch_resolution: 7,
            gshare_bits: 10,
            btb_entries: 1024,
            ras_entries: 32,
            l1i_bytes: 512 * 1024,
            l1d_bytes: 64 * 1024,
            l2_bytes: 64 * 1024,
            line_bytes: 64,
            cache_ways: 4,
            l2_latency: 10,
            mem_latency: 75,
            front_depth: 4,
            wrong_path_fetch: true,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = MachineConfig::table2();
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.int_alu_units, 5);
        assert_eq!(c.fp_units, 3);
        assert_eq!(c.mem_units, 3);
        assert_eq!(c.branch_units, 3);
        assert_eq!(c.branch_resolution, 7);
        assert_eq!(c.btb_entries, 1024);
        assert_eq!(c.ras_entries, 32);
        assert_eq!(c.l1i_bytes, 512 * 1024);
        assert_eq!(c.l1d_bytes, 64 * 1024);
        assert_eq!(c.l2_bytes, 64 * 1024);
    }
}
