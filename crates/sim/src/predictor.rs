//! Branch prediction: gshare direction predictor, branch target buffer,
//! and return address stack (the Table 2 front end).

/// gshare: global history XOR branch address indexing a table of 2-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    history_bits: u32,
    history: u64,
    counters: Vec<u8>,
}

impl Gshare {
    /// Creates a predictor with `history_bits` of global history and a
    /// `2^history_bits`-entry pattern table initialized weakly taken.
    pub fn new(history_bits: u32) -> Gshare {
        Gshare {
            history_bits,
            history: 0,
            counters: vec![2; 1 << history_bits],
        }
    }

    fn index(&self, addr: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((addr >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the direction of the branch at `addr`.
    pub fn predict(&self, addr: u64) -> bool {
        self.counters[self.index(addr)] >= 2
    }

    /// Updates the counter and global history with the actual outcome.
    pub fn update(&mut self, addr: u64, taken: bool) {
        let i = self.index(addr);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (branch addr, target)
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two());
        Btb {
            entries: vec![None; entries],
        }
    }

    fn index(&self, addr: u64) -> usize {
        ((addr >> 2) as usize) & (self.entries.len() - 1)
    }

    /// The predicted target of a taken transfer at `addr`, if cached.
    pub fn lookup(&self, addr: u64) -> Option<u64> {
        match self.entries[self.index(addr)] {
            Some((a, t)) if a == addr => Some(t),
            _ => None,
        }
    }

    /// Records the actual target of a taken transfer.
    pub fn update(&mut self, addr: u64, target: u64) {
        let i = self.index(addr);
        self.entries[i] = Some((addr, target));
    }
}

/// Return address stack.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>,
    capacity: usize,
    overflowed: u64,
}

impl Ras {
    /// Creates a RAS holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Ras {
        Ras {
            stack: Vec::with_capacity(capacity),
            capacity,
            overflowed: 0,
        }
    }

    /// Pushes a return address at a call; the oldest entry is dropped on
    /// overflow (wrap-around corruption, as in hardware).
    pub fn push(&mut self, ret_addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
            self.overflowed += 1;
        }
        self.stack.push(ret_addr);
    }

    /// Pops the predicted return address at a return.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Times the stack dropped an entry due to depth overflow.
    pub fn overflows(&self) -> u64 {
        self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_steady_branch() {
        let mut g = Gshare::new(10);
        for _ in 0..64 {
            g.update(0x1000, true);
        }
        assert!(g.predict(0x1000));
        for _ in 0..64 {
            g.update(0x1000, false);
        }
        assert!(!g.predict(0x1000));
    }

    #[test]
    fn gshare_learns_alternation_via_history() {
        let mut g = Gshare::new(10);
        // T,N,T,N...: history disambiguates; after warmup the predictor is
        // nearly perfect.
        let mut correct = 0;
        let mut taken = true;
        for i in 0..400 {
            let p = g.predict(0x2000);
            if i >= 100 && p == taken {
                correct += 1;
            }
            g.update(0x2000, taken);
            taken = !taken;
        }
        assert!(
            correct > 290,
            "gshare must learn the alternating pattern, got {correct}/300"
        );
    }

    #[test]
    fn btb_caches_targets() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        // Conflicting entry replaces.
        b.update(0x1000 + 16 * 4, 0x3000);
        assert_eq!(b.lookup(0x1000), None);
    }

    #[test]
    fn ras_matches_call_return_pairs() {
        let mut r = Ras::new(4);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.overflows(), 1);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "address 1 was dropped");
    }
}
