//! Branch prediction: gshare direction predictor, branch target buffer,
//! and return address stack (the Table 2 front end).

/// gshare: global history XOR branch address indexing a table of 2-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    history_bits: u32,
    history: u64,
    counters: Vec<u8>,
}

impl Gshare {
    /// Creates a predictor with `history_bits` of global history and a
    /// `2^history_bits`-entry pattern table initialized weakly taken.
    pub fn new(history_bits: u32) -> Gshare {
        Gshare {
            history_bits,
            history: 0,
            counters: vec![2; 1 << history_bits],
        }
    }

    fn index(&self, addr: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((addr >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the direction of the branch at `addr`.
    pub fn predict(&self, addr: u64) -> bool {
        self.counters[self.index(addr)] >= 2
    }

    /// Updates the counter and global history with the actual outcome.
    pub fn update(&mut self, addr: u64, taken: bool) {
        let i = self.index(addr);
        self.counters[i] = Self::NEXT[((self.counters[i] as usize) << 1) | taken as usize];
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }

    /// Saturating-counter transition table indexed by `(counter << 1) |
    /// taken`: the branch-free form of "+1 clamped to 3 / −1 clamped to 0".
    const NEXT: [u8; 8] = [0, 1, 0, 2, 1, 3, 2, 3];

    /// Fused [`Gshare::predict`] + [`Gshare::update`]: one table index
    /// computation and one counter load serve both, and the counter
    /// transition is a branch-free table walk. Exactly equivalent to
    /// `let p = predict(addr); update(addr, taken); p` — the prediction
    /// reads the pre-update counter because both use the pre-update
    /// history.
    #[inline]
    pub fn predict_update(&mut self, addr: u64, taken: bool) -> bool {
        let i = self.index(addr);
        let c = self.counters[i];
        self.counters[i] = Self::NEXT[((c as usize) << 1) | taken as usize];
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
        c >= 2
    }
}

/// Direct-mapped branch target buffer.
///
/// Stored as parallel tag/target arrays rather than `Option<(u64, u64)>`
/// records: a lookup that misses touches only the 8-byte tag lane, and
/// neither lane carries an enum discriminant.
#[derive(Debug, Clone)]
pub struct Btb {
    /// Full branch address per slot; `u64::MAX` marks an empty slot
    /// (instruction addresses never take that value).
    tags: Vec<u64>,
    targets: Vec<u64>,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two());
        Btb {
            tags: vec![u64::MAX; entries],
            targets: vec![0; entries],
        }
    }

    fn index(&self, addr: u64) -> usize {
        ((addr >> 2) as usize) & (self.tags.len() - 1)
    }

    /// The predicted target of a taken transfer at `addr`, if cached.
    pub fn lookup(&self, addr: u64) -> Option<u64> {
        let i = self.index(addr);
        if self.tags[i] == addr {
            Some(self.targets[i])
        } else {
            None
        }
    }

    /// Records the actual target of a taken transfer.
    pub fn update(&mut self, addr: u64, target: u64) {
        let i = self.index(addr);
        self.tags[i] = addr;
        self.targets[i] = target;
    }

    /// [`Btb::lookup`] and [`Btb::update`] fused into one table walk: the
    /// pre-update prediction comes back, the new target goes in. Exactly
    /// equivalent to `let old = btb.lookup(addr); btb.update(addr, target);
    /// old` with the index computed once.
    pub fn lookup_update(&mut self, addr: u64, target: u64) -> Option<u64> {
        let i = self.index(addr);
        let old = (self.tags[i] == addr).then(|| self.targets[i]);
        self.tags[i] = addr;
        self.targets[i] = target;
        old
    }
}

/// Return address stack.
///
/// A fixed ring buffer: overflow drops the oldest entry by advancing the
/// ring start in O(1) (the previous `Vec::remove(0)` shifted the whole
/// stack on every overflowing call in a deep recursion).
#[derive(Debug, Clone)]
pub struct Ras {
    buf: Vec<u64>,
    start: usize,
    len: usize,
    capacity: usize,
    overflowed: u64,
}

impl Ras {
    /// Creates a RAS holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Ras {
        Ras {
            buf: vec![0; capacity],
            start: 0,
            len: 0,
            capacity,
            overflowed: 0,
        }
    }

    /// Pushes a return address at a call; the oldest entry is dropped on
    /// overflow (wrap-around corruption, as in hardware).
    pub fn push(&mut self, ret_addr: u64) {
        if self.len == self.capacity {
            self.start += 1;
            if self.start == self.capacity {
                self.start = 0;
            }
            self.len -= 1;
            self.overflowed += 1;
        }
        let mut at = self.start + self.len;
        if at >= self.capacity {
            at -= self.capacity;
        }
        self.buf[at] = ret_addr;
        self.len += 1;
    }

    /// Pops the predicted return address at a return.
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let mut at = self.start + self.len;
        if at >= self.capacity {
            at -= self.capacity;
        }
        Some(self.buf[at])
    }

    /// Times the stack dropped an entry due to depth overflow.
    pub fn overflows(&self) -> u64 {
        self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_steady_branch() {
        let mut g = Gshare::new(10);
        for _ in 0..64 {
            g.update(0x1000, true);
        }
        assert!(g.predict(0x1000));
        for _ in 0..64 {
            g.update(0x1000, false);
        }
        assert!(!g.predict(0x1000));
    }

    #[test]
    fn gshare_learns_alternation_via_history() {
        let mut g = Gshare::new(10);
        // T,N,T,N...: history disambiguates; after warmup the predictor is
        // nearly perfect.
        let mut correct = 0;
        let mut taken = true;
        for i in 0..400 {
            let p = g.predict(0x2000);
            if i >= 100 && p == taken {
                correct += 1;
            }
            g.update(0x2000, taken);
            taken = !taken;
        }
        assert!(
            correct > 290,
            "gshare must learn the alternating pattern, got {correct}/300"
        );
    }

    #[test]
    fn gshare_aliased_branches_share_a_counter() {
        // With 4 history bits the pattern table has 16 entries, and two
        // branches whose (addr >> 2) values are equal mod 16 read the
        // same counter under any history. Training one must drag the
        // other's prediction along — the destructive interference the
        // index function implies.
        let a = 0x1000u64;
        let b = a + (16 << 2);

        let mut g = Gshare::new(4);
        for _ in 0..8 {
            g.update(a, true);
        }
        assert_eq!(
            g.predict(a),
            g.predict(b),
            "aliased branches must read the same counter"
        );

        // Not-taken updates shift zero bits into the history, so it stays
        // 0 and every update hits the same slot `b` reads below: the
        // alias observably flips from its weakly-taken initialization.
        let mut g = Gshare::new(4);
        assert!(g.predict(b), "weakly-taken init");
        for _ in 0..8 {
            g.update(a, false);
        }
        assert!(
            !g.predict(b),
            "training the alias down must drag the shared counter down"
        );
    }

    #[test]
    fn gshare_counters_saturate_at_both_rails() {
        // history_bits = 0: one shared counter and index 0 everywhere, so
        // the rails are observable without history shifting the read
        // index. The transition table must clamp: many same-direction
        // updates followed by a single opposite outcome leave the counter
        // one step off the rail, so the prediction survives one anomaly
        // instead of wrapping around.
        let mut g = Gshare::new(0);
        for _ in 0..100 {
            g.update(0x40, false);
        }
        g.update(0x40, true);
        assert!(
            !g.predict(0x40),
            "counter must have saturated at 0, not wrapped"
        );

        let mut g = Gshare::new(0);
        for _ in 0..100 {
            g.update(0x40, true);
        }
        g.update(0x40, false);
        assert!(
            g.predict(0x40),
            "counter must have saturated at 3, not wrapped"
        );
    }

    #[test]
    fn gshare_predict_update_matches_split_calls() {
        // Drive an adversarial direction pattern through a fused and a
        // split predictor in lockstep; every prediction and all internal
        // state must stay identical.
        let mut fused = Gshare::new(6);
        let mut split = Gshare::new(6);
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = 0x1000 + (x % 37) * 4;
            let taken = x & 0x10 != 0;
            let sp = split.predict(addr);
            split.update(addr, taken);
            assert_eq!(
                fused.predict_update(addr, taken),
                sp,
                "diverged at step {i}"
            );
        }
    }

    #[test]
    fn btb_lookup_update_matches_split_calls() {
        let mut fused = Btb::new(8);
        let mut split = Btb::new(8);
        for i in 0..64u64 {
            let addr = 0x2000 + (i * 7 % 24) * 4;
            let target = 0x9000 + i;
            let old = split.lookup(addr);
            split.update(addr, target);
            assert_eq!(fused.lookup_update(addr, target), old, "step {i}");
            assert_eq!(fused.lookup(addr), split.lookup(addr));
        }
    }

    #[test]
    fn btb_caches_targets() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        // Conflicting entry replaces.
        b.update(0x1000 + 16 * 4, 0x3000);
        assert_eq!(b.lookup(0x1000), None);
    }

    #[test]
    fn ras_matches_call_return_pairs() {
        let mut r = Ras::new(4);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.overflows(), 1);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "address 1 was dropped");
    }
}
