//! Branch categorization across phases (the paper's Figure 9).
//!
//! Every static branch that appears in at least one recorded hot spot is
//! classified:
//!
//! * **Unique** — appears in exactly one phase: *Biased* or *Not Biased*;
//! * **Multi** — appears in several phases:
//!   * *Multi High* — taken fraction swings by more than 70% between
//!     phases,
//!   * *Multi Low* — swings between 40% and 70%,
//!   * *Multi Same* — biased somewhere but swings less than 40%,
//!   * *Multi No Bias* — never biased in any phase.
//!
//! Multi-High/Low branches are the paper's headline opportunity: an
//! aggregate profile is ambiguous exactly where phase-sensitive profiles
//! are decisive. Fractions are weighted by true dynamic execution counts.

use crate::branches::BranchCounts;
use vp_hsd::{Bias, Phase};

/// The six Figure 9 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCategory {
    /// One phase, biased.
    UniqueBiased,
    /// One phase, unbiased.
    UniqueUnbiased,
    /// Many phases, swing > 70%.
    MultiHigh,
    /// Many phases, swing 40–70%.
    MultiLow,
    /// Many phases, biased, swing < 40%.
    MultiSame,
    /// Many phases, never biased.
    MultiNoBias,
}

/// All categories in the paper's stacking order.
pub const CATEGORIES: [BranchCategory; 6] = [
    BranchCategory::UniqueBiased,
    BranchCategory::UniqueUnbiased,
    BranchCategory::MultiHigh,
    BranchCategory::MultiLow,
    BranchCategory::MultiSame,
    BranchCategory::MultiNoBias,
];

impl BranchCategory {
    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            BranchCategory::UniqueBiased => "Unique Biased",
            BranchCategory::UniqueUnbiased => "Unique No Bias",
            BranchCategory::MultiHigh => "Multi High",
            BranchCategory::MultiLow => "Multi Low",
            BranchCategory::MultiSame => "Multi Same",
            BranchCategory::MultiNoBias => "Multi No Bias",
        }
    }
}

/// Result of categorization.
#[derive(Debug, Clone, Default)]
pub struct Categorization {
    /// Dynamic-weight fraction per category (sums to 1 over hot-spot
    /// branches).
    pub fraction: [f64; 6],
    /// Static branch count per category.
    pub statics: [usize; 6],
    /// Dynamic executions of hot-spot branches.
    pub hot_dynamic: u64,
    /// Dynamic executions of all branches (hot-spot coverage denominator).
    pub total_dynamic: u64,
}

impl Categorization {
    /// Fraction for one category.
    pub fn of(&self, c: BranchCategory) -> f64 {
        self.fraction[CATEGORIES
            .iter()
            .position(|&x| x == c)
            .expect("known category")]
    }

    /// Fraction of all dynamic branches covered by hot-spot branches.
    pub fn hot_coverage(&self) -> f64 {
        if self.total_dynamic == 0 {
            0.0
        } else {
            self.hot_dynamic as f64 / self.total_dynamic as f64
        }
    }
}

/// Categorizes hot-spot branches using the phase profiles and the true
/// dynamic counts. `bias_threshold` is the paper's 0.7.
pub fn categorize(phases: &[Phase], counts: &BranchCounts, bias_threshold: f64) -> Categorization {
    use std::collections::BTreeMap;
    // addr -> taken fractions per phase containing it
    let mut seen: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for ph in phases {
        for (&addr, b) in &ph.branches {
            seen.entry(addr).or_default().push(b.taken_fraction());
        }
    }

    let mut out = Categorization {
        total_dynamic: counts.total(),
        ..Categorization::default()
    };
    let mut weights = [0u64; 6];
    for (addr, fracs) in seen {
        let weight = counts.exec(addr);
        out.hot_dynamic += weight;
        let biased_any = fracs.iter().any(|&f| {
            let b = vp_hsd::PhaseBranch::once(1000, (f * 1000.0) as u64).bias(bias_threshold);
            b != Bias::Unbiased
        });
        let cat = if fracs.len() == 1 {
            if biased_any {
                BranchCategory::UniqueBiased
            } else {
                BranchCategory::UniqueUnbiased
            }
        } else {
            let max = fracs.iter().copied().fold(f64::MIN, f64::max);
            let min = fracs.iter().copied().fold(f64::MAX, f64::min);
            let swing = max - min;
            if !biased_any {
                BranchCategory::MultiNoBias
            } else if swing > 0.7 {
                BranchCategory::MultiHigh
            } else if swing >= 0.4 {
                BranchCategory::MultiLow
            } else {
                BranchCategory::MultiSame
            }
        };
        let idx = CATEGORIES
            .iter()
            .position(|&x| x == cat)
            .expect("known category");
        weights[idx] += weight;
        out.statics[idx] += 1;
    }
    if out.hot_dynamic > 0 {
        for (f, &w) in out.fraction.iter_mut().zip(&weights) {
            *f = w as f64 / out.hot_dynamic as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vp_exec::Sink;
    use vp_hsd::PhaseBranch;

    fn phase(id: usize, branches: &[(u64, u64, u64)]) -> Phase {
        let mut map = BTreeMap::new();
        for &(a, e, t) in branches {
            map.insert(a, PhaseBranch::once(e, t));
        }
        Phase {
            id,
            branches: map,
            first_detected_at: 0,
            detections: 1,
        }
    }

    fn counts_for(entries: &[(u64, u64)]) -> BranchCounts {
        // Simulate dynamic counts by feeding events.
        let mut bc = BranchCounts::new();
        for &(addr, execs) in entries {
            for i in 0..execs {
                bc.retire(&crate::branches::tests_support::branch_event(
                    addr,
                    i % 2 == 0,
                ));
            }
        }
        bc
    }

    #[test]
    fn unique_and_multi_split() {
        let p1 = phase(0, &[(0x10, 100, 95), (0x20, 100, 50)]);
        let p2 = phase(1, &[(0x20, 100, 50), (0x30, 100, 5)]);
        let counts = counts_for(&[(0x10, 10), (0x20, 20), (0x30, 30)]);
        let cat = categorize(&[p1, p2], &counts, 0.7);
        // 0x10 unique biased (weight 10), 0x20 multi no-bias (20),
        // 0x30 unique biased (30).
        assert!((cat.of(BranchCategory::UniqueBiased) - 40.0 / 60.0).abs() < 1e-9);
        assert!((cat.of(BranchCategory::MultiNoBias) - 20.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn swing_classification() {
        // Same branch: 95% taken in one phase, 3% in another → Multi High.
        let p1 = phase(0, &[(0x10, 100, 95)]);
        let p2 = phase(1, &[(0x10, 100, 3)]);
        let counts = counts_for(&[(0x10, 10)]);
        let cat = categorize(&[p1, p2], &counts, 0.7);
        assert_eq!(cat.of(BranchCategory::MultiHigh), 1.0);

        // 90% vs 40% → swing 0.5 → Multi Low.
        let p1 = phase(0, &[(0x10, 100, 90)]);
        let p2 = phase(1, &[(0x10, 100, 40)]);
        let counts = counts_for(&[(0x10, 10)]);
        let cat = categorize(&[p1, p2], &counts, 0.7);
        assert_eq!(cat.of(BranchCategory::MultiLow), 1.0);

        // 90% vs 80% → Multi Same.
        let p1 = phase(0, &[(0x10, 100, 90)]);
        let p2 = phase(1, &[(0x10, 100, 80)]);
        let counts = counts_for(&[(0x10, 10)]);
        let cat = categorize(&[p1, p2], &counts, 0.7);
        assert_eq!(cat.of(BranchCategory::MultiSame), 1.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let p1 = phase(0, &[(0x10, 100, 95), (0x20, 50, 25)]);
        let p2 = phase(1, &[(0x20, 80, 40), (0x30, 10, 1)]);
        let counts = counts_for(&[(0x10, 5), (0x20, 7), (0x30, 3), (0x99, 100)]);
        let cat = categorize(&[p1, p2], &counts, 0.7);
        let sum: f64 = cat.fraction.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // 0x99 never in a hot spot: contributes to total, not hot.
        assert_eq!(cat.hot_dynamic, 15);
        assert_eq!(cat.total_dynamic, 115);
        assert!(cat.hot_coverage() < 0.2);
    }
}
