//! Time-ordered views of a workload's execution: package residency
//! intervals and phase-detection marks.
//!
//! The aggregate metrics in [`crate::harness`] answer *how much* (coverage,
//! speedup); this module answers *when*. [`ResidencySink`] folds a packed
//! run's retired stream into contiguous package-residency intervals — the
//! lanes of the dashboard's Gantt chart — and [`phase_timeline`] re-detects
//! phases over the original capture to place each phase's appearances on
//! the retired-branch axis. Both views come from replaying captures, so
//! rendering a timeline never re-executes a workload.

use vp_exec::{CapturedTrace, IdentityMap, Retired, Sink};
use vp_hsd::{assign_phases, FilterConfig, HotSpotDetector, HsdConfig};

/// One maximal run of consecutive retired events with the same package
/// identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyInterval {
    /// Index of the interval's first retired event.
    pub start: u64,
    /// One past the index of the interval's last retired event.
    pub end: u64,
    /// The resident package, or `None` for unpacked (original-code)
    /// stretches.
    pub package: Option<u32>,
}

impl ResidencyInterval {
    /// Number of retired events in the interval.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the interval covers no events.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// A [`Sink`] that folds a packed run's retired stream into
/// [`ResidencyInterval`]s using the pack's [`IdentityMap`].
///
/// Feed it to a replay of the *packed* capture, then call
/// [`ResidencySink::finish`]:
///
/// ```ignore
/// let mut sink = ResidencySink::new(pack_output.identity_map());
/// packed_trace.replay(&mut sink);
/// let intervals = sink.finish();
/// ```
#[derive(Debug)]
pub struct ResidencySink {
    map: IdentityMap,
    events: u64,
    cur: Option<u32>,
    cur_start: u64,
    intervals: Vec<ResidencyInterval>,
}

impl ResidencySink {
    /// Creates a sink classifying events through `map`.
    pub fn new(map: IdentityMap) -> ResidencySink {
        ResidencySink {
            map,
            events: 0,
            cur: None,
            cur_start: 0,
            intervals: Vec::new(),
        }
    }

    /// Closes the open interval and returns all intervals in stream order.
    /// Consecutive intervals always differ in package identity, and their
    /// spans tile `0..total_events` exactly.
    pub fn finish(mut self) -> Vec<ResidencyInterval> {
        if self.events > self.cur_start {
            self.intervals.push(ResidencyInterval {
                start: self.cur_start,
                end: self.events,
                package: self.cur,
            });
        }
        self.intervals
    }

    /// Retired events seen so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Sink for ResidencySink {
    fn retire(&mut self, r: &Retired) {
        let package = self.map.lookup(r.loc).map(|id| id.package);
        if package != self.cur {
            if self.events > self.cur_start {
                self.intervals.push(ResidencyInterval {
                    start: self.cur_start,
                    end: self.events,
                    package: self.cur,
                });
            }
            self.cur = package;
            self.cur_start = self.events;
        }
        self.events += 1;
    }
}

/// One phase detection placed on the retired-branch axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMark {
    /// Retired-branch count when the detection fired.
    pub at_branch: u64,
    /// The filtered phase the detection belongs to.
    pub phase: usize,
}

/// Re-detects hot spots over a captured original run and assigns every
/// raw detection to its filtered phase, producing the workload's phase
/// timeline (marks in detection order) plus the total branches retired
/// (the axis length).
pub fn phase_timeline(
    trace: &CapturedTrace,
    hsd_cfg: &HsdConfig,
    filter_cfg: &FilterConfig,
) -> (Vec<PhaseMark>, u64) {
    let mut hsd = HotSpotDetector::new(*hsd_cfg);
    trace.replay(&mut hsd);
    let (_, assignment) = assign_phases(hsd.records(), filter_cfg);
    let marks = hsd
        .records()
        .iter()
        .zip(assignment)
        .map(|(r, phase)| PhaseMark {
            at_branch: r.at_branch,
            phase,
        })
        .collect();
    (marks, hsd.branches_retired())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::BlockIdentity;
    use vp_isa::{CodeRef, FuClass, FuncId};

    fn retired(loc: CodeRef) -> Retired {
        Retired {
            loc,
            addr: 0,
            fu: FuClass::IntAlu,
            latency: 1,
            def: None,
            uses: [None; 3],
            mem_addr: None,
            is_store: false,
            ctrl: None,
            in_package: false,
        }
    }

    /// A map where function `f` is a single-block package function of
    /// package id `pkg`.
    fn map_with(entries: &[(u32, u32)]) -> IdentityMap {
        let mut map = IdentityMap::new();
        for &(func, package) in entries {
            map.insert_package(
                FuncId(func),
                vec![BlockIdentity {
                    origin: CodeRef::new(func, 0),
                    package,
                    phase: 0,
                    is_exit: false,
                    is_stub: false,
                }],
            );
        }
        map
    }

    #[test]
    fn residency_sink_folds_runs_into_intervals() {
        let a = CodeRef::new(0, 0);
        let b = CodeRef::new(1, 0);
        let out = CodeRef::new(9, 0);
        // Functions 0 and 1 are package functions (packages 0 and 1);
        // function 9 is original code.
        let mut sink = ResidencySink::new(map_with(&[(0, 0), (1, 1)]));
        for loc in [a, a, a, out, out, b, b, a] {
            sink.retire(&retired(loc));
        }
        let intervals = sink.finish();
        assert_eq!(
            intervals,
            vec![
                ResidencyInterval {
                    start: 0,
                    end: 3,
                    package: Some(0)
                },
                ResidencyInterval {
                    start: 3,
                    end: 5,
                    package: None
                },
                ResidencyInterval {
                    start: 5,
                    end: 7,
                    package: Some(1)
                },
                ResidencyInterval {
                    start: 7,
                    end: 8,
                    package: Some(0)
                },
            ]
        );
        // Intervals tile the stream exactly.
        assert_eq!(intervals.iter().map(ResidencyInterval::len).sum::<u64>(), 8);
        assert!(intervals.windows(2).all(|w| w[0].end == w[1].start));
        assert!(intervals.windows(2).all(|w| w[0].package != w[1].package));
    }

    #[test]
    fn residency_sink_empty_stream_yields_no_intervals() {
        let sink = ResidencySink::new(IdentityMap::new());
        assert!(sink.finish().is_empty());
    }
}
