//! # vp-metrics
//!
//! Experiment metrics and the end-to-end harness behind the paper's
//! evaluation section:
//!
//! * [`profile`] / [`evaluate`] — the Figure 8 / Figure 10 / Table 3 cell
//!   driver: profile a workload once with the Hot Spot Detector, then
//!   evaluate any number of `{inference} × {linking}` configurations;
//! * [`BranchCounts`] — ground-truth per-branch dynamic counts;
//! * [`categorize()`] — the Figure 9 branch taxonomy (Unique/Multi ×
//!   bias/swing);
//! * [`TextTable`] / [`bar`] — plain-text rendering used by the `bench`
//!   crate's table/figure binaries.
//!
//! ```no_run
//! use vp_metrics::{profile, evaluate};
//! use vp_hsd::HsdConfig;
//! use vp_core::PackConfig;
//! use vp_opt::OptConfig;
//!
//! let program = vp_workloads::twolf::build(1);
//! let pw = profile("300.twolf A", program, &HsdConfig::table2(), None)?;
//! let out = evaluate(&pw, &PackConfig::default(), &OptConfig::default(), None)?;
//! println!("coverage: {:.1}%", 100.0 * out.coverage);
//! # Ok::<(), vp_exec::ExecError>(())
//! ```
//!
//! ## Capture/replay lifecycle
//!
//! The harness never executes an original binary more than once per
//! `(workload, [`vp_exec::RunConfig`])` key: [`profile`] routes the run
//! through [`vp_exec::TraceStore::global`], which records the retired
//! stream on first contact and replays it for every later consumer.
//! Within one [`ProfiledWorkload`], the Hot Spot Detector, the
//! [`BranchCounts`] oracle, and baseline timing all observe the *same*
//! capture; across calls, re-profiling a workload under a different
//! detector configuration (the ablation sweeps) replays instead of
//! re-executing. Only packed binaries run live, because rewriting
//! changes the stream.
//!
//! The same machinery is available directly — capture once, replay into
//! a [`vp_hsd::HotSpotDetector`] (or any other `Sink`) as many times as
//! needed:
//!
//! ```
//! use vp_exec::{CapturedTrace, RunConfig};
//! use vp_hsd::{HotSpotDetector, HsdConfig};
//! use vp_program::{Layout, ProgramBuilder};
//! use vp_isa::Reg;
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", |f| {
//!     let i = Reg::int(8);
//!     f.li(i, 0);
//!     f.for_range(i, 0, 2000, |f| f.nop());
//!     f.halt();
//! });
//! let p = pb.build();
//! let layout = Layout::natural(&p);
//!
//! // One architectural execution...
//! let trace = CapturedTrace::capture(&p, &layout, &RunConfig::default())?;
//!
//! // ...replayed through hardware profilers of different geometries.
//! let mut small = HotSpotDetector::new(HsdConfig::tiny());
//! let mut table2 = HotSpotDetector::new(HsdConfig::table2());
//! trace.replay(&mut small);
//! trace.replay(&mut table2);
//! assert!(!small.records().is_empty(), "tight loop is a hot spot");
//! # Ok::<(), vp_exec::ExecError>(())
//! ```

#![warn(missing_docs)]

pub mod branches;
pub mod categorize;
pub mod harness;
pub mod render;
pub mod result_cache;
pub mod timeline;

pub use branches::BranchCounts;
pub use categorize::{categorize, BranchCategory, Categorization, CATEGORIES};
pub use harness::{evaluate, evaluate_with_diff, profile, ConfigOutcome, ProfiledWorkload};
pub use render::{bar, pct, TextTable};
pub use result_cache::{ResultCache, ResultKey, DEFAULT_RESULT_MB, PIPELINE_VERSION};
pub use timeline::{phase_timeline, PhaseMark, ResidencyInterval, ResidencySink};
