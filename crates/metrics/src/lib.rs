//! # vp-metrics
//!
//! Experiment metrics and the end-to-end harness behind the paper's
//! evaluation section:
//!
//! * [`profile`] / [`evaluate`] — the Figure 8 / Figure 10 / Table 3 cell
//!   driver: profile a workload once with the Hot Spot Detector, then
//!   evaluate any number of `{inference} × {linking}` configurations;
//! * [`BranchCounts`] — ground-truth per-branch dynamic counts;
//! * [`categorize`] — the Figure 9 branch taxonomy (Unique/Multi ×
//!   bias/swing);
//! * [`TextTable`] / [`bar`] — plain-text rendering used by the `bench`
//!   crate's table/figure binaries.
//!
//! ```no_run
//! use vp_metrics::{profile, evaluate};
//! use vp_hsd::HsdConfig;
//! use vp_core::PackConfig;
//! use vp_opt::OptConfig;
//!
//! let program = vp_workloads::twolf::build(1);
//! let pw = profile("300.twolf A", program, &HsdConfig::table2(), None)?;
//! let out = evaluate(&pw, &PackConfig::default(), &OptConfig::default(), None)?;
//! println!("coverage: {:.1}%", 100.0 * out.coverage);
//! # Ok::<(), vp_exec::ExecError>(())
//! ```

#![warn(missing_docs)]

pub mod branches;
pub mod categorize;
pub mod harness;
pub mod render;

pub use branches::BranchCounts;
pub use categorize::{categorize, BranchCategory, Categorization, CATEGORIES};
pub use harness::{evaluate, profile, ConfigOutcome, ProfiledWorkload};
pub use render::{bar, pct, TextTable};
