//! Per-branch dynamic profiling sink (ground truth for Figure 9).

use vp_exec::{FxHashMap, Retired, Sink};

/// Exact per-static-branch dynamic counts, keyed by branch address — the
/// oracle the hardware profiler approximates.
#[derive(Debug, Clone, Default)]
pub struct BranchCounts {
    map: FxHashMap<u64, (u64, u64)>, // (executed, taken)
    total: u64,
}

impl BranchCounts {
    /// Creates an empty profile.
    pub fn new() -> BranchCounts {
        BranchCounts::default()
    }

    /// Dynamic executions of the branch at `addr`.
    pub fn exec(&self, addr: u64) -> u64 {
        self.map.get(&addr).map_or(0, |e| e.0)
    }

    /// Dynamic taken count of the branch at `addr`.
    pub fn taken(&self, addr: u64) -> u64 {
        self.map.get(&addr).map_or(0, |e| e.1)
    }

    /// Total dynamic conditional-branch executions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct static branches seen.
    pub fn statics(&self) -> usize {
        self.map.len()
    }

    /// Iterates `(addr, executed, taken)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.map.iter().map(|(&a, &(e, t))| (a, e, t))
    }
}

impl Sink for BranchCounts {
    fn retire(&mut self, r: &Retired) {
        if let Some(c) = &r.ctrl {
            if c.is_cond {
                let e = self.map.entry(r.addr).or_insert((0, 0));
                e.0 += 1;
                if c.arch_taken {
                    e.1 += 1;
                }
                self.total += 1;
            }
        }
    }

    fn retire_batch(&mut self, batch: &[Retired]) {
        // Accumulate the total in a register across the chunk; the map
        // update (the expensive part) only runs for conditional branches.
        let mut total = 0u64;
        for r in batch {
            if let Some(c) = &r.ctrl {
                if c.is_cond {
                    let e = self.map.entry(r.addr).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += u64::from(c.arch_taken);
                    total += 1;
                }
            }
        }
        self.total += total;
    }
}

/// Test-only event constructors shared by this crate's unit tests.
#[cfg(test)]
pub mod tests_support {
    use vp_exec::{Ctrl, Retired};
    use vp_isa::{CodeRef, FuClass};

    /// A retired conditional branch at `addr`.
    pub fn branch_event(addr: u64, taken: bool) -> Retired {
        Retired {
            loc: CodeRef::new(0, 0),
            addr,
            fu: FuClass::Branch,
            latency: 1,
            def: None,
            uses: [None; 3],
            mem_addr: None,
            is_store: false,
            ctrl: Some(Ctrl {
                block: CodeRef::new(0, 0),
                is_cond: true,
                arch_taken: taken,
                taken,
                is_call: false,
                is_ret: false,
                target: 0,
                ret_addr: 0,
            }),
            in_package: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::Ctrl;
    use vp_isa::{CodeRef, FuClass};

    fn branch_event(addr: u64, taken: bool) -> Retired {
        Retired {
            loc: CodeRef::new(0, 0),
            addr,
            fu: FuClass::Branch,
            latency: 1,
            def: None,
            uses: [None; 3],
            mem_addr: None,
            is_store: false,
            ctrl: Some(Ctrl {
                block: CodeRef::new(0, 0),
                is_cond: true,
                arch_taken: taken,
                taken,
                is_call: false,
                is_ret: false,
                target: 0,
                ret_addr: 0,
            }),
            in_package: false,
        }
    }

    #[test]
    fn counts_per_branch() {
        let mut bc = BranchCounts::new();
        bc.retire(&branch_event(0x10, true));
        bc.retire(&branch_event(0x10, false));
        bc.retire(&branch_event(0x20, true));
        assert_eq!(bc.exec(0x10), 2);
        assert_eq!(bc.taken(0x10), 1);
        assert_eq!(bc.total(), 3);
        assert_eq!(bc.statics(), 2);
    }

    #[test]
    fn non_branches_ignored() {
        let mut bc = BranchCounts::new();
        let mut ev = branch_event(0x10, true);
        ev.ctrl = None;
        bc.retire(&ev);
        assert_eq!(bc.total(), 0);
    }
}
