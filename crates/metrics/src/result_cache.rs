//! Content-addressed evaluation result cache.
//!
//! One sweep cell is `evaluate(profile(workload), config)` — a trace
//! replay through the packing pipeline plus two timing-model passes, by
//! far the most expensive step of a sweep. Its outcome is a pure function
//! of (what ran, what profile drove packing, which knobs were set, which
//! pipeline code computed it). This module memoizes [`ConfigOutcome`]s on
//! disk under exactly that key, so an incremental re-sweep after an
//! unrelated edit skips replay and simulation for every unchanged cell —
//! and a workload whose cells are *all* cached is never even profiled.
//!
//! # Key derivation
//!
//! [`ResultKey`] is derivable **without executing anything**:
//!
//! * `trace_fp` — the structural trace-key fingerprint of the workload
//!   ([`vp_exec::TraceKey::new`] hashes block counts and laid-out
//!   addresses plus the run limits). Regenerating the same workload at
//!   the same scale reproduces it; any program or layout change misses.
//! * `profile_fp` — how the phases driving the pack were obtained: the
//!   detector/filter configuration for an own-profile cell, the source
//!   input's trace fingerprint for a cross-input cell, the whole family
//!   fold plus the merge configuration for a merged-profile cell.
//! * `config_fp` — every knob of the evaluated cell:
//!   `PackConfig::fingerprint`, `OptConfig::fingerprint`,
//!   `MachineConfig::fingerprint` (or absence), and the diff mode.
//! * [`PIPELINE_VERSION`] — a manually-bumped constant folded into every
//!   stored entry. **Bump it whenever the semantics of profiling,
//!   packing, optimization, or timing change** (new pass, changed
//!   threshold meaning, different cycle accounting): entries written by
//!   older code self-invalidate on load instead of serving stale numbers.
//!
//! # Determinism contract
//!
//! A cached hit must be byte-for-byte the outcome the evaluation would
//! have produced: `f64`s round-trip through [`f64::to_bits`], and an
//! outcome whose diff report carries divergence forensics is *refused* by
//! [`ResultCache::store`] (the forensics embed visit records that are
//! expensive to serialize and only matter interactively — such cells
//! simply re-evaluate). Sweep reports therefore render identically from
//! cold and warm runs, which the subprocess determinism tests pin.
//!
//! # On-disk format
//!
//! One file per cell, named by the key's hex fingerprint:
//! `magic "VPRC" | format version | CRC-32 of payload | payload`, where
//! the payload echoes the full key (pipeline version, cell label, three
//! fingerprints) followed by the encoded outcome. Loads verify magic,
//! versions, CRC, and the key echo; any mismatch deletes the file
//! (self-heal) and reports a miss. Stores are atomic (temp file +
//! rename), and the directory is evicted oldest-mtime-first to the
//! `VP_RESULT_MB` budget, mirroring the trace store's disk tier.

use crate::harness::ConfigOutcome;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;
use vp_exec::diff::{DiffReport, DiffVerdict};
use vp_exec::{crc32, TraceKey};
use vp_isa::Fnv;
use vp_trace::Counter;

/// Probes answered from the cache.
static RC_HITS: Counter = Counter::new("result_cache.hits");
/// Probes that found no usable entry (absent, corrupt, or stale).
static RC_MISSES: Counter = Counter::new("result_cache.misses");
/// Outcomes persisted.
static RC_STORES: Counter = Counter::new("result_cache.stores");
/// Entries removed to stay inside the byte budget.
static RC_EVICTIONS: Counter = Counter::new("result_cache.evictions");
/// Entries deleted on load because they were corrupt, keyed differently
/// than their name promised, or written by an older format or pipeline.
static RC_INVALIDATED: Counter = Counter::new("result_cache.invalidated");

/// Version of the on-disk entry encoding. Bump on any layout change.
pub const RESULT_FORMAT_VERSION: u32 = 1;

/// Version of the *evaluation pipeline semantics* folded into every key.
///
/// Bump this constant whenever a change alters what any cell would
/// compute — a new or reordered optimization pass, a timing-model
/// accounting change, a packing-heuristic fix — even if no configuration
/// struct changed shape. Entries written under the old version then
/// self-invalidate on load. Pure refactors that provably preserve every
/// reported number (the bit-identity suite is the arbiter) do not need a
/// bump.
pub const PIPELINE_VERSION: u32 = 1;

/// Default byte budget when `VP_RESULT_MB` is unset. Entries are ~200
/// bytes, so this comfortably holds millions of cells.
pub const DEFAULT_RESULT_MB: u64 = 64;

const MAGIC: &[u8; 4] = b"VPRC";
const EXT: &str = "vprc";

// ------------------------------------------------------------------ key

/// Content address of one evaluation cell.
///
/// See the module docs for how each fingerprint is derived; all of them
/// are computable before any profiling or replay happens, which is what
/// lets a fully-cached workload skip profiling entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultKey {
    /// Human-readable cell label (e.g. `"130.li A/IL"`); echoed into the
    /// entry and verified on load so hash collisions can never serve a
    /// foreign cell's numbers.
    pub cell: String,
    /// Structural fingerprint of the workload's trace key.
    pub trace_fp: u64,
    /// Fingerprint of how the driving profile was obtained.
    pub profile_fp: u64,
    /// Fingerprint of the evaluated configuration knobs.
    pub config_fp: u64,
}

impl ResultKey {
    /// Folds a [`TraceKey`]'s identifying fields into one fingerprint.
    ///
    /// The workload label, structural checksum, variant, and run limits
    /// all participate — the same components that distinguish trace
    /// captures distinguish evaluation results.
    pub fn trace_fingerprint(key: &TraceKey) -> u64 {
        let mut h = Fnv::new();
        h.write_str("TraceKey");
        h.write_str(&key.workload);
        h.write_u64(key.fingerprint);
        h.write_u64(key.variant);
        h.write_u64(key.max_insts);
        h.write_u64(key.max_depth);
        h.finish()
    }

    /// The 64-bit address the entry file is named after.
    fn address(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u32(PIPELINE_VERSION);
        h.write_str(&self.cell);
        h.write_u64(self.trace_fp);
        h.write_u64(self.profile_fp);
        h.write_u64(self.config_fp);
        h.finish()
    }
}

// ---------------------------------------------------------------- codec

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn verdict_code(v: DiffVerdict) -> u8 {
    match v {
        DiffVerdict::Clean => 0,
        DiffVerdict::Truncated => 1,
        DiffVerdict::Diverged => 2,
        DiffVerdict::Skipped => 3,
    }
}

fn verdict_from(code: u8) -> Option<DiffVerdict> {
    Some(match code {
        0 => DiffVerdict::Clean,
        1 => DiffVerdict::Truncated,
        2 => DiffVerdict::Diverged,
        3 => DiffVerdict::Skipped,
        _ => return None,
    })
}

fn encode_outcome(w: &mut Writer, o: &ConfigOutcome) {
    w.f64(o.coverage);
    w.f64(o.expansion);
    w.f64(o.selected_fraction);
    w.f64(o.replication);
    w.u64(o.packages as u64);
    w.u64(o.phases as u64);
    w.u64(o.launch_points as u64);
    match o.opt_cycles {
        Some(c) => {
            w.u8(1);
            w.u64(c);
        }
        None => w.u8(0),
    }
    match o.speedup {
        Some(s) => {
            w.u8(1);
            w.f64(s);
        }
        None => w.u8(0),
    }
    match &o.diff {
        Some(d) => {
            debug_assert!(d.divergence.is_none(), "store() refuses divergences");
            w.u8(1);
            w.u8(verdict_code(d.verdict));
            w.u64(d.orig_visits);
            w.u64(d.packed_visits);
            w.u64(d.aligned_visits);
            w.u64(d.exit_events);
            w.u64(d.stub_events);
            w.u64(d.migrations);
        }
        None => w.u8(0),
    }
}

fn decode_outcome(r: &mut Reader<'_>) -> Option<ConfigOutcome> {
    let coverage = r.f64()?;
    let expansion = r.f64()?;
    let selected_fraction = r.f64()?;
    let replication = r.f64()?;
    let packages = usize::try_from(r.u64()?).ok()?;
    let phases = usize::try_from(r.u64()?).ok()?;
    let launch_points = usize::try_from(r.u64()?).ok()?;
    let opt_cycles = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return None,
    };
    let speedup = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        _ => return None,
    };
    let diff = match r.u8()? {
        0 => None,
        1 => Some(DiffReport {
            verdict: verdict_from(r.u8()?)?,
            orig_visits: r.u64()?,
            packed_visits: r.u64()?,
            aligned_visits: r.u64()?,
            exit_events: r.u64()?,
            stub_events: r.u64()?,
            migrations: r.u64()?,
            divergence: None,
        }),
        _ => return None,
    };
    Some(ConfigOutcome {
        coverage,
        expansion,
        selected_fraction,
        replication,
        packages,
        phases,
        launch_points,
        opt_cycles,
        speedup,
        diff,
    })
}

fn encode(key: &ResultKey, outcome: &ConfigOutcome) -> Vec<u8> {
    let mut payload = Writer(Vec::with_capacity(192));
    payload.u32(PIPELINE_VERSION);
    payload.str(&key.cell);
    payload.u64(key.trace_fp);
    payload.u64(key.profile_fp);
    payload.u64(key.config_fp);
    encode_outcome(&mut payload, outcome);

    let mut out = Writer(Vec::with_capacity(payload.0.len() + 12));
    out.0.extend_from_slice(MAGIC);
    out.u32(RESULT_FORMAT_VERSION);
    out.u32(crc32(&payload.0));
    out.0.extend_from_slice(&payload.0);
    out.0
}

/// Decodes a full entry; `None` on any structural problem. The key echo
/// is returned for the caller to verify against the requested key.
fn decode(bytes: &[u8]) -> Option<(ResultKey, u32, ConfigOutcome)> {
    let mut r = Reader { buf: bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return None;
    }
    if r.u32()? != RESULT_FORMAT_VERSION {
        return None;
    }
    let crc = r.u32()?;
    if crc32(&bytes[r.at..]) != crc {
        return None;
    }
    let pipeline = r.u32()?;
    let key = ResultKey {
        cell: r.str()?,
        trace_fp: r.u64()?,
        profile_fp: r.u64()?,
        config_fp: r.u64()?,
    };
    let outcome = decode_outcome(&mut r)?;
    if !r.done() {
        return None; // trailing garbage: treat as corrupt
    }
    Some((key, pipeline, outcome))
}

// ---------------------------------------------------------------- cache

/// Disk-backed store of evaluation outcomes.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
    cap_bytes: u64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir` with a byte
    /// budget.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn new(dir: impl Into<PathBuf>, cap_bytes: u64) -> io::Result<ResultCache> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root, cap_bytes })
    }

    /// Builds the cache from `VP_RESULT_DIR` / `VP_RESULT_MB`.
    ///
    /// `None` — caching disabled — when the directory is unset or empty,
    /// the budget parses to 0, or the directory cannot be created (the
    /// last with a warning: a misspelled path should not silently turn
    /// off memoization the user asked for).
    pub fn from_env() -> Option<ResultCache> {
        let dir = std::env::var("VP_RESULT_DIR").ok()?;
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        let mb = match std::env::var("VP_RESULT_MB").ok().as_deref() {
            Some(s) => s.trim().parse::<u64>().unwrap_or(DEFAULT_RESULT_MB),
            None => DEFAULT_RESULT_MB,
        };
        if mb == 0 {
            return None;
        }
        match ResultCache::new(dir, mb.saturating_mul(1024 * 1024)) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("vp-metrics: VP_RESULT_DIR={dir} unusable ({e}); result cache disabled");
                None
            }
        }
    }

    /// The entry path for `key`.
    pub fn path_for(&self, key: &ResultKey) -> PathBuf {
        self.root.join(format!("{:016x}.{EXT}", key.address()))
    }

    /// Looks up `key`. A usable entry bumps `result_cache.hits` and the
    /// file's mtime (recency for eviction); an absent entry is a plain
    /// miss; a corrupt, mis-keyed, or stale-pipeline entry is deleted
    /// (self-heal), counted invalidated, and reported as a miss.
    pub fn load(&self, key: &ResultKey) -> Option<ConfigOutcome> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                RC_MISSES.incr();
                return None;
            }
        };
        match decode(&bytes) {
            Some((echoed, pipeline, outcome)) if echoed == *key && pipeline == PIPELINE_VERSION => {
                RC_HITS.incr();
                // Best-effort recency bump; eviction degrades to
                // least-recently-written if the touch fails.
                if let Ok(f) = fs::File::options().write(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(outcome)
            }
            _ => {
                let _ = fs::remove_file(&path);
                RC_INVALIDATED.incr();
                RC_MISSES.incr();
                None
            }
        }
    }

    /// Persists `outcome` under `key` atomically, then evicts
    /// oldest-mtime entries down to the budget.
    ///
    /// Refused (returning `false`) when the outcome's diff report carries
    /// divergence forensics — those embed visit records that are not
    /// worth serializing, and a diverging cell should re-run under
    /// scrutiny anyway.
    pub fn store(&self, key: &ResultKey, outcome: &ConfigOutcome) -> bool {
        if outcome
            .diff
            .as_ref()
            .is_some_and(|d| d.divergence.is_some())
        {
            return false;
        }
        let bytes = encode(key, outcome);
        if bytes.len() as u64 > self.cap_bytes {
            return false;
        }
        let path = self.path_for(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if fs::write(&tmp, &bytes).is_err() || fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        RC_STORES.incr();
        self.evict_to_budget(&path);
        true
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.scan().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.scan().is_empty()
    }

    fn scan(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                out.push((path, meta.len(), mtime));
            }
        }
        out
    }

    fn evict_to_budget(&self, keep: &Path) {
        let mut files = self.scan();
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        if total <= self.cap_bytes {
            return;
        }
        // Oldest first; the path tie-break keeps eviction deterministic
        // when mtime granularity groups writes.
        files.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        for (path, len, _) in files {
            if total <= self.cap_bytes {
                break;
            }
            if path == keep {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                RC_EVICTIONS.incr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use vp_exec::diff::Divergence;

    fn tempdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vprc-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(cell: &str) -> ResultKey {
        ResultKey {
            cell: cell.to_string(),
            trace_fp: 0x1111,
            profile_fp: 0x2222,
            config_fp: 0x3333,
        }
    }

    fn outcome() -> ConfigOutcome {
        ConfigOutcome {
            coverage: 0.8315,
            expansion: 0.0234,
            selected_fraction: 0.125,
            replication: 1.75,
            packages: 7,
            phases: 11,
            launch_points: 23,
            opt_cycles: Some(123_456_789),
            speedup: Some(1.0625),
            diff: Some(DiffReport {
                verdict: DiffVerdict::Clean,
                orig_visits: 1000,
                packed_visits: 1002,
                aligned_visits: 1000,
                exit_events: 1,
                stub_events: 1,
                migrations: 3,
                divergence: None,
            }),
        }
    }

    fn assert_outcomes_eq(a: &ConfigOutcome, b: &ConfigOutcome) {
        assert_eq!(a.coverage.to_bits(), b.coverage.to_bits());
        assert_eq!(a.expansion.to_bits(), b.expansion.to_bits());
        assert_eq!(a.selected_fraction.to_bits(), b.selected_fraction.to_bits());
        assert_eq!(a.replication.to_bits(), b.replication.to_bits());
        assert_eq!(a.packages, b.packages);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.launch_points, b.launch_points);
        assert_eq!(a.opt_cycles, b.opt_cycles);
        assert_eq!(
            a.speedup.map(f64::to_bits),
            b.speedup.map(f64::to_bits),
            "speedup must round-trip bit-exactly"
        );
        assert_eq!(a.diff, b.diff);
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let c = ResultCache::new(tempdir("roundtrip"), 1 << 20).unwrap();
        let k = key("130.li A/IL");
        let o = outcome();
        assert!(c.store(&k, &o));
        let back = c.load(&k).expect("hit");
        assert_outcomes_eq(&o, &back);
    }

    #[test]
    fn awkward_floats_roundtrip() {
        let c = ResultCache::new(tempdir("floats"), 1 << 20).unwrap();
        for (i, v) in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            1.0 / 3.0,
            f64::NAN,
        ]
        .into_iter()
        .enumerate()
        {
            let k = key(&format!("cell{i}"));
            let o = ConfigOutcome {
                coverage: v,
                speedup: Some(v),
                ..ConfigOutcome::default()
            };
            assert!(c.store(&k, &o));
            let back = c.load(&k).expect("hit");
            assert_eq!(back.coverage.to_bits(), v.to_bits());
            assert_eq!(back.speedup.unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn none_fields_roundtrip() {
        let c = ResultCache::new(tempdir("nones"), 1 << 20).unwrap();
        let k = key("bare");
        let o = ConfigOutcome::default();
        assert!(c.store(&k, &o));
        let back = c.load(&k).expect("hit");
        assert_eq!(back.opt_cycles, None);
        assert_eq!(back.speedup, None);
        assert_eq!(back.diff, None);
    }

    #[test]
    fn absent_entry_is_a_plain_miss() {
        let c = ResultCache::new(tempdir("miss"), 1 << 20).unwrap();
        assert!(c.load(&key("nope")).is_none());
    }

    #[test]
    fn divergent_outcomes_are_refused() {
        let c = ResultCache::new(tempdir("diverge"), 1 << 20).unwrap();
        let k = key("bad");
        let mut o = outcome();
        o.diff.as_mut().unwrap().divergence = Some(Divergence {
            index: 5,
            expected: None,
            actual: None,
            context: Vec::new(),
        });
        assert!(!c.store(&k, &o), "divergence-carrying outcome must refuse");
        assert!(c.load(&k).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn corruption_anywhere_is_refused_and_healed() {
        let base = tempdir("corrupt");
        let k = key("cell");
        let o = outcome();
        // Build one good entry to learn its length.
        let c = ResultCache::new(base.join("probe"), 1 << 20).unwrap();
        assert!(c.store(&k, &o));
        let good = fs::read(c.path_for(&k)).unwrap();

        for i in 0..good.len() {
            let dir = base.join(format!("bit{i}"));
            let c = ResultCache::new(&dir, 1 << 20).unwrap();
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(c.path_for(&k), &bad).unwrap();
            // Flipping a bit in the magic, version, CRC, key echo, or
            // body must all be refused; the poisoned file is deleted.
            assert!(c.load(&k).is_none(), "byte {i} flip accepted");
            assert!(
                !c.path_for(&k).exists(),
                "byte {i}: poisoned entry not healed"
            );
        }

        // Truncation at every boundary.
        for cut in 0..good.len() {
            let dir = base.join(format!("cut{cut}"));
            let c = ResultCache::new(&dir, 1 << 20).unwrap();
            fs::write(c.path_for(&k), &good[..cut]).unwrap();
            assert!(c.load(&k).is_none(), "truncation at {cut} accepted");
            assert!(!c.path_for(&k).exists());
        }

        // Trailing garbage.
        let c = ResultCache::new(base.join("tail"), 1 << 20).unwrap();
        let mut long = good.clone();
        long.push(0);
        fs::write(c.path_for(&k), &long).unwrap();
        assert!(c.load(&k).is_none());
    }

    #[test]
    fn key_field_changes_miss() {
        let c = ResultCache::new(tempdir("fields"), 1 << 20).unwrap();
        let k = key("cell");
        assert!(c.store(&k, &outcome()));
        for other in [
            ResultKey {
                cell: "other".into(),
                ..k.clone()
            },
            ResultKey {
                trace_fp: k.trace_fp ^ 1,
                ..k.clone()
            },
            ResultKey {
                profile_fp: k.profile_fp ^ 1,
                ..k.clone()
            },
            ResultKey {
                config_fp: k.config_fp ^ 1,
                ..k.clone()
            },
        ] {
            assert!(c.load(&other).is_none(), "{other:?} must miss");
        }
        // The original entry survives the misses (different filenames).
        assert!(c.load(&k).is_some());
    }

    #[test]
    fn mis_keyed_file_is_refused_by_echo() {
        // An entry renamed to another key's filename decodes fine but
        // echoes the wrong key: it must be refused and deleted.
        let c = ResultCache::new(tempdir("echo"), 1 << 20).unwrap();
        let k1 = key("one");
        let k2 = key("two");
        assert!(c.store(&k1, &outcome()));
        fs::rename(c.path_for(&k1), c.path_for(&k2)).unwrap();
        assert!(c.load(&k2).is_none());
        assert!(!c.path_for(&k2).exists(), "mis-keyed entry not healed");
    }

    #[test]
    fn eviction_is_lru_by_mtime() {
        let c = ResultCache::new(tempdir("evict"), 1 << 20).unwrap();
        let o = outcome();
        let entry_len = {
            let k = key("probe");
            assert!(c.store(&k, &o));
            let len = fs::metadata(c.path_for(&k)).unwrap().len();
            fs::remove_file(c.path_for(&k)).unwrap();
            len
        };
        // Budget for exactly three entries.
        let c = ResultCache::new(tempdir("evict3"), entry_len * 3).unwrap();
        let keys: Vec<ResultKey> = (0..4).map(|i| key(&format!("c{i}"))).collect();
        for k in &keys[..3] {
            assert!(c.store(k, &o));
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // Touch c0 (a load bumps mtime), making c1 the oldest.
        assert!(c.load(&keys[0]).is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(c.store(&keys[3], &o));
        assert!(c.load(&keys[1]).is_none(), "LRU entry must be evicted");
        assert!(c.load(&keys[0]).is_some(), "recently-used entry survives");
        assert!(c.load(&keys[3]).is_some(), "new entry survives");
    }

    #[test]
    fn oversized_store_is_refused() {
        let c = ResultCache::new(tempdir("oversize"), 10).unwrap();
        assert!(!c.store(&key("big"), &outcome()));
        assert!(c.is_empty());
    }

    #[test]
    fn from_env_parses_dir_and_budget() {
        // Env is process-global; one test function covers every case so
        // parallel tests never race on it.
        std::env::remove_var("VP_RESULT_DIR");
        assert!(ResultCache::from_env().is_none(), "unset dir disables");
        std::env::set_var("VP_RESULT_DIR", "  ");
        assert!(ResultCache::from_env().is_none(), "blank dir disables");
        let dir = tempdir("fromenv");
        std::env::set_var("VP_RESULT_DIR", &dir);
        std::env::set_var("VP_RESULT_MB", "0");
        assert!(ResultCache::from_env().is_none(), "zero budget disables");
        std::env::set_var("VP_RESULT_MB", "2");
        let c = ResultCache::from_env().expect("enabled");
        assert_eq!(c.cap_bytes, 2 * 1024 * 1024);
        assert_eq!(c.root, dir);
        std::env::set_var("VP_RESULT_MB", "nonsense");
        let c = ResultCache::from_env().expect("enabled at default budget");
        assert_eq!(c.cap_bytes, DEFAULT_RESULT_MB * 1024 * 1024);
        std::env::remove_var("VP_RESULT_DIR");
        std::env::remove_var("VP_RESULT_MB");
    }
}
