//! End-to-end experiment driver.
//!
//! One profiled workload ([`profile`]) can be evaluated under many pipeline
//! configurations ([`evaluate`]) — exactly how the paper's Figures 8 and 10
//! sweep the {inference} × {linking} matrix over each benchmark/input.

use crate::branches::BranchCounts;
use vp_core::{pack, PackConfig, PackOutput};
use vp_exec::{ExecError, Executor, InstCounts, RunConfig, Sink, StopReason};
use vp_hsd::{filter_hot_spots, FilterConfig, HotSpotDetector, HsdConfig, Phase};
use vp_opt::{optimize_packages, OptConfig};
use vp_program::{Layout, Program};
use vp_sim::{MachineConfig, TimingModel};

/// A workload after its profiling run: the inputs to region formation.
#[derive(Debug)]
pub struct ProfiledWorkload {
    /// Display label.
    pub label: String,
    /// The original program.
    pub program: Program,
    /// Natural layout of the original program (BBB addresses refer to it).
    pub layout: Layout,
    /// Unique phases after software filtering.
    pub phases: Vec<Phase>,
    /// Ground-truth per-branch dynamic counts.
    pub branch_counts: BranchCounts,
    /// Dynamic instructions of the run (Table 1's "# of Inst").
    pub dyn_insts: u64,
    /// Cycles of the original binary on the Table 2 machine, when timing
    /// was requested.
    pub base_cycles: Option<u64>,
    /// Raw (unfiltered) hot-spot detections.
    pub raw_detections: usize,
}

/// Profiles `program` with the Hot Spot Detector attached, optionally
/// timing the original binary on `machine`.
///
/// # Errors
///
/// Propagates [`ExecError`] from the executor (a malformed workload).
pub fn profile(
    label: &str,
    program: Program,
    hsd_cfg: &HsdConfig,
    machine: Option<&MachineConfig>,
) -> Result<ProfiledWorkload, ExecError> {
    let layout = Layout::natural(&program);
    let mut hsd = HotSpotDetector::new(*hsd_cfg);
    let mut counts = BranchCounts::new();
    let run_cfg = RunConfig::default();

    let (stats, base_cycles) = {
        let _s = vp_trace::span("metrics.profile.run");
        match machine {
            Some(m) => {
                let mut timing = TimingModel::new(*m);
                let mut sink = (&mut hsd, &mut counts, &mut timing);
                let stats = Executor::new(&program, &layout).run(&mut sink, &run_cfg)?;
                timing.emit_trace();
                (stats, Some(timing.cycles()))
            }
            None => {
                let mut sink = (&mut hsd, &mut counts);
                let stats = Executor::new(&program, &layout).run(&mut sink, &run_cfg)?;
                (stats, None)
            }
        }
    };
    debug_assert_eq!(
        stats.stop,
        StopReason::Halted,
        "{label}: workload must halt"
    );

    let raw_detections = hsd.records().len();
    let phases = {
        let _s = vp_trace::span("metrics.profile.filter");
        filter_hot_spots(hsd.records(), &FilterConfig::default())
    };
    Ok(ProfiledWorkload {
        label: label.to_string(),
        program,
        layout,
        phases,
        branch_counts: counts,
        dyn_insts: stats.retired,
        base_cycles,
        raw_detections,
    })
}

/// Outcome of one (workload, configuration) cell.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// Fraction of dynamic instructions retired inside packages
    /// (Figure 8).
    pub coverage: f64,
    /// Static-size increase fraction (Table 3 col 1).
    pub expansion: f64,
    /// Fraction of original static instructions selected (Table 3 col 2).
    pub selected_fraction: f64,
    /// Replication factor of selected instructions.
    pub replication: f64,
    /// Number of packages built.
    pub packages: usize,
    /// Number of unique phases.
    pub phases: usize,
    /// Launch points patched.
    pub launch_points: usize,
    /// Cycles of the vacuum-packed, optimized binary (when timed).
    pub opt_cycles: Option<u64>,
    /// Speedup over the original binary (when timed).
    pub speedup: Option<f64>,
}

/// Runs the Vacuum Packing pipeline on a profiled workload under one
/// configuration, measuring coverage and (optionally) speedup.
///
/// # Errors
///
/// Propagates [`ExecError`] from the measurement run.
pub fn evaluate(
    pw: &ProfiledWorkload,
    cfg: &PackConfig,
    opt_cfg: &OptConfig,
    machine: Option<&MachineConfig>,
) -> Result<ConfigOutcome, ExecError> {
    let out: PackOutput = {
        let _s = vp_trace::span("metrics.evaluate.pack");
        pack(&pw.program, &pw.layout, &pw.phases, cfg)
    };
    let run_cfg = RunConfig::default();

    let (counts, opt_cycles) = match machine {
        Some(m) => {
            let (opt_prog, order) = {
                let _s = vp_trace::span("metrics.evaluate.optimize");
                optimize_packages(&out, m, opt_cfg)
            };
            let opt_layout = Layout::new(&opt_prog, &order);
            let mut counts = InstCounts::new();
            let mut timing = TimingModel::new(*m);
            let mut sink = (&mut counts, &mut timing);
            let _s = vp_trace::span("metrics.evaluate.measure");
            run_measure(&opt_prog, &opt_layout, &mut sink, &run_cfg, &pw.label)?;
            timing.emit_trace();
            (counts, Some(timing.cycles()))
        }
        None => {
            let layout = Layout::natural(&out.program);
            let mut counts = InstCounts::new();
            let _s = vp_trace::span("metrics.evaluate.measure");
            run_measure(&out.program, &layout, &mut counts, &run_cfg, &pw.label)?;
            (counts, None)
        }
    };

    let speedup = match (pw.base_cycles, opt_cycles) {
        (Some(base), Some(opt)) => Some(base as f64 / opt.max(1) as f64),
        _ => None,
    };
    Ok(ConfigOutcome {
        coverage: counts.package_coverage(),
        expansion: out.expansion(),
        selected_fraction: out.selected_fraction(),
        replication: out.replication_factor(),
        packages: out.packages.len(),
        phases: pw.phases.len(),
        launch_points: out.launch_points,
        opt_cycles,
        speedup,
    })
}

fn run_measure(
    program: &Program,
    layout: &Layout,
    sink: &mut impl Sink,
    run_cfg: &RunConfig,
    label: &str,
) -> Result<(), ExecError> {
    let stats = Executor::new(program, layout).run(sink, run_cfg)?;
    debug_assert_eq!(
        stats.stop,
        StopReason::Halted,
        "{label}: packed binary must halt"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_workloads::twolf;

    #[test]
    fn profile_then_evaluate_twolf() {
        // twolf has three annealing regimes: the detector must find
        // multiple phases and the packed binary must reach high coverage.
        let program = twolf::build(1);
        let pw = profile("300.twolf A", program, &HsdConfig::table2(), None).unwrap();
        assert!(
            pw.phases.len() >= 2,
            "expected multiple phases, got {}",
            pw.phases.len()
        );
        assert!(pw.raw_detections >= pw.phases.len());

        let cfg = PackConfig::default();
        let out = evaluate(&pw, &cfg, &OptConfig::default(), None).unwrap();
        assert!(out.packages >= 1);
        assert!(out.coverage > 0.5, "coverage {:.3} too low", out.coverage);
        assert!(out.expansion > 0.0);
        assert!(out.replication >= 1.0);
    }

    #[test]
    fn linking_does_not_reduce_coverage() {
        let program = twolf::build(1);
        let pw = profile("300.twolf A", program, &HsdConfig::table2(), None).unwrap();
        let base = PackConfig::default();
        let no_link = PackConfig {
            linking: false,
            ..base
        };
        let with = evaluate(&pw, &base, &OptConfig::default(), None).unwrap();
        let without = evaluate(&pw, &no_link, &OptConfig::default(), None).unwrap();
        assert!(
            with.coverage + 1e-9 >= without.coverage,
            "linking must not hurt coverage: {} vs {}",
            with.coverage,
            without.coverage
        );
    }

    #[test]
    fn timed_evaluation_produces_speedup() {
        let program = twolf::build(1);
        let machine = MachineConfig::table2();
        let pw = profile("300.twolf A", program, &HsdConfig::table2(), Some(&machine)).unwrap();
        assert!(pw.base_cycles.unwrap() > 0);
        let out = evaluate(
            &pw,
            &PackConfig::default(),
            &OptConfig::default(),
            Some(&machine),
        )
        .unwrap();
        let s = out.speedup.unwrap();
        assert!(s > 0.8 && s < 2.0, "speedup {s:.3} out of plausible range");
    }
}
