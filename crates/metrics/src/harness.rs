//! End-to-end experiment driver.
//!
//! One profiled workload ([`profile`]) can be evaluated under many pipeline
//! configurations ([`evaluate`]) — exactly how the paper's Figures 8 and 10
//! sweep the {inference} × {linking} matrix over each benchmark/input.
//!
//! Collection is decoupled from consumption through the capture/replay
//! layer in `vp-exec`: [`profile`] obtains the original binary's retired
//! stream through the global [`TraceStore`] — one architectural execution
//! per `(workload, RunConfig)` key, process-wide — and every consumer
//! (the Hot Spot Detector, the branch-count oracle, baseline timing on
//! the Table 2 machine) runs off that shared capture. Re-profiling the
//! same workload under a different detector configuration, as the
//! ablation sweeps do, replays instead of re-executing; with
//! `VP_TRACE_DIR` set, captures persist to disk, so even a fresh process
//! (a re-run, a CI job, another shard of a multi-process sweep) profiles
//! at replay cost. Packed binaries go through the same store under a
//! [`TraceKey::packed`] key (the package-set fingerprint distinguishes
//! variants), their cycles are timed from replay, and every packed
//! capture is differentially replayed against the original one
//! (`vp_exec::diff`, `VP_DIFF` knob) to prove the rewrite did the same
//! architectural work.
//!
//! Profiles are also *transferable*: [`ProfiledWorkload::dump`] exports a
//! run's phases into the merge algebra (`vp_hsd::merge`), and
//! [`ProfiledWorkload::with_phases`] evaluates a foreign or merged
//! profile against this workload's input — the
//! train-on-A/evaluate-on-B generalization cells of the cross-input
//! sweep (`bench`'s `sweep cross`).

use crate::branches::BranchCounts;
use std::sync::Arc;
use vp_core::{pack, PackConfig, PackOutput};
use vp_exec::{
    diff_traces, CapturedTrace, DiffMode, DiffOptions, DiffReport, ExecError, InstCounts,
    RunConfig, StopReason, TraceKey, TraceStore,
};
use vp_hsd::{filter_hot_spots, FilterConfig, HotSpotDetector, HsdConfig, Phase};
use vp_opt::{optimize_packages, OptConfig};
use vp_program::{Layout, Program};
use vp_sim::{MachineConfig, TimingModel};

/// A workload after its profiling run: the inputs to region formation.
#[derive(Debug)]
pub struct ProfiledWorkload {
    /// Display label.
    pub label: String,
    /// The original program.
    pub program: Program,
    /// Natural layout of the original program (BBB addresses refer to it).
    pub layout: Layout,
    /// Unique phases after software filtering.
    pub phases: Vec<Phase>,
    /// Ground-truth per-branch dynamic counts.
    pub branch_counts: BranchCounts,
    /// Dynamic instructions of the run (Table 1's "# of Inst").
    pub dyn_insts: u64,
    /// Cycles of the original binary on the Table 2 machine, when timing
    /// was requested.
    pub base_cycles: Option<u64>,
    /// Raw (unfiltered) hot-spot detections.
    pub raw_detections: usize,
    /// The captured retired stream of the profiling run, shared with
    /// [`evaluate`] (baseline timing) and any later consumer.
    pub trace: Arc<CapturedTrace>,
}

impl ProfiledWorkload {
    /// Exports this profile as a merge-algebra dump
    /// ([`vp_hsd::merge`]): the filtered phases plus the run's
    /// retired-instruction count, ready to be absorbed into a
    /// [`MergedProfile`](vp_hsd::MergedProfile).
    pub fn dump(&self) -> vp_hsd::ProfileDump {
        vp_hsd::ProfileDump::new(&self.label, self.dyn_insts, self.phases.clone())
    }

    /// This workload's evaluation state with a *substituted* phase set —
    /// how a foreign (train-on-A/evaluate-on-B) or merged profile is
    /// evaluated against this input.
    ///
    /// Everything that defines the evaluation — the program, its layout,
    /// the captured original retired stream, baseline cycles — stays this
    /// workload's; only the profile driving region formation changes.
    /// Foreign branch addresses that do not resolve in this layout are
    /// skipped by region identification, so a stale profile can shrink
    /// coverage but never corrupt the packed binary (differential replay
    /// still proves equivalence under `VP_DIFF`). `source` names the
    /// profile's provenance in the returned label, which also keys packed
    /// trace-store entries apart from the same-input ones.
    pub fn with_phases(&self, phases: Vec<Phase>, source: &str) -> ProfiledWorkload {
        ProfiledWorkload {
            label: format!("{} [profile: {source}]", self.label),
            program: self.program.clone(),
            layout: self.layout.clone(),
            phases,
            branch_counts: self.branch_counts.clone(),
            dyn_insts: self.dyn_insts,
            base_cycles: self.base_cycles,
            raw_detections: self.raw_detections,
            trace: Arc::clone(&self.trace),
        }
    }
}

/// Profiles `program` with the Hot Spot Detector attached, optionally
/// timing the original binary on `machine`.
///
/// The retired stream comes from [`TraceStore::global`]: the first
/// profile of a `(workload, RunConfig)` key executes the program once
/// while recording; later profiles (e.g. detector-configuration sweeps)
/// replay the capture. Baseline cycles are always produced by replay.
///
/// # Errors
///
/// Propagates [`ExecError`] from the executor (a malformed workload).
pub fn profile(
    label: &str,
    program: Program,
    hsd_cfg: &HsdConfig,
    machine: Option<&MachineConfig>,
) -> Result<ProfiledWorkload, ExecError> {
    let layout = Layout::natural(&program);
    let mut hsd = HotSpotDetector::new(*hsd_cfg);
    let mut counts = BranchCounts::new();
    let run_cfg = RunConfig::default();
    let store = TraceStore::global();
    let key = TraceKey::new(label, &program, &layout, &run_cfg);

    let (trace, stats) = {
        let _s = vp_trace::span("metrics.profile.run");
        let mut sink = (&mut hsd, &mut counts);
        store.capture_or_replay_shared(key, &program, &layout, &run_cfg, &mut sink)?
    };
    debug_assert_eq!(
        stats.stop,
        StopReason::Halted,
        "{label}: workload must halt"
    );

    let base_cycles = machine.map(|m| {
        let _s = vp_trace::span("metrics.profile.base_timing");
        let mut timing = TimingModel::new(*m);
        timing.replay_trace(&trace);
        timing.emit_trace();
        timing.cycles()
    });

    let raw_detections = hsd.records().len();
    let phases = {
        let _s = vp_trace::span("metrics.profile.filter");
        filter_hot_spots(hsd.records(), &FilterConfig::default())
    };
    for phase in &phases {
        // Flight payload: (branches retired when first detected, phase id)
        // — the phase-begin timeline as the software filter sees it.
        vp_trace::flight("metrics.phase", phase.first_detected_at, phase.id as u64);
    }
    Ok(ProfiledWorkload {
        label: label.to_string(),
        program,
        layout,
        phases,
        branch_counts: counts,
        dyn_insts: stats.retired,
        base_cycles,
        raw_detections,
        trace,
    })
}

/// Outcome of one (workload, configuration) cell.
#[derive(Debug, Clone, Default)]
pub struct ConfigOutcome {
    /// Fraction of dynamic instructions retired inside packages
    /// (Figure 8).
    pub coverage: f64,
    /// Static-size increase fraction (Table 3 col 1).
    pub expansion: f64,
    /// Fraction of original static instructions selected (Table 3 col 2).
    pub selected_fraction: f64,
    /// Replication factor of selected instructions.
    pub replication: f64,
    /// Number of packages built.
    pub packages: usize,
    /// Number of unique phases.
    pub phases: usize,
    /// Launch points patched.
    pub launch_points: usize,
    /// Cycles of the vacuum-packed, optimized binary (when timed).
    pub opt_cycles: Option<u64>,
    /// Speedup over the original binary (when timed).
    pub speedup: Option<f64>,
    /// Differential-replay result for the packed run (`None` when
    /// `VP_DIFF=off`).
    pub diff: Option<DiffReport>,
}

/// Runs the Vacuum Packing pipeline on a profiled workload under one
/// configuration, measuring coverage and (optionally) speedup, diffing
/// the packed run against the original capture per `VP_DIFF`
/// ([`DiffMode::from_env`]).
///
/// Nothing executes live more than once per key: the packed binary's
/// retired stream goes through [`TraceStore::global`] under a
/// [`TraceKey::packed`] key (workload × packed-program structure ×
/// package-set fingerprint), packed cycles are produced by replaying that
/// capture through the [`TimingModel`] — the same measurement path
/// baseline cycles use — and baseline cycles come from
/// [`ProfiledWorkload::base_cycles`] or a replay of the profile's shared
/// capture.
///
/// # Errors
///
/// Propagates [`ExecError`] from the measurement run.
///
/// # Panics
///
/// Panics under `VP_DIFF=strict` when the packed run diverges from the
/// original, with first-divergence forensics in the message.
pub fn evaluate(
    pw: &ProfiledWorkload,
    cfg: &PackConfig,
    opt_cfg: &OptConfig,
    machine: Option<&MachineConfig>,
) -> Result<ConfigOutcome, ExecError> {
    evaluate_with_diff(pw, cfg, opt_cfg, machine, DiffMode::from_env())
}

/// [`evaluate`] with an explicit diff mode (instead of `VP_DIFF`) —
/// the environment-independent form tests use.
///
/// # Errors
///
/// Propagates [`ExecError`] from the measurement run.
///
/// # Panics
///
/// Panics under [`DiffMode::Strict`] when the packed run diverges.
pub fn evaluate_with_diff(
    pw: &ProfiledWorkload,
    cfg: &PackConfig,
    opt_cfg: &OptConfig,
    machine: Option<&MachineConfig>,
    diff_mode: DiffMode,
) -> Result<ConfigOutcome, ExecError> {
    let out: PackOutput = {
        let _s = vp_trace::span("metrics.evaluate.pack");
        pack(&pw.program, &pw.layout, &pw.phases, cfg)
    };
    // Flight payload: (packages built, launch points patched).
    vp_trace::flight(
        "metrics.pack",
        out.packages.len() as u64,
        out.launch_points as u64,
    );
    let run_cfg = RunConfig::default();

    let opt = machine.map(|m| {
        let _s = vp_trace::span("metrics.evaluate.optimize");
        optimize_packages(&out, m, opt_cfg)
    });
    let (packed_prog, packed_layout): (&Program, Layout) = match &opt {
        Some((p, order)) => (p, Layout::new(p, order)),
        None => (&out.program, Layout::natural(&out.program)),
    };

    let key = TraceKey::packed(
        &pw.label,
        packed_prog,
        &packed_layout,
        &run_cfg,
        out.fingerprint(),
    );
    let mut counts = InstCounts::new();
    let (packed_trace, stats) = {
        let _s = vp_trace::span("metrics.evaluate.measure");
        TraceStore::global().capture_or_replay_shared(
            key,
            packed_prog,
            &packed_layout,
            &run_cfg,
            &mut counts,
        )?
    };
    debug_assert_eq!(
        stats.stop,
        StopReason::Halted,
        "{}: packed binary must halt",
        pw.label
    );

    // Packed cycles come from replaying the capture — the same
    // measurement path as baseline cycles.
    let opt_cycles = machine.map(|m| {
        let _s = vp_trace::span("metrics.evaluate.opt_timing");
        let mut timing = TimingModel::new(*m);
        timing.replay_trace(&packed_trace);
        timing.emit_trace();
        timing.cycles()
    });

    let diff = diff_packed_run(pw, &out, &packed_trace, opt_cfg, diff_mode);

    let base_cycles = match (pw.base_cycles, machine) {
        (Some(base), _) => Some(base),
        (None, Some(m)) => {
            // The profile ran untimed; recover baseline cycles from its
            // capture instead of re-executing the original binary.
            let _s = vp_trace::span("metrics.evaluate.base_timing");
            let mut timing = TimingModel::new(*m);
            timing.replay_trace(&pw.trace);
            Some(timing.cycles())
        }
        (None, None) => None,
    };
    let speedup = match (base_cycles, opt_cycles) {
        (Some(base), Some(opt)) => Some(base as f64 / opt.max(1) as f64),
        _ => None,
    };
    Ok(ConfigOutcome {
        coverage: counts.package_coverage(),
        expansion: out.expansion(),
        selected_fraction: out.selected_fraction(),
        replication: out.replication_factor(),
        packages: out.packages.len(),
        phases: pw.phases.len(),
        launch_points: out.launch_points,
        opt_cycles,
        speedup,
        diff,
    })
}

/// Diffs the packed capture against the profile's original capture.
///
/// Returns `None` for [`DiffMode::Off`]; returns a
/// [`DiffVerdict::Skipped`](vp_exec::DiffVerdict::Skipped) report when
/// block-moving optimizations (cold sinking, LICM) are enabled, because
/// they break the block-level parallelism the alignment relies on.
fn diff_packed_run(
    pw: &ProfiledWorkload,
    out: &PackOutput,
    packed_trace: &CapturedTrace,
    opt_cfg: &OptConfig,
    mode: DiffMode,
) -> Option<DiffReport> {
    if mode == DiffMode::Off {
        return None;
    }
    if opt_cfg.sink_cold || opt_cfg.licm {
        return Some(DiffReport::skipped());
    }
    let _s = vp_trace::span("metrics.evaluate.diff");
    let report = diff_traces(
        &pw.trace,
        packed_trace,
        &out.identity_map(),
        &DiffOptions::default(),
    );
    assert!(
        mode != DiffMode::Strict || report.is_clean(),
        "{}: packed run diverged from the original (VP_DIFF=strict)\n{report}",
        pw.label
    );
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_workloads::twolf;

    #[test]
    fn profile_then_evaluate_twolf() {
        // twolf has three annealing regimes: the detector must find
        // multiple phases and the packed binary must reach high coverage.
        let program = twolf::build(1);
        let pw = profile("300.twolf A", program, &HsdConfig::table2(), None).unwrap();
        assert!(
            pw.phases.len() >= 2,
            "expected multiple phases, got {}",
            pw.phases.len()
        );
        assert!(pw.raw_detections >= pw.phases.len());

        let cfg = PackConfig::default();
        let out = evaluate(&pw, &cfg, &OptConfig::default(), None).unwrap();
        assert!(out.packages >= 1);
        assert!(out.coverage > 0.5, "coverage {:.3} too low", out.coverage);
        assert!(out.expansion > 0.0);
        assert!(out.replication >= 1.0);
    }

    #[test]
    fn linking_does_not_reduce_coverage() {
        let program = twolf::build(1);
        let pw = profile("300.twolf A", program, &HsdConfig::table2(), None).unwrap();
        let base = PackConfig::default();
        let no_link = PackConfig {
            linking: false,
            ..base
        };
        let with = evaluate(&pw, &base, &OptConfig::default(), None).unwrap();
        let without = evaluate(&pw, &no_link, &OptConfig::default(), None).unwrap();
        assert!(
            with.coverage + 1e-9 >= without.coverage,
            "linking must not hurt coverage: {} vs {}",
            with.coverage,
            without.coverage
        );
    }

    #[test]
    fn reprofile_replays_instead_of_reexecuting() {
        // First profile may capture or hit (the store is process-global and
        // other tests share it); the point is that the *second* profile of
        // the same workload must be a pure cache hit. Scoped counter deltas
        // are thread-local, so parallel tests don't perturb them.
        let first = profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap();
        let (second, report) = vp_trace::scoped(|| {
            profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap()
        });
        assert_eq!(report.counter("trace_store.captures"), 0);
        assert_eq!(report.counter("trace_store.hits"), 1);
        assert_eq!(report.counter("trace_store.replays"), 1);
        assert_eq!(first.phases, second.phases);
        assert_eq!(first.dyn_insts, second.dyn_insts);
    }

    #[test]
    fn untimed_profile_still_yields_speedup_via_replay() {
        let machine = MachineConfig::table2();
        let pw = profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap();
        assert!(pw.base_cycles.is_none());
        let out = evaluate(
            &pw,
            &PackConfig::default(),
            &OptConfig::default(),
            Some(&machine),
        )
        .unwrap();

        let timed = profile(
            "300.twolf A",
            twolf::build(1),
            &HsdConfig::table2(),
            Some(&machine),
        )
        .unwrap();
        let out_timed = evaluate(
            &timed,
            &PackConfig::default(),
            &OptConfig::default(),
            Some(&machine),
        )
        .unwrap();
        assert_eq!(out.opt_cycles, out_timed.opt_cycles);
        assert_eq!(out.speedup, out_timed.speedup);
    }

    #[test]
    fn evaluation_diffs_clean_in_strict_mode() {
        use vp_exec::DiffVerdict;
        let machine = MachineConfig::table2();
        let pw = profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap();
        for cfg in PackConfig::evaluation_matrix() {
            let ((out, ()), report) = vp_trace::scoped(|| {
                let out = evaluate_with_diff(
                    &pw,
                    &cfg,
                    &OptConfig::default(),
                    Some(&machine),
                    vp_exec::DiffMode::Strict,
                )
                .unwrap();
                (out, ())
            });
            let diff = out.diff.expect("strict mode always diffs");
            assert_eq!(diff.verdict, DiffVerdict::Clean, "{cfg:?}: {diff}");
            assert!(diff.aligned_visits > 0);
            assert_eq!(report.counter("diff.divergences"), 0);
            assert_eq!(report.counter("diff.runs"), 1);
            assert!(report.histogram("diff.alignment_run").count >= 1);
            if out.packages > 0 {
                assert!(
                    report.histogram("diff.package_residency").count > 0,
                    "{cfg:?}: packaged runs must record residency"
                );
            }
        }
    }

    #[test]
    fn block_moving_optimizations_skip_the_diff() {
        use vp_exec::DiffVerdict;
        let machine = MachineConfig::table2();
        let pw = profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap();
        let out = evaluate_with_diff(
            &pw,
            &PackConfig::default(),
            &OptConfig::full(), // sink_cold + licm move insts across blocks
            Some(&machine),
            vp_exec::DiffMode::Strict,
        )
        .unwrap();
        assert_eq!(out.diff.unwrap().verdict, DiffVerdict::Skipped);
    }

    #[test]
    fn diff_off_mode_skips_entirely() {
        let pw = profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap();
        let out = evaluate_with_diff(
            &pw,
            &PackConfig::default(),
            &OptConfig::default(),
            None,
            vp_exec::DiffMode::Off,
        )
        .unwrap();
        assert!(out.diff.is_none());
    }

    #[test]
    fn packed_runs_replay_from_the_store_on_reevaluation() {
        let pw = profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap();
        let cfg = PackConfig::default();
        // Warm the store for this exact (workload, packed variant) key.
        evaluate_with_diff(
            &pw,
            &cfg,
            &OptConfig::default(),
            None,
            vp_exec::DiffMode::Off,
        )
        .unwrap();
        let (_, report) = vp_trace::scoped(|| {
            evaluate_with_diff(
                &pw,
                &cfg,
                &OptConfig::default(),
                None,
                vp_exec::DiffMode::Off,
            )
            .unwrap()
        });
        assert_eq!(report.counter("trace_store.captures"), 0);
        assert_eq!(report.counter("trace_store.hits"), 1);
        assert_eq!(report.counter("trace_store.replays"), 1);
    }

    #[test]
    fn foreign_and_merged_profiles_evaluate_clean_under_strict() {
        use vp_exec::DiffVerdict;
        use vp_hsd::{MergeConfig, MergedProfile};
        use vp_workloads::li;
        let a = profile(
            "130.li A",
            li::build(li::Input::A, 1),
            &HsdConfig::table2(),
            None,
        )
        .unwrap();
        let b = profile(
            "130.li B",
            li::build(li::Input::B, 1),
            &HsdConfig::table2(),
            None,
        )
        .unwrap();

        // Foreign: pack input B's binary with input A's profile. Stale
        // addresses degrade coverage at worst; correctness must hold.
        let foreign = b.with_phases(a.phases.clone(), "130.li A");
        assert!(foreign.label.contains("[profile: 130.li A]"));
        let out_foreign = evaluate_with_diff(
            &foreign,
            &PackConfig::default(),
            &OptConfig::default(),
            None,
            vp_exec::DiffMode::Strict,
        )
        .unwrap();
        assert_eq!(out_foreign.diff.unwrap().verdict, DiffVerdict::Clean);

        // Merged: A ∪ B contains B's own phases, so evaluating it on B
        // must recover at least the foreign profile's coverage.
        let merged = MergedProfile::of(MergeConfig::default(), [a.dump(), b.dump()]).resolve();
        let out_merged = evaluate_with_diff(
            &b.with_phases(merged, "merged"),
            &PackConfig::default(),
            &OptConfig::default(),
            None,
            vp_exec::DiffMode::Strict,
        )
        .unwrap();
        assert_eq!(out_merged.diff.unwrap().verdict, DiffVerdict::Clean);
        assert!(
            out_merged.coverage + 1e-9 >= out_foreign.coverage,
            "merged profile must not cover less than the foreign one: {} vs {}",
            out_merged.coverage,
            out_foreign.coverage
        );
    }

    #[test]
    fn dump_round_trips_the_profile() {
        let pw = profile("300.twolf A", twolf::build(1), &HsdConfig::table2(), None).unwrap();
        let d = pw.dump();
        assert_eq!(d.label, pw.label);
        assert_eq!(d.retired, pw.dyn_insts);
        assert_eq!(d.phases, pw.phases);
    }

    #[test]
    fn timed_evaluation_produces_speedup() {
        let program = twolf::build(1);
        let machine = MachineConfig::table2();
        let pw = profile("300.twolf A", program, &HsdConfig::table2(), Some(&machine)).unwrap();
        assert!(pw.base_cycles.unwrap() > 0);
        let out = evaluate(
            &pw,
            &PackConfig::default(),
            &OptConfig::default(),
            Some(&machine),
        )
        .unwrap();
        let s = out.speedup.unwrap();
        assert!(s > 0.8 && s < 2.0, "speedup {s:.3} out of plausible range");
    }
}
