//! Plain-text rendering of tables and bar charts for the experiment
//! binaries.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut TextTable {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows appended so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders to a string (also used by `Display`).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                if c.chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-')
                {
                    s.push_str(&format!("{c:>w$}", w = widths[i]));
                } else {
                    s.push_str(&format!("{c:<w$}", w = widths[i]));
                }
            }
            s
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A horizontal ASCII bar: `value` out of `max`, `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64)
            .round()
            .clamp(0.0, width as f64) as usize
    };
    format!("{}{}", "#".repeat(filled), " ".repeat(width - filled))
}

/// Formats a fraction as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1.0"]);
        t.row(vec!["b", "20.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(0.0, 1.0, 4), "    ");
        assert_eq!(bar(0.5, 1.0, 4), "##  ");
        assert_eq!(bar(2.0, 1.0, 4), "####", "clamped at full");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.815), "81.5");
    }
}
