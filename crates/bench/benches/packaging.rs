//! Package construction + linking + rewriting cost for a full phase set,
//! including the exhaustive-vs-greedy link-ordering ablation.

use vacuum_packing::core::{pack, PackConfig};
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::profile;

fn main() {
    let program =
        vacuum_packing::workloads::perl::build(vacuum_packing::workloads::perl::Input::A, 1);
    let pw = profile("134.perl A", program, &HsdConfig::table2(), None).unwrap();

    let mut r = bench::micro::runner();
    for (name, cfg) in [
        ("inference+linking", PackConfig::default()),
        (
            "no_linking",
            PackConfig {
                linking: false,
                ..PackConfig::default()
            },
        ),
        (
            "greedy_ordering",
            PackConfig {
                max_exhaustive_orderings: 1,
                ..PackConfig::default()
            },
        ),
    ] {
        r.bench(&format!("pack/{name}"), || {
            pack(&pw.program, &pw.layout, &pw.phases, &cfg)
                .packages
                .len()
        });
    }
    r.finish("bench:packaging");
}
