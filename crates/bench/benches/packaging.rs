//! Package construction + linking + rewriting cost for a full phase set,
//! including the exhaustive-vs-greedy link-ordering ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vacuum_packing::core::{pack, PackConfig};
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::profile;

fn bench_packaging(c: &mut Criterion) {
    let program = vacuum_packing::workloads::perl::build(vacuum_packing::workloads::perl::Input::A, 1);
    let pw = profile("134.perl A", program, &HsdConfig::table2(), None).unwrap();

    let mut g = c.benchmark_group("pack");
    for (name, cfg) in [
        ("inference+linking", PackConfig::default()),
        ("no_linking", PackConfig { linking: false, ..PackConfig::default() }),
        ("greedy_ordering", PackConfig { max_exhaustive_orderings: 1, ..PackConfig::default() }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| pack(&pw.program, &pw.layout, &pw.phases, cfg).packages.len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_packaging);
criterion_main!(benches);
