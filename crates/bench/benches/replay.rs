//! Replay vs. re-execution: the cost of feeding a `Sink` from a recorded
//! [`CapturedTrace`] against interpreting the program again — the saving
//! the harness banks every time `TraceStore` serves a profile from cache.

use vacuum_packing::exec::{CapturedTrace, Executor, InstCounts, RunConfig};
use vacuum_packing::program::Layout;

fn main() {
    let program = vacuum_packing::workloads::twolf::build(1);
    let layout = Layout::natural(&program);
    let cfg = RunConfig::default();
    let trace = CapturedTrace::capture(&program, &layout, &cfg).unwrap();
    let events = trace.events();
    println!(
        "captured {events} retired instructions in {} bytes ({:.2} B/inst)",
        trace.bytes(),
        trace.bytes() as f64 / events as f64
    );

    let mut r = bench::micro::runner();
    r.bench_throughput("retire_stream/execute", events, || {
        let mut counts = InstCounts::new();
        Executor::new(&program, &layout)
            .run(&mut counts, &cfg)
            .unwrap();
        counts.total
    });
    r.bench_throughput("retire_stream/replay", events, || {
        let mut counts = InstCounts::new();
        trace.replay(&mut counts);
        counts.total
    });
    r.bench_throughput("retire_stream/capture", events, || {
        CapturedTrace::capture(&program, &layout, &cfg)
            .unwrap()
            .events()
    });
    r.finish("bench:replay");
}
