//! Replay-path throughput: the tracked perf baseline for the batched
//! replay kernel (`BENCH_10.json`).
//!
//! Measures events/sec for every stage of the capture/replay pipeline on
//! one real workload:
//!
//! * `execute` — interpret the program live (what a cache miss costs);
//! * `capture` — interpret once while recording the stream;
//! * `capture_fast` — the same recording on a sequential-heavy workload
//!   (gzip's long deflate loops), the shape the recorder's no-hash-probe
//!   straight-line append exists for;
//! * `replay_per_event` — the pre-batching decoder
//!   (`CapturedTrace::replay_per_event`) into a monomorphized counting
//!   sink;
//! * `replay_batched` — the batched front door (`CapturedTrace::replay`)
//!   at its tuned default chunk size. `InstCounts` is a columns-only
//!   sink, so this measures the column decode kernel with no `Retired`
//!   struct materialization at all — the fix for the `BENCH_9`
//!   batched-vs-per-event inversion, which turned out to be the struct
//!   staging round-trip (80 B/event written then re-read) that the
//!   monomorphized per-event loop never paid, not a regression from the
//!   feed/flight hooks (those are no-ops unless a trace sink is
//!   installed);
//! * `replay_per_event_dyn` / `replay_batched_dyn` — the same two kernels
//!   through an opaque `&mut dyn Sink` boundary: one indirect call per
//!   *event* vs one per *chunk*, the dispatch cost batching exists to
//!   amortize;
//! * `replay_sim` — the fused decode+sim loop
//!   (`TimingModel::replay_trace`), the heaviest real consumer;
//! * `replay_sim_sink` — the same timing model driven through the
//!   generic batched `Sink` path, the pre-fusion comparison point;
//! * `replay_hsd` — replay through the hot-spot detector's batched
//!   sink (the profiling-side timing sink);
//! * `disk_load` — bring a v3 `.vptrace` back from the disk tier on the
//!   default path (memory-mapped zero-copy where supported, owned read
//!   otherwise), CRC verified either way;
//! * `disk_load_mmap` / `disk_load_owned` — the same load with the path
//!   forced, so the zero-copy win is measured against the read+copy
//!   fallback side by side.
//!
//! Knobs (on top of the usual `VP_BENCH_MS`/`VP_BENCH_SAMPLES`):
//!
//! * `VP_BENCH_JSON=<path>` — write the measurements as a JSON baseline
//!   (the file committed as `BENCH_10.json`);
//! * `VP_BENCH_BASELINE=<path>` — compare against a committed baseline
//!   and exit non-zero if the batched kernel's throughput, *normalized to
//!   the per-event kernel measured in the same run* (so host speed
//!   cancels), regressed more than 25%;
//! * `VP_HISTORY_DIR=<dir>` — ingest this run into the run-history
//!   warehouse, and when it already holds enough runs
//!   (`bench::history::GATE_MIN_SAMPLES`), gate each ratio against the
//!   median±3·MAD tolerance band of the last K warehoused runs instead
//!   of the single committed baseline.

use std::io::Write;
use vacuum_packing::exec::{
    CapturedTrace, DiskTier, Executor, InstCounts, RunConfig, Sink, TraceKey,
};
use vacuum_packing::hsd::{HotSpotDetector, HsdConfig};
use vacuum_packing::program::Layout;
use vacuum_packing::sim::{MachineConfig, TimingModel};

/// Maximum tolerated drop of the normalized batched-replay throughput
/// before the baseline check fails (CI gate).
const MAX_REGRESSION: f64 = 0.25;

fn events_per_sec(results: &[bench::micro::BenchResult], name: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.name == name)
        .and_then(|r| r.elems.map(|e| e as f64 * 1e9 / r.ns_per_iter))
}

/// Pulls one `"key": number` field back out of the baseline JSON (the
/// writer below; no JSON dependency in the offline build).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let workload = "300.twolf";
    let program = vacuum_packing::workloads::twolf::build(bench::scale());
    let layout = Layout::natural(&program);
    let cfg = RunConfig::default();
    let trace = CapturedTrace::capture(&program, &layout, &cfg).unwrap();
    let events = trace.events();
    println!(
        "captured {events} retired instructions in {} bytes ({:.2} B/inst)",
        trace.bytes(),
        trace.bytes() as f64 / events as f64
    );

    // A throwaway disk tier: measures v3 image size and warm-load cost.
    let dir = std::env::temp_dir().join(format!("vp-bench-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tier = DiskTier::new(&dir, u64::MAX).expect("temp disk tier");
    let key = TraceKey::new(workload, &program, &layout, &cfg);
    tier.store(&key, &trace).expect("persist trace");
    let trace_v3_bytes = tier.resident_bytes();
    println!(
        "v3 .vptrace image: {trace_v3_bytes} bytes ({:.2} B/inst)",
        trace_v3_bytes as f64 / events as f64
    );

    let machine = MachineConfig::table2();
    let mut r = bench::micro::runner();
    r.bench_throughput("retire_stream/execute", events, || {
        let mut counts = InstCounts::new();
        Executor::new(&program, &layout)
            .run(&mut counts, &cfg)
            .unwrap();
        counts.total
    });
    r.bench_throughput("retire_stream/capture", events, || {
        CapturedTrace::capture(&program, &layout, &cfg)
            .unwrap()
            .events()
    });
    // twolf above is the branch-dense adversarial capture; gzip is the
    // sequential-heavy shape where the recorder's straight-line append
    // (no per-event hash probe) dominates.
    let gzip = vacuum_packing::workloads::gzip::build(bench::scale());
    let gzip_layout = Layout::natural(&gzip);
    let gzip_trace = CapturedTrace::capture(&gzip, &gzip_layout, &cfg).unwrap();
    let gzip_events = gzip_trace.events();
    println!(
        "capture_fast workload (gzip): {gzip_events} retired instructions, \
         {:.2} B/inst (straight-line events are 1 byte)",
        gzip_trace.bytes() as f64 / gzip_events as f64
    );
    drop(gzip_trace);
    r.bench_throughput("retire_stream/capture_fast", gzip_events, || {
        CapturedTrace::capture(&gzip, &gzip_layout, &cfg)
            .unwrap()
            .events()
    });
    r.bench_throughput("retire_stream/replay_per_event", events, || {
        let mut counts = InstCounts::new();
        trace.replay_per_event(&mut counts);
        counts.total
    });
    r.bench_throughput("retire_stream/replay_batched", events, || {
        let mut counts = InstCounts::new();
        trace.replay(&mut counts);
        counts.total
    });
    r.bench_throughput("retire_stream/replay_per_event_dyn", events, || {
        let mut counts = InstCounts::new();
        let mut sink: &mut dyn Sink = &mut counts;
        trace.replay_per_event(&mut sink);
        counts.total
    });
    r.bench_throughput("retire_stream/replay_batched_dyn", events, || {
        let mut counts = InstCounts::new();
        let mut sink: &mut dyn Sink = &mut counts;
        trace.replay(&mut sink);
        counts.total
    });
    r.bench_throughput("retire_stream/replay_sim", events, || {
        let mut tm = TimingModel::new(machine);
        tm.replay_trace(&trace);
        tm.cycles()
    });
    r.bench_throughput("retire_stream/replay_sim_sink", events, || {
        let mut tm = TimingModel::new(machine);
        trace.replay(&mut tm);
        tm.cycles()
    });
    r.bench_throughput("retire_stream/replay_hsd", events, || {
        let mut hsd = HotSpotDetector::new(HsdConfig::table2());
        trace.replay(&mut hsd);
        hsd.branches_retired()
    });
    r.bench_throughput("retire_stream/disk_load", events, || {
        tier.load(&key).expect("warm load").events()
    });
    r.bench_throughput("retire_stream/disk_load_mmap", events, || {
        tier.load_with(&key, true)
            .expect("warm mapped load")
            .events()
    });
    r.bench_throughput("retire_stream/disk_load_owned", events, || {
        tier.load_with(&key, false)
            .expect("warm owned load")
            .events()
    });

    let names = [
        "execute",
        "capture",
        "capture_fast",
        "replay_per_event",
        "replay_batched",
        "replay_per_event_dyn",
        "replay_batched_dyn",
        "replay_sim",
        "replay_sim_sink",
        "replay_hsd",
        "disk_load",
        "disk_load_mmap",
        "disk_load_owned",
    ];
    let eps: Vec<(&str, Option<f64>)> = names
        .iter()
        .map(|n| {
            (
                *n,
                events_per_sec(r.results(), &format!("retire_stream/{n}")),
            )
        })
        .collect();
    let get = |name: &str| {
        eps.iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let speedup = if get("replay_per_event") > 0.0 {
        get("replay_batched") / get("replay_per_event")
    } else {
        0.0
    };
    let speedup_dyn = if get("replay_per_event_dyn") > 0.0 {
        get("replay_batched_dyn") / get("replay_per_event_dyn")
    } else {
        0.0
    };
    if get("replay_batched") > 0.0 {
        println!(
            "batched/per-event: {speedup:.2}x monomorphized, {speedup_dyn:.2}x across an \
             opaque sink boundary"
        );
    }

    // ------------------------------------------------- JSON baseline out
    // The body is built unconditionally: VP_BENCH_JSON writes it to a
    // file, VP_HISTORY_DIR ingests it into the run-history warehouse.
    let body = {
        let mut body = String::new();
        body.push_str("{\n");
        body.push_str("  \"schema\": \"vp-bench/1\",\n");
        body.push_str("  \"bench\": \"replay_throughput\",\n");
        body.push_str(&format!("  \"workload\": \"{workload}\",\n"));
        body.push_str(&format!("  \"scale\": {},\n", bench::scale()));
        body.push_str(&format!("  \"events\": {events},\n"));
        body.push_str(&format!("  \"trace_v3_bytes\": {trace_v3_bytes},\n"));
        body.push_str("  \"events_per_sec\": {\n");
        for (i, (name, v)) in eps.iter().enumerate() {
            let comma = if i + 1 == eps.len() { "" } else { "," };
            body.push_str(&format!("    \"{name}\": {:.0}{comma}\n", v.unwrap_or(0.0)));
        }
        body.push_str("  },\n");
        body.push_str(&format!(
            "  \"batched_speedup_vs_per_event\": {speedup:.4},\n"
        ));
        body.push_str(&format!(
            "  \"batched_speedup_vs_per_event_dyn\": {speedup_dyn:.4}\n"
        ));
        body.push_str("}\n");
        body
    };
    if let Ok(path) = std::env::var("VP_BENCH_JSON") {
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .unwrap_or_else(|e| panic!("VP_BENCH_JSON={path}: {e}"));
        println!("wrote {path}");
    }

    // Warehouse: read history for the band gate first, then ingest this
    // run (so a run never gates against itself).
    let warehouse = bench::history::dir_from_env().and_then(|dir| {
        bench::history::Warehouse::open(&dir)
            .map_err(|e| eprintln!("VP_HISTORY_DIR={}: {e}", dir.display()))
            .ok()
    });
    let hist_records = warehouse
        .as_ref()
        .and_then(|w| w.records().ok())
        .unwrap_or_default();

    // --------------------------------------------- baseline check (CI)
    // Absolute events/sec depends on the host; both gates compare the
    // batched/per-event ratio, which is measured inside a single run on
    // both sides and so cancels machine speed. With enough warehoused
    // history the floor is the median − max(3·MAD, 10%) band of the last
    // K runs; otherwise the committed baseline's single value − 25%.
    let mut failed = false;
    let baseline_text = std::env::var("VP_BENCH_BASELINE").ok().map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("VP_BENCH_BASELINE={path}: {e}"));
        (path, text)
    });
    for (label, current, field) in [
        ("batched/per-event", speedup, "batched_speedup_vs_per_event"),
        (
            "batched/per-event (dyn)",
            speedup_dyn,
            "batched_speedup_vs_per_event_dyn",
        ),
    ] {
        let spec = format!("metric:{field}");
        if let Some(band) = bench::history::gate_band(&hist_records, &spec) {
            use bench::history::{GATE_K, GATE_MIN_REL};
            let floor = band.floor(GATE_K, GATE_MIN_REL);
            let verdict = if current < floor { "FAIL" } else { "ok" };
            println!(
                "history gate {label}: current {current:.2}x vs median {:.2}x of last {} \
                 runs (floor {floor:.2}x) ... {verdict}",
                band.median, band.n
            );
            failed |= current < floor;
            continue;
        }
        let Some((path, text)) = &baseline_text else {
            continue;
        };
        let Some(base) = json_number(text, field) else {
            println!("baseline {path} lacks {field}; skipping that check");
            continue;
        };
        let floor = base * (1.0 - MAX_REGRESSION);
        let verdict = if current < floor { "FAIL" } else { "ok" };
        println!(
            "baseline check {label}: current {current:.2}x vs committed {base:.2}x \
             (floor {floor:.2}x) ... {verdict}"
        );
        failed |= current < floor;
    }

    // ------------------------------------------- warehouse ingest (last)
    if let Some(w) = &warehouse {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        match bench::history::RunRecord::from_bench_json(&body, "replay", ts)
            .map_err(std::io::Error::other)
            .and_then(|rec| w.ingest(&rec))
        {
            Ok(()) => println!("warehoused this run under {}", w.dir().display()),
            Err(e) => eprintln!("warehouse ingest failed: {e}"),
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    r.finish("bench:replay");
    if failed {
        eprintln!(
            "replay throughput regressed beyond {:.0}% of the baseline",
            MAX_REGRESSION * 100.0
        );
        std::process::exit(1);
    }
}
