//! List-scheduler cost on blocks of varying size.

use vacuum_packing::isa::{AluOp, Inst, Reg, Src};
use vacuum_packing::opt::schedule_block;
use vacuum_packing::sim::MachineConfig;

fn block(n: usize) -> Vec<Inst> {
    (0..n)
        .map(|i| match i % 3 {
            0 => Inst::Load {
                rd: Reg::int(20 + (i % 8) as u8),
                base: Reg::SP,
                offset: 8 * (i as i64 % 16),
            },
            1 => Inst::Alu {
                op: AluOp::Add,
                rd: Reg::int(20 + (i % 8) as u8),
                rs1: Reg::int(20 + ((i + 1) % 8) as u8),
                rs2: Src::Imm(i as i64),
            },
            _ => Inst::Store {
                src: Reg::int(20 + (i % 8) as u8),
                base: Reg::SP,
                offset: 8 * (i as i64 % 16),
            },
        })
        .collect()
}

fn main() {
    let machine = MachineConfig::table2();
    let mut r = bench::micro::runner();
    for n in [8usize, 32, 128] {
        let insts = block(n);
        r.bench(&format!("schedule_block/{n}"), || {
            schedule_block(&insts, &machine).1
        });
    }
    r.finish("bench:scheduling");
}
