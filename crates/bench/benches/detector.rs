//! Hot Spot Detector throughput: the cost of observing one retiring
//! branch, on streams with different BBB behavior.

use vacuum_packing::hsd::{HotSpotDetector, HsdConfig};

fn main() {
    let mut r = bench::micro::runner();
    for (name, working_set) in [
        ("hot_loop_8", 8u64),
        ("warm_256", 256),
        ("cold_100k", 100_000),
    ] {
        r.bench_throughput(&format!("hsd_observe/{name}"), 100_000, || {
            let mut det = HotSpotDetector::new(HsdConfig::table2());
            for i in 0..100_000u64 {
                det.observe(0x1000 + 4 * (i % working_set), i % 3 != 0);
            }
            det.records().len()
        });
    }
    r.finish("bench:detector");
}
