//! Hot Spot Detector throughput: the cost of observing one retiring
//! branch, on streams with different BBB behavior.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vacuum_packing::hsd::{HotSpotDetector, HsdConfig};

fn bench_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("hsd_observe");
    for (name, working_set) in [("hot_loop_8", 8u64), ("warm_256", 256), ("cold_100k", 100_000)] {
        g.throughput(Throughput::Elements(100_000));
        g.bench_with_input(BenchmarkId::from_parameter(name), &working_set, |b, &ws| {
            b.iter(|| {
                let mut det = HotSpotDetector::new(HsdConfig::table2());
                for i in 0..100_000u64 {
                    det.observe(0x1000 + 4 * (i % ws), i % 3 != 0);
                }
                det.records().len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
