//! Executor and timing-model throughput (retired instructions per second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vacuum_packing::prelude::*;

fn bench_simulate(c: &mut Criterion) {
    let mut pb = ProgramBuilder::new();
    pb.func("main", |f| {
        let (i, acc) = (Reg::int(20), Reg::int(21));
        f.li(acc, 0);
        f.for_range(i, 0, 20_000, |f| {
            f.add(acc, acc, i);
            f.xor(acc, acc, 3);
        });
        f.halt();
    });
    let p = pb.build();
    let layout = Layout::natural(&p);
    let insts = {
        let mut counts = InstCounts::new();
        Executor::new(&p, &layout).run(&mut counts, &RunConfig::default()).unwrap();
        counts.total
    };

    let mut g = c.benchmark_group("simulate");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("functional", |b| {
        b.iter(|| {
            let mut ex = Executor::new(&p, &layout);
            ex.run(&mut NullSink, &RunConfig::default()).unwrap().retired
        });
    });
    g.bench_function("functional+timing", |b| {
        b.iter(|| {
            let mut timing = TimingModel::new(MachineConfig::table2());
            Executor::new(&p, &layout).run(&mut timing, &RunConfig::default()).unwrap();
            timing.cycles()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
