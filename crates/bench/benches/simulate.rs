//! Executor and timing-model throughput (retired instructions per second).

use vacuum_packing::prelude::*;

fn main() {
    let mut pb = ProgramBuilder::new();
    pb.func("main", |f| {
        let (i, acc) = (Reg::int(20), Reg::int(21));
        f.li(acc, 0);
        f.for_range(i, 0, 20_000, |f| {
            f.add(acc, acc, i);
            f.xor(acc, acc, 3);
        });
        f.halt();
    });
    let p = pb.build();
    let layout = Layout::natural(&p);
    let insts = {
        let mut counts = InstCounts::new();
        Executor::new(&p, &layout)
            .run(&mut counts, &RunConfig::default())
            .unwrap();
        counts.total
    };

    let mut r = bench::micro::runner();
    r.bench_throughput("simulate/functional", insts, || {
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default())
            .unwrap()
            .retired
    });
    r.bench_throughput("simulate/functional+timing", insts, || {
        let mut timing = TimingModel::new(MachineConfig::table2());
        Executor::new(&p, &layout)
            .run(&mut timing, &RunConfig::default())
            .unwrap();
        timing.cycles()
    });
    r.finish("bench:simulate");
}
