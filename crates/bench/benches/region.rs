//! Region identification cost: initial marking + inference fixpoint +
//! heuristic growth for one detected phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vacuum_packing::core::{identify_region, CfgCache, PackConfig};
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::profile;

fn bench_region(c: &mut Criterion) {
    let mut g = c.benchmark_group("identify_region");
    for (label, program) in [
        ("300.twolf", vacuum_packing::workloads::twolf::build(1)),
        ("134.perl", vacuum_packing::workloads::perl::build(vacuum_packing::workloads::perl::Input::A, 1)),
    ] {
        let pw = profile(label, program, &HsdConfig::table2(), None).unwrap();
        let phase = pw.phases.iter().max_by_key(|p| p.branches.len()).unwrap().clone();
        g.bench_with_input(BenchmarkId::from_parameter(label), &phase, |b, phase| {
            b.iter(|| {
                let mut cfgs = CfgCache::new();
                identify_region(&pw.program, &pw.layout, &mut cfgs, phase, &PackConfig::default())
                    .hot_block_count()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_region);
criterion_main!(benches);
