//! Region identification cost: initial marking + inference fixpoint +
//! heuristic growth for one detected phase.

use vacuum_packing::core::{identify_region, CfgCache, PackConfig};
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::profile;

fn main() {
    let mut r = bench::micro::runner();
    for (label, program) in [
        ("300.twolf", vacuum_packing::workloads::twolf::build(1)),
        (
            "134.perl",
            vacuum_packing::workloads::perl::build(vacuum_packing::workloads::perl::Input::A, 1),
        ),
    ] {
        let pw = profile(label, program, &HsdConfig::table2(), None).unwrap();
        let phase = pw
            .phases
            .iter()
            .max_by_key(|p| p.branches.len())
            .unwrap()
            .clone();
        r.bench(&format!("identify_region/{label}"), || {
            let mut cfgs = CfgCache::new();
            identify_region(
                &pw.program,
                &pw.layout,
                &mut cfgs,
                &phase,
                &PackConfig::default(),
            )
            .hot_block_count()
        });
    }
    r.finish("bench:region");
}
