//! End-to-end Vacuum Packing cost: profile-to-rewritten-binary, the
//! operation a post-link optimizer would run per deployment.

use vacuum_packing::core::{pack, PackConfig};
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::profile;
use vacuum_packing::opt::{optimize_packages, OptConfig};
use vacuum_packing::sim::MachineConfig;

fn main() {
    let program = vacuum_packing::workloads::twolf::build(1);
    let pw = profile("300.twolf A", program, &HsdConfig::table2(), None).unwrap();
    let machine = MachineConfig::table2();

    let mut r = bench::micro::runner();
    r.bench("pack_end_to_end", || {
        let out = pack(&pw.program, &pw.layout, &pw.phases, &PackConfig::default());
        let (prog, order) = optimize_packages(&out, &machine, &OptConfig::default());
        (out.packages.len(), prog.funcs.len(), order.funcs.len())
    });
    r.finish("bench:pipeline");
}
