//! End-to-end dashboard acceptance: the 3-phase workload (300.twolf)
//! renders a phase timeline plus a package-residency Gantt with exactly
//! one lane per package, inside fully self-contained HTML.

use bench::dashboard::{collect_timeline, render_dashboard_html, render_timeline_svg, Dashboard};
use vacuum_packing::core::PackConfig;
use vacuum_packing::workloads::{twolf, Workload};

fn twolf_workload() -> Workload {
    Workload {
        bench: "300.twolf",
        input: "A",
        input_desc: "SPEC Train",
        program: twolf::build(1),
    }
}

#[test]
fn twolf_timeline_svg_has_one_lane_per_package() {
    let cfg = PackConfig::evaluation_matrix()[3]; // inf/link
    let t = collect_timeline(&twolf_workload(), &cfg).expect("twolf timeline");

    assert_eq!(t.label, "300.twolf A");
    assert!(t.packages >= 1, "twolf must pack at least one package");
    assert!(
        t.phases
            .iter()
            .map(|m| m.phase)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            >= 2,
        "twolf has multiple annealing phases"
    );
    assert!(t.branches_total > 0 && t.events_total > 0);
    // Residency intervals tile the packed stream exactly.
    assert_eq!(
        t.intervals.iter().map(|iv| iv.end - iv.start).sum::<u64>(),
        t.events_total
    );
    assert!(
        t.intervals.iter().any(|iv| iv.package.is_some()),
        "a covered run must be resident in some package"
    );

    let svg = render_timeline_svg(&t);
    assert_eq!(
        svg.matches(r#"class="pkg-lane""#).count(),
        t.packages,
        "exactly one Gantt lane per package"
    );
    assert_eq!(svg.matches(r#"class="orig-lane""#).count(), 1);
    assert_eq!(
        svg.matches(r#"class="phase-mark""#).count(),
        t.phases.len(),
        "every detection appears on the phase strip"
    );
}

#[test]
fn twolf_dashboard_html_is_self_contained() {
    let cfg = PackConfig::evaluation_matrix()[3];
    let t = collect_timeline(&twolf_workload(), &cfg).expect("twolf timeline");
    let html = render_dashboard_html(&Dashboard {
        timelines: vec![t],
        heatmap: vec![("300.twolf A".to_string(), vec![0.1, 0.2, 0.3, 0.4])],
        flame: vp_trace::tree_snapshot(),
        trend: Vec::new(),
        ..Dashboard::default()
    });
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("300.twolf A"));
    assert!(html.contains(r#"class="pkg-lane""#));
    for needle in ["<script src", "<link", "https://", "fetch(", "@import"] {
        assert!(
            !html.contains(needle),
            "offline page must not reference external resources: {needle}"
        );
    }
}
