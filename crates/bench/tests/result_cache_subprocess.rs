//! End-to-end tests of the evaluation result cache: a warm strict sweep
//! must print the *byte-identical* report of a cold one at any `--jobs`
//! count — while doing zero replays, simulations, or profile runs for
//! the cached cells — and a run without `VP_RESULT_DIR` must match both.
//!
//! Each test drives the real binary via `CARGO_BIN_EXE_sweep` with a
//! scrubbed environment and its own cache directory, restricted with
//! `--only` filters so debug-mode runtimes stay small.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

/// Runs the sweep binary with a scrubbed environment: no inherited
/// `VP_*` knobs, everything only as given in `envs`.
fn sweep(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    for var in [
        "VP_SHARD",
        "VP_TRACE",
        "VP_TRACE_DIR",
        "VP_TRACE_DISK_MB",
        "VP_DIFF",
        "VP_PROFILE_FROM",
        "VP_MERGE_WEIGHT",
        "VP_RESULT_DIR",
        "VP_RESULT_MB",
        "VP_HISTORY_DIR",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("VP_SCALE", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("spawn sweep binary")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sweep failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn tempdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vp-rc-e2e-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The `sweep` manifest line of a run traced to `path`, parsed as JSON
/// text (asserted on by substring — the manifest is JSONL).
fn manifest_line(path: &std::path::Path) -> String {
    let contents = std::fs::read_to_string(path).expect("manifest written");
    contents
        .lines()
        .find(|l| l.contains("\"bin\":\"sweep\"") || l.contains("\"bin\": \"sweep\""))
        .unwrap_or_else(|| panic!("no sweep manifest line in {contents}"))
        .to_string()
}

#[test]
fn warm_sweep_is_byte_identical_and_skips_all_work() {
    let dir = tempdir("sweep");
    let cache = dir.to_str().unwrap();
    let args = ["--only", "130.li", "--timing"];

    // No-cache reference first: the cache must never change the report.
    let uncached = stdout(&sweep(&args, &[("VP_DIFF", "strict")]));

    let cold_mf = dir.join("cold.jsonl");
    let cold = stdout(&sweep(
        &args,
        &[
            ("VP_DIFF", "strict"),
            ("VP_RESULT_DIR", cache),
            ("VP_TRACE", &format!("json:{}", cold_mf.display())),
        ],
    ));
    assert_eq!(uncached, cold, "a cold cached run must match no-cache");
    let cold_line = manifest_line(&cold_mf);
    assert!(
        cold_line.contains("\"result_cache\":{\"hits\":0,\"misses\":12"),
        "cold run must report 12 misses: {cold_line}"
    );

    let warm_mf = dir.join("warm.jsonl");
    let warm = stdout(&sweep(
        &args,
        &[
            ("VP_DIFF", "strict"),
            ("VP_RESULT_DIR", cache),
            ("VP_TRACE", &format!("json:{}", warm_mf.display())),
        ],
    ));
    assert_eq!(cold, warm, "warm report must be byte-identical to cold");

    // The warm run answered every cell from the cache and never touched
    // the executor: no live captures, no trace replays, no profiling.
    let warm_line = manifest_line(&warm_mf);
    assert!(
        warm_line.contains("\"result_cache\":{\"hits\":12,\"misses\":0,\"hit_ratio\":1}"),
        "warm run must report 12/12 hits: {warm_line}"
    );
    assert!(
        warm_line.contains("\"result_cache.hits\":12"),
        "warm counters must show 12 hits: {warm_line}"
    );
    for never in [
        "trace_store.captures",
        "trace_store.replays",
        "hsd.",
        "core.identify",
        "metrics.evaluate",
    ] {
        assert!(
            !warm_line.contains(never),
            "warm run must not record {never}: {warm_line}"
        );
    }

    // Parallelism must not change a warm report either.
    let warm8 = stdout(&sweep(
        &["--only", "130.li", "--timing", "--jobs", "8"],
        &[("VP_DIFF", "strict"), ("VP_RESULT_DIR", cache)],
    ));
    assert_eq!(cold, warm8, "--jobs 8 warm report must match");
}

#[test]
fn warm_cross_is_byte_identical_and_never_profiles() {
    let dir = tempdir("cross");
    let cache = dir.to_str().unwrap();
    let args = ["cross", "--only", "130.li", "--timing"];

    let uncached = stdout(&sweep(&args, &[("VP_DIFF", "strict")]));
    let cold = stdout(&sweep(
        &args,
        &[("VP_DIFF", "strict"), ("VP_RESULT_DIR", cache)],
    ));
    assert_eq!(uncached, cold, "a cold cached cross must match no-cache");

    let warm_mf = dir.join("warm.jsonl");
    let warm = stdout(&sweep(
        &args,
        &[
            ("VP_DIFF", "strict"),
            ("VP_RESULT_DIR", cache),
            ("VP_TRACE", &format!("json:{}", warm_mf.display())),
        ],
    ));
    assert_eq!(cold, warm, "warm cross report must be byte-identical");
    let warm_line = manifest_line(&warm_mf);
    assert!(
        warm_line.contains("\"result_cache\":{\"hits\":12,\"misses\":0,\"hit_ratio\":1}"),
        "warm cross must report 12/12 hits: {warm_line}"
    );
    assert!(
        !warm_line.contains("\"trace_store.captures\""),
        "warm cross must not capture: {warm_line}"
    );
    assert!(
        !warm_line.contains("\"profile.merge.resolves\""),
        "fully-cached family must not resolve a merged profile: {warm_line}"
    );
}

#[test]
fn knob_changes_miss_instead_of_serving_stale_results() {
    let dir = tempdir("knobs");
    let cache = dir.to_str().unwrap();
    let args = ["--only", "130.li", "--timing"];

    let _ = stdout(&sweep(
        &args,
        &[("VP_DIFF", "strict"), ("VP_RESULT_DIR", cache)],
    ));

    // A different diff mode is a different config fingerprint: every
    // cell must re-evaluate (and the report renders a different diff
    // column), not hit the strict-mode entries.
    let mf = dir.join("report-mode.jsonl");
    let _ = stdout(&sweep(
        &args,
        &[
            ("VP_DIFF", "off"),
            ("VP_RESULT_DIR", cache),
            ("VP_TRACE", &format!("json:{}", mf.display())),
        ],
    ));
    let line = manifest_line(&mf);
    assert!(
        line.contains("\"result_cache\":{\"hits\":0,\"misses\":12"),
        "VP_DIFF change must miss every cell: {line}"
    );

    // VP_PROFILE_FROM bypasses the cache entirely: no hits, no misses,
    // no result_cache manifest object at all.
    let mf = dir.join("profile-from.jsonl");
    let subst = stdout(&sweep(
        &args,
        &[
            ("VP_DIFF", "strict"),
            ("VP_PROFILE_FROM", "merged"),
            ("VP_RESULT_DIR", cache),
            ("VP_TRACE", &format!("json:{}", mf.display())),
        ],
    ));
    assert!(subst.contains("[profile: merged]"), "{subst}");
    let line = manifest_line(&mf);
    assert!(
        !line.contains("\"result_cache\":{"),
        "VP_PROFILE_FROM must bypass the cache: {line}"
    );
    assert!(
        !line.contains("result_cache.hits"),
        "VP_PROFILE_FROM must not probe the cache: {line}"
    );
}
