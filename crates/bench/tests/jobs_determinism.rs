//! End-to-end tests of `sweep --jobs`: the work-stealing in-process
//! scheduler must never change what a sweep *prints* — an 8-worker run,
//! a 1-worker run, and the pre-existing sequential path (`VP_THREADS=1`,
//! no jobs knobs) must produce byte-identical reports, under strict
//! differential replay and for `sweep cross` too. Scheduling telemetry
//! (`sweep.jobs`, steals, utilization) lands in the manifest, not the
//! report, which is what keeps this property cheap to hold.
//!
//! Each test drives the real binary via `CARGO_BIN_EXE_sweep`,
//! restricted with `--only` filters so debug-mode runtimes stay small.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp_file(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "vpjobs-test-{}-{tag}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs the sweep binary with a scrubbed environment: no inherited
/// `VP_*` knobs, everything only as given in `envs`.
fn sweep(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    for var in [
        "VP_SHARD",
        "VP_TRACE",
        "VP_TRACE_DIR",
        "VP_TRACE_DISK_MB",
        "VP_DIFF",
        "VP_PROFILE_FROM",
        "VP_MERGE_WEIGHT",
        "VP_SWEEP_JOBS",
        "VP_THREADS",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("VP_SCALE", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("spawn sweep binary")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sweep failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn jobs_count_never_changes_the_strict_sweep_report() {
    let args = ["--only", "gzip"];
    let strict = [("VP_DIFF", "strict")];
    let sequential = stdout(&sweep(&args, &[("VP_DIFF", "strict"), ("VP_THREADS", "1")]));
    let one = stdout(&sweep(&["--jobs", "1", "--only", "gzip"], &strict));
    let eight = stdout(&sweep(&["--jobs", "8", "--only", "gzip"], &strict));
    assert!(sequential.contains("Sweep report"), "{sequential}");
    assert_eq!(
        one, sequential,
        "--jobs 1 must reproduce the sequential report byte for byte"
    );
    assert_eq!(
        eight, sequential,
        "--jobs 8 must reproduce the sequential report byte for byte"
    );

    // The env-knob spelling of the same worker count is equivalent.
    let via_env = stdout(&sweep(
        &args,
        &[("VP_DIFF", "strict"), ("VP_SWEEP_JOBS", "8")],
    ));
    assert_eq!(via_env, sequential, "VP_SWEEP_JOBS=8 equals --jobs 8");
}

#[test]
fn jobs_count_never_changes_the_cross_report() {
    let args =
        |jobs: &'static str| vec!["cross", "--jobs", jobs, "--only", "130.li", "--eval", "A"];
    let strict = [("VP_DIFF", "strict")];
    let one = stdout(&sweep(&args("1"), &strict));
    let eight = stdout(&sweep(&args("8"), &strict));
    assert!(one.contains("Cross-input"), "{one}");
    assert_eq!(
        eight, one,
        "cross report must be independent of the worker count"
    );
}

#[test]
fn parallel_manifest_stamps_scheduler_telemetry() {
    let mf_path = tmp_file("sched");
    let spec = format!("json:{}", mf_path.display());
    stdout(&sweep(
        &["--jobs", "4", "--only", "gzip"],
        &[("VP_TRACE", spec.as_str())],
    ));
    let mf = std::fs::read_to_string(&mf_path).expect("manifest written");
    assert!(
        mf.contains("\"sweep\":{\"jobs\":4"),
        "manifest must stamp the sweep scheduler object with the worker count: {mf}"
    );
    for key in ["\"steals\":", "\"workers\":[", "\"utilization\":"] {
        assert!(mf.contains(key), "manifest lacks {key}: {mf}");
    }
    let _ = std::fs::remove_file(&mf_path);
}

#[test]
fn jobs_composes_with_sharding() {
    // A sharded process with --jobs still runs only its own cells.
    let out = stdout(&sweep(
        &["--jobs", "2", "--only", "gzip"],
        &[("VP_SHARD", "0/2")],
    ));
    assert!(out.starts_with("shard 0/2:"), "{out}");
}

#[test]
fn malformed_jobs_is_a_hard_error() {
    for bad in [&["--jobs", "0"][..], &["--jobs", "x"], &["--jobs"]] {
        let mut args = bad.to_vec();
        args.extend(["--only", "gzip"]);
        let out = sweep(&args, &[]);
        assert!(
            !out.status.success(),
            "--jobs {bad:?} must be rejected, not silently ignored"
        );
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(err.contains("--jobs"), "{err}");
    }
}
