//! `dashboard manifest-diff` exit-code contract, end to end: 0 = no
//! regression, 1 = regression found, 2 = usage/parse error — and the
//! `--history DIR` band gate that widens or tightens the verdict from
//! warehoused runs.

use bench::history::{RunRecord, Warehouse};
use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "vpdiff-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn manifest_file(tag: &str, sweep_cells_ms: f64) -> PathBuf {
    let path = tmp_path(tag);
    let line = format!(
        r#"{{"t":"manifest","schema":"vp-manifest/2","bin":"sweep","duration_ms":{sweep_cells_ms},"spans":{{"bench.sweep_cells":{{"ms":{sweep_cells_ms},"count":1}}}}}}"#
    );
    std::fs::write(&path, format!("{line}\n")).expect("write manifest");
    path
}

fn diff(args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dashboard"));
    cmd.env_remove("VP_HISTORY_DIR");
    cmd.arg("manifest-diff");
    cmd.args(args).output().expect("spawn dashboard binary")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn exit_codes_separate_verdict_from_usage_errors() {
    let old = manifest_file("old", 100.0);
    let ok = manifest_file("ok", 110.0);
    let bad = manifest_file("bad", 200.0);

    let pass = diff(&[old.to_str().unwrap(), ok.to_str().unwrap()]);
    assert_eq!(code(&pass), 0, "{pass:?}");
    assert!(String::from_utf8_lossy(&pass.stdout).contains("OK"));

    let fail = diff(&[old.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(code(&fail), 1, "a 100% span regression must exit 1");
    assert!(String::from_utf8_lossy(&fail.stderr).contains("FAIL"));

    // Usage and parse problems are exit 2, never 1.
    assert_eq!(code(&diff(&[old.to_str().unwrap()])), 2, "missing operand");
    let garbage = tmp_path("garbage");
    std::fs::write(&garbage, "not json\n").unwrap();
    assert_eq!(
        code(&diff(&[old.to_str().unwrap(), garbage.to_str().unwrap()])),
        2,
        "a file without a manifest line is a parse error, not a verdict"
    );
    assert_eq!(
        code(&diff(&[
            old.to_str().unwrap(),
            ok.to_str().unwrap(),
            "--max-span-regression",
            "abc"
        ])),
        2,
        "non-numeric gate percentage"
    );

    for p in [old, ok, bad, garbage] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn history_band_overrides_the_single_baseline_verdict() {
    // Warehoused runs for bin "sweep" put bench.sweep_cells at
    // 170/180/190 ms: median 180, MAD 10 → ceil 180 + max(30, 45) = 225.
    let hist = tmp_path("warehouse");
    let w = Warehouse::open(&hist).expect("open warehouse");
    for (i, ms) in [170.0, 180.0, 190.0].into_iter().enumerate() {
        let mut rec = RunRecord {
            ts: i as u64 + 1,
            bin: "sweep".to_string(),
            label: format!("run{i}"),
            ..RunRecord::default()
        };
        rec.spans.insert("bench.sweep_cells".to_string(), ms);
        w.ingest(&rec).expect("ingest");
    }

    let old = manifest_file("old", 100.0);
    let new_200 = manifest_file("new200", 200.0);
    let new_300 = manifest_file("new300", 300.0);
    let hist_arg = hist.to_str().unwrap();

    // 200 ms is +100% vs the old manifest (fails the 25% rule) but well
    // inside the band of what this span has recently cost.
    let tolerated = diff(&[
        old.to_str().unwrap(),
        new_200.to_str().unwrap(),
        "--history",
        hist_arg,
    ]);
    assert_eq!(
        code(&tolerated),
        0,
        "history band must tolerate the known spread: {}",
        String::from_utf8_lossy(&tolerated.stderr)
    );
    assert!(String::from_utf8_lossy(&tolerated.stdout).contains("history gate"));

    // 300 ms breaches even the band.
    let breach = diff(&[
        old.to_str().unwrap(),
        new_300.to_str().unwrap(),
        "--history",
        hist_arg,
    ]);
    assert_eq!(code(&breach), 1);
    assert!(String::from_utf8_lossy(&breach.stderr).contains("history band"));

    // A dangling --history directory is a usage error.
    assert_eq!(
        code(&diff(&[
            old.to_str().unwrap(),
            new_200.to_str().unwrap(),
            "--history"
        ])),
        2
    );

    for p in [old, new_200, new_300] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_dir_all(&hist);
}
