//! Pins the observational equivalence of every timing-model replay path.
//!
//! The fused column kernel ([`Sink::retire_columns`]), the per-event
//! reference path ([`Sink::retire`] → `retire_one`), and the fully fused
//! decode+sim loop ([`TimingModel::replay_trace`]) are three different
//! implementations of the same machine model. This test proves they
//! produce bit-identical [`TimingStats`] and cycle counts on every
//! workload of the Table 1 suite — the invariant that lets the replay
//! harness and the sweep pick whichever path is fastest without changing
//! any reported number. The hot-spot detector's column fast path is held
//! to the same standard against its struct path.

use vacuum_packing::exec::{CapturedTrace, RunConfig};
use vacuum_packing::hsd::{HotSpotDetector, HsdConfig};
use vacuum_packing::program::Layout;
use vacuum_packing::sim::{MachineConfig, TimingModel};
use vacuum_packing::workloads::suite;

#[test]
fn all_sim_replay_paths_are_bit_identical_across_the_suite() {
    let machine = MachineConfig::table2();
    let workloads = suite(1);
    assert!(workloads.len() >= 12, "Table 1 suite");
    for w in &workloads {
        let layout = Layout::natural(&w.program);
        let cfg = RunConfig::default();
        let trace = CapturedTrace::capture(&w.program, &layout, &cfg).expect("capture");

        // Reference: the pre-batching per-event path through `retire_one`.
        let mut per_event = TimingModel::new(machine);
        trace.replay_per_event(&mut per_event);

        // Batched column kernel at the default chunking.
        let mut batched = TimingModel::new(machine);
        trace.replay(&mut batched);

        // Batched column kernel at a deliberately odd chunk size, so
        // chunk-boundary state carry (fetch group, issue counts,
        // scoreboard) is exercised mid-pattern.
        let mut odd = TimingModel::new(machine);
        trace.replay_batched(&mut odd, 7);

        // Fully fused decode+sim loop.
        let mut fused = TimingModel::new(machine);
        fused.replay_trace(&trace);

        let label = w.label();
        assert_eq!(
            per_event.stats(),
            batched.stats(),
            "{label}: batched column kernel diverged from per-event"
        );
        assert_eq!(
            per_event.stats(),
            odd.stats(),
            "{label}: chunk-boundary carry diverged from per-event"
        );
        assert_eq!(
            per_event.stats(),
            fused.stats(),
            "{label}: fused decode+sim loop diverged from per-event"
        );
        assert_eq!(per_event.cycles(), batched.cycles(), "{label}: cycles");
        assert_eq!(per_event.cycles(), fused.cycles(), "{label}: cycles");

        // Hot-spot detector: the conditional-branch column fast path must
        // surface the same detections as the struct path.
        let mut hsd_struct = HotSpotDetector::new(HsdConfig::default());
        trace.replay_per_event(&mut hsd_struct);
        let mut hsd_cols = HotSpotDetector::new(HsdConfig::default());
        trace.replay(&mut hsd_cols);
        assert_eq!(
            hsd_struct.records(),
            hsd_cols.records(),
            "{label}: HSD column path diverged from struct path"
        );
    }
}
