//! Run-history warehouse contracts: legacy `vp-manifest/1` lines must
//! ingest to the same record as their `/2` counterpart (modulo the
//! fields `/2` added), and segment rotation under a tiny byte budget
//! must drop the oldest history while keeping the index consistent.

use bench::history::{RunRecord, Warehouse};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vphist-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shared core both schema versions carry.
const CORE: &str = r#""bin":"sweep","mode":"table3","scale":2,"shard":"0/2",
    "only":["gzip","vortex"],"cells_done":8,
    "counters":{"trace_store.hits":41,"diff.divergences":0},
    "spans":{"bench.sweep_cells":{"ms":120.5,"count":1}},
    "histograms":{"pack.sizes":{"count":4,"sum":100,"p50":25}}"#;

fn legacy_line() -> String {
    format!(r#"{{"t":"manifest","schema":"vp-manifest/1",{CORE}}}"#).replace('\n', "")
}

fn v2_line() -> String {
    format!(
        r#"{{"t":"manifest","schema":"vp-manifest/2",{CORE},"duration_ms":345.6,"seq":17,
        "flight":{{"capacity":256,"recorded":3,"dropped":0}}}}"#
    )
    .replace('\n', "")
}

#[test]
fn legacy_and_v2_manifests_ingest_to_the_same_record_core() {
    let old = RunRecord::from_manifest_line(&legacy_line(), 100).expect("legacy parses");
    let new = RunRecord::from_manifest_line(&v2_line(), 100).expect("v2 parses");

    // Everything both schemas carry must land identically.
    assert_eq!(old.bin, new.bin);
    assert_eq!(old.config, new.config);
    assert_eq!(old.workload, "gzip+vortex");
    assert_eq!(old.workload, new.workload);
    assert_eq!(old.counters, new.counters);
    assert_eq!(old.spans, new.spans);
    assert_eq!(old.hists, new.hists);
    assert_eq!(old.key(), new.key(), "same key → same fingerprint bucket");
    assert_eq!(old.fingerprint(), new.fingerprint());
    assert_eq!(old.metrics["cells_done"], 8.0);
    assert_eq!(new.metrics["cells_done"], 8.0);

    // The /2-only fields are the whole difference.
    assert_eq!(old.duration_ms, None, "legacy lines have no duration");
    assert_eq!(new.duration_ms, Some(345.6));

    // Round-trip through the warehouse keeps the parity.
    let dir = tmp_dir("parity");
    let w = Warehouse::open(&dir).expect("open warehouse");
    w.ingest_manifest_line(&legacy_line()).expect("ingest /1");
    w.ingest_manifest_line(&v2_line()).expect("ingest /2");
    let records = w.records().expect("read back");
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].counters, records[1].counters);
    assert_eq!(records[0].spans, records[1].spans);
    assert_eq!(records[0].fingerprint(), records[1].fingerprint());
    let index = w.index().expect("index");
    assert_eq!(index.len(), 2, "one index entry per ingested run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_budget_rotates_segments_and_drops_oldest_history() {
    let dir = tmp_dir("rotate");
    // 8 KiB budget → 4096-byte segment cap (the floor). Each record is
    // padded well past trivial size so a handful of runs force rotation.
    let w = Warehouse::open_with_budget(&dir, 8 * 1024).expect("open warehouse");
    let rec = |i: u64| RunRecord {
        ts: i,
        bin: "sweep".to_string(),
        label: format!("run-{i:04}-{}", "x".repeat(400)),
        config: "mode=test".to_string(),
        workload: "gzip".to_string(),
        ..RunRecord::default()
    };
    for i in 0..40 {
        w.ingest(&rec(i)).expect("ingest");
    }

    let segs = w.segments().expect("segments");
    assert!(
        segs.len() > 1,
        "40 ~450-byte records cannot fit one 4 KiB segment: {segs:?}"
    );
    assert!(
        w.total_bytes().expect("sizes") <= 8 * 1024,
        "rotation must keep the store inside its byte budget"
    );

    let records = w.records().expect("records");
    assert!(!records.is_empty());
    let kept_ts: Vec<u64> = records.iter().map(|r| r.ts).collect();
    assert!(
        !kept_ts.contains(&0),
        "the oldest run must be rotated out first"
    );
    assert!(
        kept_ts.contains(&39),
        "the newest run always survives rotation"
    );
    assert!(
        kept_ts.windows(2).all(|p| p[0] < p[1]),
        "records stay in append order across segments: {kept_ts:?}"
    );

    // Index consistency: entries reference only live segments, and every
    // retained record has exactly one entry.
    let live: Vec<String> = segs
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    let index = w.index().expect("index");
    assert_eq!(
        index.len(),
        records.len(),
        "index must shrink with the rotated-out segments"
    );
    for e in &index {
        assert!(
            live.contains(&e.seg),
            "index entry points at deleted segment {}",
            e.seg
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `sweep history gate --lower X` is an absolute floor: it fails a
/// breaching value even with no warehouse at all (where the band gate
/// would refuse to run), and passes a clearing value on floor alone.
#[test]
fn gate_hard_floor_works_without_any_history() {
    let gate = |value: &str| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_sweep"));
        cmd.env_remove("VP_HISTORY_DIR");
        cmd.args([
            "history",
            "gate",
            "metric:batched_speedup_vs_per_event",
            "--value",
            value,
            "--lower",
            "1.0",
        ]);
        cmd.output().expect("spawn sweep binary")
    };

    let breach = gate("0.91");
    assert_eq!(breach.status.code(), Some(1), "0.91 must breach floor 1.0");
    assert!(String::from_utf8_lossy(&breach.stdout).contains("hard floor 1.0000 ... FAIL"));

    let clear = gate("1.24");
    assert_eq!(clear.status.code(), Some(0), "1.24 clears floor 1.0");
    let out = String::from_utf8_lossy(&clear.stdout);
    assert!(out.contains("hard floor 1.0000 ... ok"), "{out}");
    assert!(
        out.contains("no warehouse — hard floor only"),
        "without history the floor is the whole gate: {out}"
    );
}
