//! End-to-end tests of `sweep cross`: the generalization report must be
//! byte-identical across runs (the merge algebra and the cell schedule
//! are both deterministic), strict differential replay must hold for
//! every cell kind, and the merge/profile knobs must hard-reject typos
//! instead of silently measuring the wrong matrix.
//!
//! Each test drives the real binary via `CARGO_BIN_EXE_sweep`,
//! restricted with `--only`/`--eval` filters so debug-mode runtimes stay
//! small.

use std::process::{Command, Output};

/// Runs the sweep binary with a scrubbed environment: no inherited
/// `VP_*` knobs, everything only as given in `envs`.
fn sweep(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    for var in [
        "VP_SHARD",
        "VP_TRACE",
        "VP_TRACE_DIR",
        "VP_TRACE_DISK_MB",
        "VP_DIFF",
        "VP_PROFILE_FROM",
        "VP_MERGE_WEIGHT",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("VP_SCALE", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("spawn sweep binary")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sweep failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn strict_cross_report_is_byte_identical_across_runs() {
    let args = ["cross", "--only", "130.li"];
    let envs = [("VP_DIFF", "strict")];
    let first = stdout(&sweep(&args, &envs));
    let second = stdout(&sweep(&args, &envs));
    assert_eq!(
        first, second,
        "two cross runs over the same family must print the identical report"
    );

    // The full 130.li matrix: 3 eval inputs x (3 sources + merged).
    assert!(
        first.contains("1 families, 12 cells, 0 divergences"),
        "{first}"
    );
    for kind in ["same", "foreign", "merged"] {
        assert!(
            first.contains(&format!("{kind:>8}: avg coverage")),
            "{first}"
        );
    }
    // Retention lines exist for the derived kinds only.
    assert_eq!(first.matches("% of same)").count(), 2, "{first}");
    // Every cell survived strict differential replay.
    assert_eq!(first.matches(" clean").count(), 12, "{first}");
    assert!(!first.contains("diverged  "), "{first}");
}

#[test]
fn merged_profile_standard_sweep_is_byte_identical_across_runs() {
    // VP_PROFILE_FROM=merged applies the family merge to the *standard*
    // sweep; the substituted report must also be deterministic.
    let args = ["--only", "130.li"];
    let envs = [("VP_DIFF", "strict"), ("VP_PROFILE_FROM", "merged")];
    let first = stdout(&sweep(&args, &envs));
    let second = stdout(&sweep(&args, &envs));
    assert_eq!(
        first, second,
        "two merged-profile sweeps must print the identical report"
    );
    assert!(first.contains("Sweep report"), "{first}");

    // The substitution relabels the workloads it touched.
    assert!(first.contains("[profile: merged]"), "{first}");
}

#[test]
fn uniform_weighting_changes_nothing_about_determinism() {
    let args = [
        "cross", "--only", "130.li", "--eval", "B", "--from", "merged",
    ];
    let retired = stdout(&sweep(&args, &[]));
    let uniform = stdout(&sweep(&args, &[("VP_MERGE_WEIGHT", "uniform")]));
    for report in [&retired, &uniform] {
        assert!(report.contains("1 families, 1 cells"), "{report}");
        assert!(report.contains("merged"), "{report}");
    }
}

#[test]
fn typoed_knobs_are_hard_errors() {
    // A profile source that exists in no selected family must refuse to
    // run rather than silently measure the same-input matrix.
    let out = sweep(&["--only", "gzip"], &[("VP_PROFILE_FROM", "Z")]);
    assert!(!out.status.success(), "VP_PROFILE_FROM=Z must be rejected");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("VP_PROFILE_FROM"), "{err}");

    // Same for an unknown merge weighting.
    let out = sweep(
        &[
            "cross", "--only", "130.li", "--eval", "B", "--from", "merged",
        ],
        &[("VP_MERGE_WEIGHT", "bogus")],
    );
    assert!(
        !out.status.success(),
        "VP_MERGE_WEIGHT=bogus must be rejected"
    );
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("VP_MERGE_WEIGHT"), "{err}");

    // And filters that match no cell.
    let out = sweep(&["cross", "--only", "no-such-family"], &[]);
    assert!(!out.status.success(), "empty cross matrix must be an error");
}
