//! End-to-end tests of the `sweep` binary: sharded runs must merge into
//! the exact unsharded report, a shared `VP_TRACE_DIR` must let a warmed
//! rerun skip every live capture, and merge must reject incomplete or
//! overlapping shard sets.
//!
//! Each test drives the real binary via `CARGO_BIN_EXE_sweep`, restricted
//! with `--only` to one workload so debug-mode runtimes stay small.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vpsweep-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs the sweep binary with a scrubbed environment: no inherited
/// `VP_*` knobs, tracing/sharding only as given in `envs`.
fn sweep(args: &[&str], envs: &[(&str, &Path)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    for var in ["VP_SHARD", "VP_TRACE", "VP_TRACE_DIR", "VP_TRACE_DISK_MB"] {
        cmd.env_remove(var);
    }
    cmd.env("VP_SCALE", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("spawn sweep binary")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sweep failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn sharded_merge_reproduces_unsharded_report_byte_for_byte() {
    let dir = tmp_dir("merge");
    let unsharded = stdout(&sweep(&["--only", "gzip"], &[]));
    assert!(unsharded.contains("Sweep report"), "{unsharded}");

    let s0 = dir.join("shard0.jsonl");
    let s1 = dir.join("shard1.jsonl");
    let spec0 = format!("json:{}", s0.display());
    let spec1 = format!("json:{}", s1.display());
    let out0 = sweep(
        &["--only", "gzip"],
        &[
            ("VP_SHARD", Path::new("0/2")),
            ("VP_TRACE", Path::new(&spec0)),
        ],
    );
    let out1 = sweep(
        &["--only", "gzip"],
        &[
            ("VP_SHARD", Path::new("1/2")),
            ("VP_TRACE", Path::new(&spec1)),
        ],
    );
    let shard0 = stdout(&out0);
    assert!(shard0.starts_with("shard 0/2:"), "{shard0}");
    stdout(&out1);

    let merged = stdout(&sweep(
        &["merge", s0.to_str().unwrap(), s1.to_str().unwrap()],
        &[],
    ));
    assert_eq!(
        merged, unsharded,
        "merged shard report must equal the unsharded one byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warmed_trace_dir_rerun_performs_zero_live_captures() {
    let dir = tmp_dir("warm");
    let traces = dir.join("traces");
    let cold_jsonl = dir.join("cold.jsonl");
    let warm_jsonl = dir.join("warm.jsonl");

    let cold_spec = format!("json:{}", cold_jsonl.display());
    let cold = stdout(&sweep(
        &["--only", "gzip"],
        &[
            ("VP_TRACE_DIR", traces.as_path()),
            ("VP_TRACE", Path::new(&cold_spec)),
        ],
    ));
    let warm_spec = format!("json:{}", warm_jsonl.display());
    let warm = stdout(&sweep(
        &["--only", "gzip"],
        &[
            ("VP_TRACE_DIR", traces.as_path()),
            ("VP_TRACE", Path::new(&warm_spec)),
        ],
    ));
    assert_eq!(cold, warm, "warmed rerun must print the identical report");

    let cold_mf = std::fs::read_to_string(&cold_jsonl).expect("cold manifest");
    let warm_mf = std::fs::read_to_string(&warm_jsonl).expect("warm manifest");
    assert!(
        cold_mf.contains("\"trace_store.captures\":"),
        "cold run must capture live: {cold_mf}"
    );
    // Zero-valued counters are omitted from the manifest, so a warmed run
    // that captured nothing has no trace_store.captures key at all.
    assert!(
        !warm_mf.contains("\"trace_store.captures\":"),
        "warmed run must perform zero live captures: {warm_mf}"
    );
    assert!(
        warm_mf.contains("\"trace_store.disk_hits\":"),
        "warmed run must be served from the disk tier: {warm_mf}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_incomplete_and_overlapping_shards() {
    let dir = tmp_dir("reject");
    let s0 = dir.join("shard0.jsonl");
    let spec0 = format!("json:{}", s0.display());
    stdout(&sweep(
        &["--only", "gzip"],
        &[
            ("VP_SHARD", Path::new("0/2")),
            ("VP_TRACE", Path::new(&spec0)),
        ],
    ));

    // Half the matrix only: merge must name the missing cells.
    let out = sweep(&["merge", s0.to_str().unwrap()], &[]);
    assert!(!out.status.success(), "merge of half a matrix must fail");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("missing"), "{err}");

    // The same shard twice: merge must flag the duplicate coverage.
    let out = sweep(&["merge", s0.to_str().unwrap(), s0.to_str().unwrap()], &[]);
    assert!(!out.status.success(), "merge of duplicate shards must fail");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("appears in both"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_shard_spec_is_a_hard_error() {
    for bad in ["2/2", "x", "0/0"] {
        let out = sweep(&["--only", "gzip"], &[("VP_SHARD", Path::new(bad))]);
        assert!(
            !out.status.success(),
            "VP_SHARD={bad} must be rejected, not silently ignored"
        );
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(err.contains("invalid shard spec"), "{err}");
    }
}
