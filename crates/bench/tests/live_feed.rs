//! Live-attach and warehouse side channels must be invisible to the
//! report: a strict sweep with `VP_HISTORY_DIR` + `VP_LIVE_FEED` both
//! set prints byte-identically to one with both unset. And the feed a
//! real `--jobs 2` sweep writes must fold into a `sweep watch` view
//! whose per-worker utilization and final cells-done agree with the
//! run's own manifest.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "vpfeed-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs the sweep binary with a scrubbed environment: no inherited
/// `VP_*` knobs, everything only as given in `envs`.
fn sweep(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    for var in [
        "VP_SHARD",
        "VP_TRACE",
        "VP_TRACE_DIR",
        "VP_TRACE_DISK_MB",
        "VP_DIFF",
        "VP_PROFILE_FROM",
        "VP_MERGE_WEIGHT",
        "VP_SWEEP_JOBS",
        "VP_THREADS",
        "VP_HISTORY_DIR",
        "VP_HISTORY_MB",
        "VP_LIVE_FEED",
        "VP_FLIGHT_EVENTS",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("VP_SCALE", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("spawn sweep binary")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sweep failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn history_and_feed_leave_the_strict_report_byte_identical() {
    let args = ["--only", "gzip"];
    let plain = stdout(&sweep(&args, &[("VP_DIFF", "strict")]));
    assert!(plain.contains("Sweep report"), "{plain}");

    let hist = tmp_path("warehouse");
    let feed = tmp_path("feed.jsonl");
    let instrumented = stdout(&sweep(
        &args,
        &[
            ("VP_DIFF", "strict"),
            ("VP_HISTORY_DIR", hist.to_str().unwrap()),
            ("VP_LIVE_FEED", feed.to_str().unwrap()),
        ],
    ));
    assert_eq!(
        instrumented, plain,
        "telemetry side channels must never change the report"
    );

    // ... while both side channels actually captured the run.
    let feed_text = std::fs::read_to_string(&feed).expect("feed file written");
    assert!(
        feed_text.lines().any(|l| l.contains("\"sweep.done\"")),
        "feed must record the sweep finishing:\n{feed_text}"
    );
    let w = bench::history::Warehouse::open(&hist).expect("warehouse opens");
    let records = w.records().expect("warehouse readable");
    assert_eq!(records.len(), 1, "end-of-run manifest must be warehoused");
    assert_eq!(records[0].bin, "sweep");

    let _ = std::fs::remove_dir_all(&hist);
    let _ = std::fs::remove_file(&feed);
}

#[test]
fn watch_folds_a_real_jobs2_feed_to_match_the_manifest() {
    let feed = tmp_path("feed.jsonl");
    let trace = tmp_path("trace.jsonl");
    let trace_env = format!("json:{}", trace.display());
    stdout(&sweep(
        &["--jobs", "2", "--only", "gzip"],
        &[
            ("VP_LIVE_FEED", feed.to_str().unwrap()),
            ("VP_TRACE", &trace_env),
        ],
    ));

    // The manifest's own account of the run.
    let manifest = std::fs::read_to_string(&trace)
        .expect("trace written")
        .lines()
        .find_map(|l| vp_trace::parse_manifest_line(l).ok())
        .expect("manifest line in trace");
    let cells_done = manifest
        .get("cells_done")
        .and_then(vp_trace::Json::as_u64)
        .expect("manifest stamps cells_done");
    assert!(cells_done > 0);

    // `sweep watch` over the finished feed must agree with it.
    let view = stdout(&sweep(&["watch", feed.to_str().unwrap()], &[]));
    assert!(
        view.contains(&format!("sweep complete: {cells_done}/{cells_done} cells")),
        "watch cells-done must match the manifest's {cells_done}:\n{view}"
    );
    assert!(
        view.contains("worker 0:") && view.contains("% utilized"),
        "watch must render per-worker utilization:\n{view}"
    );
    let worker_cells: u64 = view
        .lines()
        .filter(|l| l.trim_start().starts_with("worker "))
        .map(|l| {
            l.split(": ")
                .nth(1)
                .and_then(|r| r.split(' ').next())
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        worker_cells, cells_done,
        "per-worker cell counts must sum to the manifest total:\n{view}"
    );

    let _ = std::fs::remove_file(&feed);
    let _ = std::fs::remove_file(&trace);
}
