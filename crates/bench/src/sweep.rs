//! Sharded (workload × config) sweeps and shard-manifest merging.
//!
//! A full evaluation sweep is embarrassingly parallel across its
//! (workload, configuration) cells, but a single process tops out at
//! `VP_THREADS` cores. This module splits the cell matrix across
//! *processes*: `VP_SHARD=i/n` deterministically assigns every cell with
//! index `j % n == i` (row-major over workloads × configs) to shard `i`,
//! each shard emits its cell rows in its `vp-manifest/2` run manifest, and
//! [`merge_manifests`] joins the per-shard manifests back into the exact
//! report an unsharded run would have printed — byte for byte, because both
//! paths render from the same formatted cell rows via [`render_report`].
//!
//! Shards that share a `VP_TRACE_DIR` also share captured traces through
//! the disk tier, so concurrent shards interpret each workload once
//! machine-wide instead of once per process.

use std::collections::{BTreeMap, BTreeSet};
use vacuum_packing::core::PackConfig;
use vacuum_packing::metrics::{
    evaluate, pct, ConfigOutcome, ProfiledWorkload, ResultKey, TextTable,
};
use vacuum_packing::opt::OptConfig;
use vacuum_packing::sim::MachineConfig;
use vacuum_packing::workloads::{suite, Workload};
use vp_trace::{parse_manifest_line, Json};

use crate::cache::{active_cache, cell_config_fp, own_profile_fp, workload_trace_fp};
use crate::{parallel_sweep_scoped, profile_workloads, scale, store_hit_ratio, CONFIG_LABELS};

/// Column headers of the per-cell sweep table; [`render_report`] and the
/// shard manifests both use this exact shape.
pub const CELL_HEADERS: [&str; 9] = [
    "cell",
    "workload",
    "config",
    "coverage%",
    "expansion",
    "phases",
    "packages",
    "speedup",
    "diff",
];

const COL_CELL: usize = 0;
const COL_CONFIG: usize = 2;
const COL_COVERAGE: usize = 3;
const COL_EXPANSION: usize = 4;
const COL_SPEEDUP: usize = 7;
const COL_DIFF: usize = 8;

/// Column headers of the per-cell telemetry table emitted alongside the
/// cell rows: wall time and trace-store behavior of each cell in
/// isolation (each cell runs in its own vp-trace scope, so these numbers
/// never include a concurrently-running cell's work).
pub const TELEMETRY_HEADERS: [&str; 7] = [
    "cell",
    "wall_ms",
    "store_hits",
    "store_captures",
    "hit_ratio%",
    "divergences",
    "result_cache",
];

/// One shard's slice of the cell matrix, parsed from `VP_SHARD=i/n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards, `>= 1`.
    pub count: usize,
}

impl ShardSpec {
    /// Parses `"i/n"`.
    ///
    /// # Errors
    ///
    /// Rejects anything that is not two integers separated by `/` with
    /// `i < n` and `n >= 1` — a malformed spec silently running the full
    /// matrix would defeat the point of sharding, so this is a hard error.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let bad = || format!("invalid shard spec {s:?} (expected i/n with 0 <= i < n)");
        let (i, n) = s.split_once('/').ok_or_else(bad)?;
        let index: usize = i.trim().parse().map_err(|_| bad())?;
        let count: usize = n.trim().parse().map_err(|_| bad())?;
        if count == 0 || index >= count {
            return Err(bad());
        }
        Ok(ShardSpec { index, count })
    }

    /// Reads `VP_SHARD`; `Ok(None)` when unset (run the whole matrix).
    ///
    /// # Errors
    ///
    /// Propagates [`ShardSpec::parse`] failures for a set-but-malformed
    /// value.
    pub fn from_env() -> Result<Option<ShardSpec>, String> {
        match std::env::var("VP_SHARD") {
            Ok(s) if !s.trim().is_empty() => ShardSpec::parse(s.trim()).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether cell `j` of the row-major matrix belongs to this shard.
    pub fn selects(&self, cell: usize) -> bool {
        cell % self.count == self.index
    }

    /// The `i/n` display form.
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }
}

/// The result of sweeping one shard (or, with no shard, the whole matrix).
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Formatted cell rows in ascending cell order, shaped like
    /// [`CELL_HEADERS`].
    pub rows: Vec<Vec<String>>,
    /// Per-cell telemetry rows, shaped like [`TELEMETRY_HEADERS`], in the
    /// same cell order as `rows`.
    pub telemetry: Vec<Vec<String>>,
    /// Size of the full matrix (all shards combined).
    pub cells_total: usize,
    /// Cells answered from the result cache (0 when caching is off).
    pub cache_hits: usize,
    /// Cells evaluated live this run.
    pub cache_misses: usize,
}

/// Evaluates this shard's cells of the (workload × config) matrix.
///
/// Workloads are filtered by `only` (case-sensitive substring match on the
/// label; empty = whole suite) *before* sharding, so every shard of a
/// filtered sweep partitions the same reduced matrix. Only the workloads
/// that own at least one selected cell are profiled, which is what makes an
/// `n`-way shard roughly `n`× cheaper rather than just `n`× smaller.
///
/// # Panics
///
/// Panics if any profile or evaluation fails, naming every failing cell.
pub fn sweep_cells(
    shard: Option<&ShardSpec>,
    machine: Option<&MachineConfig>,
    only: &[String],
) -> SweepOutcome {
    let _s = vp_trace::span("bench.sweep_cells");
    let workloads: Vec<Workload> = suite(scale())
        .into_iter()
        .filter(|w| only.is_empty() || only.iter().any(|f| w.label().contains(f.as_str())))
        .collect();
    let configs = PackConfig::evaluation_matrix();
    let n_cfg = configs.len();
    let cells_total = workloads.len() * n_cfg;

    let mine: Vec<usize> = (0..cells_total)
        .filter(|&j| shard.is_none_or(|s| s.selects(j)))
        .collect();

    // Result-cache probe: every selected cell's content address is
    // derivable from the workload's structure alone (no execution), so
    // cached outcomes are collected before deciding what to profile.
    let cache = active_cache();
    let mut keys: BTreeMap<usize, ResultKey> = BTreeMap::new();
    let mut cached: BTreeMap<usize, ConfigOutcome> = BTreeMap::new();
    if let Some(rc) = &cache {
        let profile_fp = own_profile_fp();
        let config_fps: Vec<u64> = configs
            .iter()
            .map(|c| cell_config_fp(c, &OptConfig::default(), machine))
            .collect();
        let by_workload: BTreeSet<usize> = mine.iter().map(|&j| j / n_cfg).collect();
        let trace_fps: BTreeMap<usize, u64> = by_workload
            .into_iter()
            .map(|w| (w, workload_trace_fp(&workloads[w])))
            .collect();
        for &j in &mine {
            let (w, c) = (j / n_cfg, j % n_cfg);
            let key = ResultKey {
                cell: format!("{} [{}]", workloads[w].label(), CONFIG_LABELS[c]),
                trace_fp: trace_fps[&w],
                profile_fp,
                config_fp: config_fps[c],
            };
            if let Some(out) = rc.load(&key) {
                cached.insert(j, out);
            }
            keys.insert(j, key);
        }
    }

    // Profile only the workloads that still own at least one live cell: a
    // fully-cached workload never replays, simulates, or even profiles.
    let needed: BTreeSet<usize> = mine
        .iter()
        .filter(|j| !cached.contains_key(j))
        .map(|&j| j / n_cfg)
        .collect();
    let labels: Vec<String> = workloads.iter().map(Workload::label).collect();
    let subset: Vec<Workload> = workloads
        .into_iter()
        .enumerate()
        .filter_map(|(w, wl)| needed.contains(&w).then_some(wl))
        .collect();
    let mut profiled = profile_workloads(subset, machine);
    // VP_PROFILE_FROM: evaluate multi-input family members under a
    // sibling's or the family-merged profile instead of their own.
    // (Caching is disabled under this knob — see `active_cache` — so the
    // substitution always sees the full profiled set.)
    if let Ok(spec) = std::env::var("VP_PROFILE_FROM") {
        if !spec.trim().is_empty() {
            profiled = crate::cross::substitute_profiles(profiled, spec.trim(), machine);
        }
    }
    let mut by_index: BTreeMap<usize, ProfiledWorkload> = BTreeMap::new();
    for (&w, pw) in needed.iter().zip(profiled) {
        by_index.insert(w, pw);
    }

    // Live cells render under the *profiled* label (substitution may
    // have relabeled it, e.g. "130.li A [profile: merged]"); cached
    // cells — which never profile — use the workload's own label, the
    // same string the run that stored them rendered.
    let label_of =
        |w: usize| -> &str { by_index.get(&w).map_or(labels[w].as_str(), |pw| &pw.label) };
    let jobs: Vec<(String, usize)> = mine
        .iter()
        .map(|&j| {
            let (w, c) = (j / n_cfg, j % n_cfg);
            (format!("{} [{}]", label_of(w), CONFIG_LABELS[c]), j)
        })
        .collect();
    if vp_trace::feed_enabled() {
        vp_trace::feed(
            "sweep.start",
            &[
                ("total", vp_trace::Value::from(jobs.len() as u64)),
                ("jobs", vp_trace::Value::from(crate::jobs() as u64)),
            ],
        );
    }
    let sweep_t0 = std::time::Instant::now();
    let results = parallel_sweep_scoped("sweep", jobs, |&j| {
        let (w, c) = (j / n_cfg, j % n_cfg);
        if let Some(out) = cached.get(&j) {
            // Cached cell: the formatted row is reproduced from the
            // stored outcome; no replay, simulation, or profile ran.
            return (cell_row(j, label_of(w), CONFIG_LABELS[c], out), "hit");
        }
        let out = evaluate(&by_index[&w], &configs[c], &OptConfig::default(), machine)
            .unwrap_or_else(|e| panic!("{e}"));
        if let (Some(rc), Some(key)) = (&cache, keys.get(&j)) {
            rc.store(key, &out);
        }
        let status = if cache.is_some() { "miss" } else { "-" };
        (cell_row(j, label_of(w), CONFIG_LABELS[c], &out), status)
    });
    let mut rows = Vec::new();
    let mut telemetry = Vec::new();
    for ((row, cache_status), t) in crate::collect_or_report("sweep_cells", results) {
        telemetry.push(telemetry_row(&row[COL_CELL], &t, cache_status));
        rows.push(row);
    }
    if vp_trace::feed_enabled() {
        let wall_ms = sweep_t0.elapsed().as_secs_f64() * 1e3;
        vp_trace::feed(
            "sweep.done",
            &[
                ("done", vp_trace::Value::from(rows.len() as u64)),
                ("total", vp_trace::Value::from(rows.len() as u64)),
                (
                    "wall_ms",
                    vp_trace::Value::from((wall_ms * 1e3).round() / 1e3),
                ),
                ("cache_hits", vp_trace::Value::from(cached.len() as u64)),
            ],
        );
    }
    let cache_hits = cached.len();
    let cache_misses = if cache.is_some() {
        rows.len() - cache_hits
    } else {
        0
    };
    SweepOutcome {
        rows,
        telemetry,
        cells_total,
        cache_hits,
        cache_misses,
    }
}

pub(crate) fn telemetry_row(
    cell: &str,
    t: &crate::JobTelemetry,
    cache_status: &str,
) -> Vec<String> {
    vec![
        cell.to_string(),
        format!("{:.1}", t.wall_ms),
        (t.report.counter("trace_store.hits") + t.report.counter("trace_store.disk_hits"))
            .to_string(),
        t.report.counter("trace_store.captures").to_string(),
        store_hit_ratio(&t.report).map_or_else(|| "-".to_string(), |r| format!("{:.0}", r * 100.0)),
        t.report.counter("diff.divergences").to_string(),
        cache_status.to_string(),
    ]
}

fn cell_row(
    cell: usize,
    workload: &str,
    config: &str,
    out: &vacuum_packing::metrics::ConfigOutcome,
) -> Vec<String> {
    vec![
        cell.to_string(),
        workload.to_string(),
        config.to_string(),
        pct(out.coverage),
        format!("{:.3}", out.expansion),
        out.phases.to_string(),
        out.packages.to_string(),
        out.speedup
            .map_or_else(|| "-".to_string(), |s| format!("{s:.3}")),
        out.diff
            .as_ref()
            .map_or_else(|| "-".to_string(), |d| d.verdict.to_string()),
    ]
}

fn mean_of(rows: &[&Vec<String>], col: usize) -> Option<f64> {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r[col].parse().ok()).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Renders the canonical sweep report from formatted cell rows.
///
/// Both the unsharded `sweep` binary and `sweep merge` print exactly this —
/// averages are recomputed from the *formatted* strings, never from carried
/// floats, so a merged report is byte-identical to an unsharded one.
pub fn render_report(rows: &[Vec<String>]) -> String {
    let mut sorted: Vec<&Vec<String>> = rows.iter().collect();
    sorted.sort_by_key(|r| r[COL_CELL].parse::<usize>().unwrap_or(usize::MAX));

    let workloads: BTreeSet<&str> = sorted.iter().map(|r| r[1].as_str()).collect();
    let mut t = TextTable::new(CELL_HEADERS.to_vec());
    for r in &sorted {
        t.row((*r).clone());
    }

    // Per-config averages, in first-appearance (matrix) order.
    let mut config_order: Vec<&str> = Vec::new();
    for r in &sorted {
        if !config_order.contains(&r[COL_CONFIG].as_str()) {
            config_order.push(r[COL_CONFIG].as_str());
        }
    }
    for cfg in config_order {
        let of_cfg: Vec<&Vec<String>> = sorted
            .iter()
            .filter(|r| r[COL_CONFIG] == cfg)
            .copied()
            .collect();
        let fmt = |v: Option<f64>, prec: usize| {
            v.map_or_else(|| "-".to_string(), |v| format!("{v:.prec$}"))
        };
        t.row(vec![
            "avg".to_string(),
            "average".to_string(),
            cfg.to_string(),
            fmt(mean_of(&of_cfg, COL_COVERAGE), 1),
            fmt(mean_of(&of_cfg, COL_EXPANSION), 3),
            "-".to_string(),
            "-".to_string(),
            fmt(mean_of(&of_cfg, COL_SPEEDUP), 3),
            "-".to_string(),
        ]);
    }
    let diverged = sorted.iter().filter(|r| r[COL_DIFF] == "diverged").count();
    format!(
        "Sweep report: {} workloads, {} cells, {} divergences\n\n{t}",
        workloads.len(),
        sorted.len(),
        diverged
    )
}

/// Joins per-shard `vp-manifest/2` JSONL into the unsharded report.
///
/// `inputs` is `(source name, file contents)` per shard manifest; the
/// source name only decorates error messages. Every line that parses as a
/// `sweep` manifest contributes its `cells` table.
///
/// # Errors
///
/// * a shard file contains no sweep manifest line;
/// * shards disagree on the total cell count (mixed `--only` filters or
///   scales);
/// * a cell index appears in more than one shard (duplicate coverage);
/// * a cell index of `0..cells_total` appears in no shard (a missing
///   shard, or a shard that died mid-run).
pub fn merge_manifests(inputs: &[(String, String)]) -> Result<String, String> {
    let mut cells_total: Option<(u64, String)> = None;
    let mut rows: BTreeMap<usize, (String, Vec<String>)> = BTreeMap::new();

    for (source, contents) in inputs {
        let mut found = false;
        for line in contents.lines() {
            let Ok(m) = parse_manifest_line(line) else {
                continue;
            };
            if m.get("bin").and_then(Json::as_str) != Some("sweep") {
                continue;
            }
            let total = m
                .get("cells_total")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{source}: sweep manifest lacks cells_total"))?;
            match &cells_total {
                None => cells_total = Some((total, source.clone())),
                Some((t, first)) if *t != total => {
                    return Err(format!(
                        "shards disagree on matrix size: {first} says {t} cells, \
                         {source} says {total} (mixed --only filters or scales?)"
                    ));
                }
                Some(_) => {}
            }
            for table in m.get("tables").and_then(Json::as_arr).unwrap_or(&[]) {
                if table.get("name").and_then(Json::as_str) != Some("cells") {
                    continue;
                }
                found = true;
                for row in table.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
                    let cols: Vec<String> = row
                        .as_arr()
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|c| c.as_str().map(str::to_string))
                        .collect();
                    if cols.len() != CELL_HEADERS.len() {
                        return Err(format!("{source}: malformed cell row {row:?}"));
                    }
                    let idx: usize = cols[COL_CELL]
                        .parse()
                        .map_err(|_| format!("{source}: bad cell index {:?}", cols[COL_CELL]))?;
                    if let Some((prev, _)) = rows.get(&idx) {
                        return Err(format!(
                            "cell {idx} appears in both {prev} and {source} \
                             (overlapping shards?)"
                        ));
                    }
                    rows.insert(idx, (source.clone(), cols));
                }
            }
        }
        if !found {
            return Err(format!("{source}: no sweep manifest line found"));
        }
    }

    let (total, _) = cells_total.ok_or("no shard manifests given")?;
    let missing: Vec<String> = (0..total as usize)
        .filter(|j| !rows.contains_key(j))
        .map(|j| j.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "{} of {total} cells missing (is a shard absent or incomplete?): {}",
            missing.len(),
            missing.join(", ")
        ));
    }
    let merged: Vec<Vec<String>> = rows.into_values().map(|(_, cols)| cols).collect();
    Ok(render_report(&merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_partitions() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.label(), "1/3");
        let selected: Vec<usize> = (0..9).filter(|&j| s.selects(j)).collect();
        assert_eq!(selected, vec![1, 4, 7]);

        // Every cell lands in exactly one shard.
        let shards: Vec<ShardSpec> = (0..3)
            .map(|i| ShardSpec::parse(&format!("{i}/3")).unwrap())
            .collect();
        for j in 0..100 {
            assert_eq!(shards.iter().filter(|s| s.selects(j)).count(), 1);
        }
    }

    #[test]
    fn shard_spec_rejects_malformed() {
        for bad in ["", "1", "2/2", "3/2", "a/b", "0/0", "-1/2", "1/2/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    fn fake_rows(n_workloads: usize, n_cfg: usize) -> Vec<Vec<String>> {
        (0..n_workloads * n_cfg)
            .map(|j| {
                vec![
                    j.to_string(),
                    format!("wl{}", j / n_cfg),
                    format!("cfg{}", j % n_cfg),
                    format!("{:.1}", 50.0 + j as f64),
                    "1.100".to_string(),
                    "2".to_string(),
                    "3".to_string(),
                    "-".to_string(),
                    "clean".to_string(),
                ]
            })
            .collect()
    }

    fn fake_manifest(rows: &[Vec<String>], total: usize, shard: &str) -> String {
        let mut m = vp_trace::Manifest::new("sweep");
        m.set("shard", shard.into());
        m.set("cells_total", (total as u64).into());
        let headers: Vec<String> = CELL_HEADERS.iter().map(|h| (*h).to_string()).collect();
        m.table("cells", &headers, rows);
        m.render()
    }

    #[test]
    fn merge_reproduces_unsharded_report() {
        let rows = fake_rows(3, 2);
        let unsharded = render_report(&rows);

        let (a, b): (Vec<Vec<String>>, Vec<Vec<String>>) = rows
            .iter()
            .cloned()
            .partition(|r| r[0].parse::<usize>().unwrap() % 2 == 0);
        let inputs = vec![
            ("s0".to_string(), fake_manifest(&a, 6, "0/2")),
            ("s1".to_string(), fake_manifest(&b, 6, "1/2")),
        ];
        assert_eq!(merge_manifests(&inputs).unwrap(), unsharded);
    }

    #[test]
    fn merge_detects_missing_and_duplicate_cells() {
        let rows = fake_rows(2, 2);
        let some = rows[..3].to_vec();
        let err =
            merge_manifests(&[("s0".to_string(), fake_manifest(&some, 4, "0/1"))]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        assert!(err.contains('3'), "{err}");

        let inputs = vec![
            ("s0".to_string(), fake_manifest(&rows, 4, "0/2")),
            ("s1".to_string(), fake_manifest(&rows[1..2], 4, "1/2")),
        ];
        let err = merge_manifests(&inputs).unwrap_err();
        assert!(err.contains("cell 1 appears in both"), "{err}");
    }

    #[test]
    fn merge_rejects_mismatched_totals_and_junk() {
        let rows = fake_rows(1, 2);
        let inputs = vec![
            ("s0".to_string(), fake_manifest(&rows, 2, "0/2")),
            ("s1".to_string(), fake_manifest(&rows, 4, "1/2")),
        ];
        assert!(merge_manifests(&inputs).unwrap_err().contains("disagree"));
        assert!(
            merge_manifests(&[("x".to_string(), "not json\n".to_string())])
                .unwrap_err()
                .contains("no sweep manifest")
        );
        assert!(merge_manifests(&[]).unwrap_err().contains("no shard"));
    }

    #[test]
    fn report_averages_come_from_formatted_strings() {
        let rows = fake_rows(2, 2);
        let report = render_report(&rows);
        // cfg0 coverage strings are "50.0" and "52.0" -> mean "51.0".
        assert!(report.contains("51.0"), "{report}");
        assert!(report.lines().any(|l| l.contains("average")), "{report}");
        // Row order is canonical even if input is shuffled.
        let mut shuffled = rows.clone();
        shuffled.reverse();
        assert_eq!(render_report(&shuffled), report);
    }
}
