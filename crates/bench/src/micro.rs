//! A minimal wall-clock benchmark harness for the `benches/` targets.
//!
//! Replaces an external benchmarking crate so the workspace builds with no
//! registry access. Each benchmark is calibrated to a target sample time,
//! run for several samples, and reported as the *best* sample (least noise
//! from scheduling), matching the usual micro-benchmark convention.
//!
//! Knobs:
//!
//! * `VP_BENCH_MS` — target milliseconds per sample (default 100);
//! * `VP_BENCH_SAMPLES` — samples per benchmark (default 5);
//! * a single free CLI argument filters benchmarks by substring (the
//!   `--bench`/`--test` flags cargo passes are ignored).
//!
//! When tracing is on (`VP_TRACE`), every result is also recorded as a
//! `bench.result` event and the whole run can be stamped into a manifest
//! via [`Runner::finish`].

use std::hint::black_box;
use std::time::{Duration, Instant};
use vp_trace::{Manifest, Value};

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Best (minimum) nanoseconds per iteration across samples.
    pub ns_per_iter: f64,
    /// Elements per iteration for throughput reporting, if declared.
    pub elems: Option<u64>,
}

/// Collects and reports benchmark measurements; create with [`runner`].
#[derive(Debug)]
pub struct Runner {
    target: Duration,
    samples: u32,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

/// Creates a [`Runner`] configured from the environment and CLI arguments.
pub fn runner() -> Runner {
    vp_trace::init_from_env();
    let ms = std::env::var("VP_BENCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100u64);
    let samples = std::env::var("VP_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5u32);
    // Cargo invokes bench targets with `--bench`; any other free argument
    // is a name filter.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    Runner {
        target: Duration::from_millis(ms.max(1)),
        samples: samples.max(1),
        filter,
        results: Vec::new(),
    }
}

impl Runner {
    /// Measures `f`, reporting nanoseconds per iteration.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.run(name, None, f);
    }

    /// Measures `f`, additionally reporting `elems`-per-second throughput.
    pub fn bench_throughput<T>(&mut self, name: &str, elems: u64, f: impl FnMut() -> T) {
        self.run(name, Some(elems), f);
    }

    fn run<T>(&mut self, name: &str, elems: Option<u64>, mut f: impl FnMut() -> T) {
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        // Calibrate: double the iteration count until one batch fills a
        // quarter of the target, then size batches to the target.
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target / 4 || iters >= 1 << 30 {
                break elapsed.as_nanos().max(1) as f64 / iters as f64;
            }
            iters *= 2;
        };
        let batch = ((self.target.as_nanos() as f64 / per_iter).ceil() as u64).max(1);

        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
        }

        let mut line = format!(
            "{name:<42} {:>14}/iter  ({batch} iters/sample)",
            fmt_ns(best)
        );
        if let Some(e) = elems {
            line.push_str(&format!("  {:.1} Melem/s", e as f64 * 1e3 / best));
        }
        println!("{line}");
        vp_trace::event(
            "bench.result",
            &[
                ("name", Value::from(name)),
                ("ns_per_iter", Value::from(best)),
                ("iters", Value::from(batch)),
            ],
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            iters: batch,
            ns_per_iter: best,
            elems,
        });
    }

    /// Measurements taken so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Emits a manifest of all measurements (when tracing is on) and
    /// flushes the sink.
    pub fn finish(self, bin: &str) {
        if vp_trace::installed() {
            let mut mf = Manifest::new(bin);
            let headers = [
                "benchmark".to_string(),
                "ns/iter".to_string(),
                "iters".to_string(),
            ];
            let rows: Vec<Vec<String>> = self
                .results
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        format!("{:.1}", r.ns_per_iter),
                        r.iters.to_string(),
                    ]
                })
                .collect();
            mf.table("results", &headers, &rows);
            mf.stamp();
            mf.emit();
        }
        vp_trace::finish();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut r = Runner {
            target: Duration::from_micros(200),
            samples: 2,
            filter: None,
            results: Vec::new(),
        };
        let mut x = 0u64;
        r.bench("spin", || {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(r.results().len(), 1);
        assert!(r.results()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut r = Runner {
            target: Duration::from_micros(200),
            samples: 1,
            filter: Some("other".to_string()),
            results: Vec::new(),
        };
        r.bench("spin", || 1u64);
        assert!(r.results().is_empty());
    }
}
