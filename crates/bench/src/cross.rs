//! Cross-input generalization sweeps: train-on-A / evaluate-on-B cells.
//!
//! The standard sweep trains and evaluates every workload on the same
//! input. This module measures what the paper never did: how well a
//! phase profile *transfers*. For every multi-input benchmark family
//! (130.li, 132.ijpeg, 134.perl — the Table 1 rows with three inputs),
//! each input is evaluated under every family member's profile plus the
//! family's merged profile (`vp_hsd::merge`), giving a
//! (eval input × profile source) matrix per family:
//!
//! * **same** cells (profile == eval input) reproduce the standard
//!   sweep's numbers;
//! * **foreign** cells quantify stale-profile robustness — coverage and
//!   speedup retained when packing with another input's profile;
//! * **merged** cells measure whether the weighted union recovers what
//!   any single foreign profile loses.
//!
//! Every cell runs under the `VP_DIFF` mode of the environment; foreign
//! phases whose branch addresses do not resolve in the evaluation
//! layout are dropped by region identification, so transfer degrades
//! coverage at worst — differential replay still proves the packed
//! binary does the original's architectural work.
//!
//! The `VP_PROFILE_FROM` knob applies the same substitution to the
//! *standard* sweep ([`substitute_profiles`]): `VP_PROFILE_FROM=A`
//! evaluates every family member under input A's profile,
//! `VP_PROFILE_FROM=merged` under the family merge.

use std::collections::{BTreeMap, BTreeSet};
use vacuum_packing::core::PackConfig;
use vacuum_packing::hsd::{MergeConfig, MergedProfile, Phase};
use vacuum_packing::metrics::{
    evaluate, pct, ConfigOutcome, ProfiledWorkload, ResultKey, TextTable,
};
use vacuum_packing::opt::OptConfig;
use vacuum_packing::sim::MachineConfig;
use vacuum_packing::workloads::{suite, Workload};

use crate::cache::{
    active_cache, cell_config_fp, foreign_profile_fp, merged_profile_fp, own_profile_fp,
    workload_trace_fp,
};
use crate::{parallel_sweep_scoped, profile_workloads, scale};

/// Column headers of the generalization table; the `sweep cross`
/// manifest and [`render_cross_report`] both use this exact shape.
pub const CROSS_HEADERS: [&str; 10] = [
    "cell",
    "family",
    "eval",
    "profile",
    "kind",
    "coverage%",
    "speedup",
    "phases",
    "packages",
    "diff",
];

const COL_KIND: usize = 4;
const COL_COVERAGE: usize = 5;
const COL_SPEEDUP: usize = 6;
const COL_DIFF: usize = 9;

/// The profile-source column label of a family's merged profile.
pub const MERGED: &str = "merged";

/// Provenance kind of one generalization cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Profile trained on the evaluation input itself.
    Same,
    /// Profile trained on a sibling input.
    Foreign,
    /// The family's merged profile.
    Merged,
}

impl Kind {
    /// The `kind` column string.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Same => "same",
            Kind::Foreign => "foreign",
            Kind::Merged => "merged",
        }
    }
}

/// One evaluated generalization cell.
#[derive(Debug, Clone)]
pub struct CrossCell {
    /// Dense cell index over the filtered matrix.
    pub cell: usize,
    /// Benchmark family, e.g. `"130.li"`.
    pub family: String,
    /// Input evaluated, e.g. `"A"`.
    pub eval: String,
    /// Profile source: an input name, or [`MERGED`].
    pub profile: String,
    /// Same/foreign/merged provenance.
    pub kind: Kind,
    /// The pipeline outcome under the strongest configuration.
    pub outcome: ConfigOutcome,
}

/// The evaluated matrix plus the formatted rows the manifest carries.
#[derive(Debug)]
pub struct CrossOutcome {
    /// Structured cells in cell order (the dashboard's input).
    pub cells: Vec<CrossCell>,
    /// Formatted rows shaped like [`CROSS_HEADERS`].
    pub rows: Vec<Vec<String>>,
    /// Per-cell telemetry rows shaped like
    /// [`crate::sweep::TELEMETRY_HEADERS`].
    pub telemetry: Vec<Vec<String>>,
    /// Cells answered from the result cache (0 when caching is off).
    pub cache_hits: usize,
    /// Cells evaluated live this run.
    pub cache_misses: usize,
}

/// The suite's multi-input families at the given scale: benchmarks with
/// at least three inputs, in suite order, each with its inputs in suite
/// order.
pub fn families(scale: u32) -> Vec<(String, Vec<Workload>)> {
    let mut order: Vec<String> = Vec::new();
    let mut by_bench: BTreeMap<String, Vec<Workload>> = BTreeMap::new();
    for w in suite(scale) {
        if !by_bench.contains_key(w.bench) {
            order.push(w.bench.to_string());
        }
        by_bench.entry(w.bench.to_string()).or_default().push(w);
    }
    order
        .into_iter()
        .filter_map(|b| {
            let inputs = by_bench.remove(&b)?;
            (inputs.len() >= 3).then_some((b, inputs))
        })
        .collect()
}

/// One (eval, profile) pair of a family's matrix, before evaluation.
#[derive(Debug, Clone)]
struct CellSpec {
    family: String,
    eval_label: String,
    eval_input: String,
    profile: String,
    kind: Kind,
}

/// Enumerates the filtered cell specs in matrix order: families filtered
/// by `only` (substring on the bench name), rows by `eval` (substring on
/// the input or full label), columns by `from` (substring on the profile
/// source, its kind, or — for input columns — the source's full label).
fn cell_specs(only: &[String], eval: &[String], from: &[String]) -> Vec<CellSpec> {
    let hit = |filters: &[String], hay: &[&str]| {
        filters.is_empty()
            || filters
                .iter()
                .any(|f| hay.iter().any(|h| h.contains(f.as_str())))
    };
    let mut specs = Vec::new();
    for (family, inputs) in families(scale()) {
        if !hit(only, &[family.as_str()]) {
            continue;
        }
        let input_names: Vec<String> = inputs.iter().map(|w| w.input.to_string()).collect();
        for w in &inputs {
            let label = w.label();
            if !hit(eval, &[w.input, label.as_str()]) {
                continue;
            }
            let columns = input_names.iter().cloned().chain([MERGED.to_string()]);
            for profile in columns {
                let kind = if profile == MERGED {
                    Kind::Merged
                } else if profile == w.input {
                    Kind::Same
                } else {
                    Kind::Foreign
                };
                let source_label = format!("{family} {profile}");
                if !hit(
                    from,
                    &[profile.as_str(), kind.label(), source_label.as_str()],
                ) {
                    continue;
                }
                specs.push(CellSpec {
                    family: family.clone(),
                    eval_label: label.clone(),
                    eval_input: w.input.to_string(),
                    profile,
                    kind,
                });
            }
        }
    }
    specs
}

/// Evaluates the filtered generalization matrix under the paper's
/// strongest configuration (inf/link), in parallel, one vp-trace scope
/// per cell.
///
/// Profiling covers every input of each selected family (foreign and
/// merged columns need the siblings as sources even when their own rows
/// are filtered out); the merged profile is resolved once per family
/// with [`MergeConfig::from_env`] — `VP_MERGE_WEIGHT` selects the
/// weighting.
///
/// # Panics
///
/// Panics if any profile or evaluation fails (including strict-mode
/// divergences), naming every failing cell.
pub fn cross_cells(
    machine: Option<&MachineConfig>,
    only: &[String],
    eval: &[String],
    from: &[String],
) -> CrossOutcome {
    let _s = vp_trace::span("bench.cross_cells");
    let specs = cell_specs(only, eval, from);
    assert!(
        !specs.is_empty(),
        "no generalization cells match the filters (families need >= 3 inputs)"
    );

    let fams = families(scale());
    let cfg = PackConfig::default();
    let merge_cfg = MergeConfig::from_env();

    // Result-cache probe: each cell's content address folds the
    // evaluated input's trace fingerprint with a per-kind profile
    // fingerprint (own chain / source input's trace / whole-family fold
    // + merge config) — all derivable from workload structure alone.
    let cache = active_cache();
    let mut keys: BTreeMap<usize, ResultKey> = BTreeMap::new();
    let mut cached: BTreeMap<usize, ConfigOutcome> = BTreeMap::new();
    if let Some(rc) = &cache {
        let config_fp = cell_config_fp(&cfg, &OptConfig::default(), machine);
        // input name -> trace fp, per family, inputs in suite order.
        let fam_fps: BTreeMap<&str, Vec<(&str, u64)>> = fams
            .iter()
            .filter(|(b, _)| specs.iter().any(|s| &s.family == b))
            .map(|(b, inputs)| {
                (
                    b.as_str(),
                    inputs
                        .iter()
                        .map(|w| (w.input, workload_trace_fp(w)))
                        .collect(),
                )
            })
            .collect();
        for (i, s) in specs.iter().enumerate() {
            let inputs = &fam_fps[s.family.as_str()];
            let fp_of = |input: &str| {
                inputs
                    .iter()
                    .find(|(inp, _)| *inp == input)
                    .expect("spec input present in family")
                    .1
            };
            let profile_fp = match s.kind {
                Kind::Same => own_profile_fp(),
                Kind::Foreign => foreign_profile_fp(fp_of(&s.profile)),
                Kind::Merged => {
                    let fold: Vec<u64> = inputs.iter().map(|&(_, fp)| fp).collect();
                    merged_profile_fp(&fold, &merge_cfg)
                }
            };
            let key = ResultKey {
                cell: format!("{} {} <- {}", s.family, s.eval_input, s.profile),
                trace_fp: fp_of(&s.eval_input),
                profile_fp,
                config_fp,
            };
            if let Some(out) = rc.load(&key) {
                cached.insert(i, out);
            }
            keys.insert(i, key);
        }
    }

    // Profile every input of every family that still owns a live cell —
    // a family whose selected cells are all cached never profiles.
    let live_fams: BTreeSet<&str> = specs
        .iter()
        .enumerate()
        .filter(|(i, _)| !cached.contains_key(i))
        .map(|(_, s)| s.family.as_str())
        .collect();
    let needed: Vec<Workload> = fams
        .into_iter()
        .filter(|(b, _)| live_fams.contains(b.as_str()))
        .flat_map(|(_, inputs)| inputs)
        .collect();
    let profiled = profile_workloads(needed, machine);
    let by_label: BTreeMap<String, &ProfiledWorkload> =
        profiled.iter().map(|pw| (pw.label.clone(), pw)).collect();

    // One merged profile per family with a live cell, resolved outside
    // the cells so its profile.merge.* counters land in the run manifest
    // exactly once.
    let mut merged: BTreeMap<String, Vec<Phase>> = BTreeMap::new();
    for (i, s) in specs.iter().enumerate() {
        if !cached.contains_key(&i) && !merged.contains_key(&s.family) {
            let family_dumps = profiled
                .iter()
                .filter(|pw| pw.label.starts_with(s.family.as_str()))
                .map(|pw| pw.dump());
            let m = MergedProfile::of(merge_cfg, family_dumps);
            merged.insert(s.family.clone(), m.resolve());
        }
    }
    let jobs: Vec<(String, (usize, CellSpec))> = specs
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            (
                format!("{} {} <- {}", s.family, s.eval_input, s.profile),
                (i, s),
            )
        })
        .collect();
    let results = parallel_sweep_scoped("cross", jobs, |(i, s)| {
        if let Some(out) = cached.get(i) {
            // Cached cell: no profile, replay, or simulation ran.
            let cell = CrossCell {
                cell: *i,
                family: s.family.clone(),
                eval: s.eval_input.clone(),
                profile: s.profile.clone(),
                kind: s.kind,
                outcome: out.clone(),
            };
            return (cell, "hit");
        }
        let pw = by_label[&s.eval_label];
        let outcome = match s.kind {
            Kind::Same => evaluate(pw, &cfg, &OptConfig::default(), machine),
            Kind::Merged => evaluate(
                &pw.with_phases(merged[&s.family].clone(), MERGED),
                &cfg,
                &OptConfig::default(),
                machine,
            ),
            Kind::Foreign => {
                let src = by_label[&format!("{} {}", s.family, s.profile)];
                evaluate(
                    &pw.with_phases(src.phases.clone(), &src.label),
                    &cfg,
                    &OptConfig::default(),
                    machine,
                )
            }
        }
        .unwrap_or_else(|e| panic!("{e}"));
        if let (Some(rc), Some(key)) = (&cache, keys.get(i)) {
            rc.store(key, &outcome);
        }
        let status = if cache.is_some() { "miss" } else { "-" };
        let cell = CrossCell {
            cell: *i,
            family: s.family.clone(),
            eval: s.eval_input.clone(),
            profile: s.profile.clone(),
            kind: s.kind,
            outcome,
        };
        (cell, status)
    });

    let mut cells = Vec::new();
    let mut telemetry = Vec::new();
    for ((c, cache_status), t) in crate::collect_or_report("cross_cells", results) {
        telemetry.push(crate::sweep::telemetry_row(
            &c.cell.to_string(),
            &t,
            cache_status,
        ));
        cells.push(c);
    }
    let rows = cells.iter().map(cross_row).collect();
    let cache_hits = cached.len();
    let cache_misses = if cache.is_some() {
        cells.len() - cache_hits
    } else {
        0
    };
    CrossOutcome {
        cells,
        rows,
        telemetry,
        cache_hits,
        cache_misses,
    }
}

/// Formats one cell as a [`CROSS_HEADERS`] row.
pub fn cross_row(c: &CrossCell) -> Vec<String> {
    vec![
        c.cell.to_string(),
        c.family.clone(),
        c.eval.clone(),
        c.profile.clone(),
        c.kind.label().to_string(),
        pct(c.outcome.coverage),
        c.outcome
            .speedup
            .map_or_else(|| "-".to_string(), |s| format!("{s:.3}")),
        c.outcome.phases.to_string(),
        c.outcome.packages.to_string(),
        c.outcome
            .diff
            .as_ref()
            .map_or_else(|| "-".to_string(), |d| d.verdict.to_string()),
    ]
}

fn mean_of(rows: &[&Vec<String>], col: usize) -> Option<f64> {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r[col].parse().ok()).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Renders the generalization report from formatted rows: the cell
/// table, per-kind coverage/speedup averages, and foreign/merged
/// *retention* relative to the same-input cells. Averages are recomputed
/// from the formatted strings, so re-rendering the same rows is
/// byte-identical — the determinism the subprocess test pins.
pub fn render_cross_report(rows: &[Vec<String>]) -> String {
    let mut sorted: Vec<&Vec<String>> = rows.iter().collect();
    sorted.sort_by_key(|r| r[0].parse::<usize>().unwrap_or(usize::MAX));

    let mut t = TextTable::new(CROSS_HEADERS.to_vec());
    for r in &sorted {
        t.row((*r).clone());
    }

    let of_kind = |kind: &str| -> Vec<&Vec<String>> {
        sorted
            .iter()
            .filter(|r| r[COL_KIND] == kind)
            .copied()
            .collect()
    };
    let fmt =
        |v: Option<f64>, prec: usize| v.map_or_else(|| "-".to_string(), |v| format!("{v:.prec$}"));
    let mut summary = String::new();
    let same_cov = mean_of(&of_kind("same"), COL_COVERAGE);
    let same_spd = mean_of(&of_kind("same"), COL_SPEEDUP);
    for kind in ["same", "foreign", "merged"] {
        let rows_k = of_kind(kind);
        if rows_k.is_empty() {
            continue;
        }
        let cov = mean_of(&rows_k, COL_COVERAGE);
        let spd = mean_of(&rows_k, COL_SPEEDUP);
        let retention = |v: Option<f64>, base: Option<f64>| match (v, base) {
            (Some(v), Some(b)) if b > 0.0 => format!(" ({:.1}% of same)", 100.0 * v / b),
            _ => String::new(),
        };
        summary.push_str(&format!(
            "{kind:>8}: avg coverage {}%{}, avg speedup {}{}\n",
            fmt(cov, 1),
            if kind == "same" {
                String::new()
            } else {
                retention(cov, same_cov)
            },
            fmt(spd, 3),
            if kind == "same" {
                String::new()
            } else {
                retention(spd, same_spd)
            },
        ));
    }

    let diverged = sorted.iter().filter(|r| r[COL_DIFF] == "diverged").count();
    let families: std::collections::BTreeSet<&str> = sorted.iter().map(|r| r[1].as_str()).collect();
    format!(
        "Cross-input generalization: {} families, {} cells, {} divergences\n\n{t}\n{summary}",
        families.len(),
        sorted.len(),
        diverged
    )
}

/// Applies a `VP_PROFILE_FROM` substitution to a profiled workload set:
/// every workload whose benchmark family has the named sibling input is
/// re-evaluated under that sibling's profile (`spec` = the input name,
/// e.g. `"A"`), or under the family's merged profile (`spec = "merged"`).
/// Workloads without a matching sibling — single-input benchmarks, or
/// the named input itself — pass through unchanged.
///
/// Sources are profiled on demand (served from the trace store when
/// warm) and shared across the set.
///
/// # Panics
///
/// Panics if a named source input exists for no family in the set —
/// a typo'd `VP_PROFILE_FROM` silently measuring the same-input matrix
/// would defeat the knob's purpose.
pub fn substitute_profiles(
    pws: Vec<ProfiledWorkload>,
    spec: &str,
    machine: Option<&MachineConfig>,
) -> Vec<ProfiledWorkload> {
    let _s = vp_trace::span("bench.substitute_profiles");
    let fams: BTreeMap<String, Vec<Workload>> = families(scale()).into_iter().collect();
    let family_of = |label: &str| -> Option<&str> {
        fams.keys()
            .find(|b| label.starts_with(b.as_str()))
            .map(String::as_str)
    };

    // Which families need which sources.
    let mut needed: BTreeMap<String, Vec<Workload>> = BTreeMap::new();
    let mut applies = false;
    for pw in &pws {
        let Some(fam) = family_of(&pw.label) else {
            continue;
        };
        let inputs = &fams[fam];
        if spec == MERGED {
            applies = true;
            needed.entry(fam.to_string()).or_insert_with(|| {
                suite(scale())
                    .into_iter()
                    .filter(|w| w.bench == fam)
                    .collect()
            });
        } else if inputs.iter().any(|w| w.input == spec) {
            applies = true;
            if format!("{fam} {spec}") != pw.label {
                needed.entry(fam.to_string()).or_insert_with(|| {
                    suite(scale())
                        .into_iter()
                        .filter(|w| w.bench == fam && w.input == spec)
                        .collect()
                });
            }
        }
    }
    assert!(
        applies,
        "VP_PROFILE_FROM={spec:?} matches no multi-input family in this sweep \
         (expected an input name like \"A\" or \"merged\")"
    );

    let sources: Vec<Workload> = needed.into_values().flatten().collect();
    let source_profiles = profile_workloads(sources, machine);
    let by_label: BTreeMap<String, &ProfiledWorkload> = source_profiles
        .iter()
        .map(|pw| (pw.label.clone(), pw))
        .collect();
    let merge_cfg = MergeConfig::from_env();
    let mut merged: BTreeMap<String, Vec<Phase>> = BTreeMap::new();
    if spec == MERGED {
        for fam in fams.keys() {
            let dumps: Vec<_> = source_profiles
                .iter()
                .filter(|pw| pw.label.starts_with(fam.as_str()))
                .map(|pw| pw.dump())
                .collect();
            if !dumps.is_empty() {
                merged.insert(fam.clone(), MergedProfile::of(merge_cfg, dumps).resolve());
            }
        }
    }

    pws.into_iter()
        .map(|pw| {
            let Some(fam) = family_of(&pw.label) else {
                return pw;
            };
            if spec == MERGED {
                match merged.get(fam) {
                    Some(phases) => pw.with_phases(phases.clone(), MERGED),
                    None => pw,
                }
            } else {
                let source_label = format!("{fam} {spec}");
                if source_label == pw.label {
                    return pw; // its own profile: the same-input cell
                }
                match by_label.get(&source_label) {
                    Some(src) => pw.with_phases(src.phases.clone(), &source_label),
                    None => pw,
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_the_three_input_rows() {
        let f = families(1);
        let names: Vec<&str> = f.iter().map(|(b, _)| b.as_str()).collect();
        assert_eq!(names, vec!["130.li", "132.ijpeg", "134.perl"]);
        for (b, inputs) in &f {
            assert_eq!(inputs.len(), 3, "{b}");
            let letters: Vec<&str> = inputs.iter().map(|w| w.input).collect();
            assert_eq!(letters, vec!["A", "B", "C"], "{b}");
        }
    }

    #[test]
    fn cell_specs_cover_the_full_matrix() {
        let specs = cell_specs(&[], &[], &[]);
        // 3 families x 3 eval inputs x (3 sources + merged).
        assert_eq!(specs.len(), 36);
        let same = specs.iter().filter(|s| s.kind == Kind::Same).count();
        let foreign = specs.iter().filter(|s| s.kind == Kind::Foreign).count();
        let merged = specs.iter().filter(|s| s.kind == Kind::Merged).count();
        assert_eq!((same, foreign, merged), (9, 18, 9));
    }

    #[test]
    fn cell_spec_filters_compose() {
        let one = cell_specs(
            &["130.li".to_string()],
            &["B".to_string()],
            &["A".to_string()],
        );
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].family, "130.li");
        assert_eq!(one[0].eval_input, "B");
        assert_eq!(one[0].profile, "A");
        assert_eq!(one[0].kind, Kind::Foreign);

        let merged_col = cell_specs(&[], &[], &[MERGED.to_string()]);
        assert_eq!(merged_col.len(), 9);
        assert!(merged_col.iter().all(|s| s.kind == Kind::Merged));
    }

    fn fake_rows() -> Vec<Vec<String>> {
        let mk = |cell: usize, kind: &str, cov: &str, spd: &str| {
            vec![
                cell.to_string(),
                "130.li".to_string(),
                "A".to_string(),
                "A".to_string(),
                kind.to_string(),
                cov.to_string(),
                spd.to_string(),
                "2".to_string(),
                "2".to_string(),
                "clean".to_string(),
            ]
        };
        vec![
            mk(0, "same", "90.0", "1.100"),
            mk(1, "foreign", "45.0", "1.050"),
            mk(2, "merged", "81.0", "1.080"),
        ]
    }

    #[test]
    fn cross_report_computes_retention_from_formatted_strings() {
        let report = render_cross_report(&fake_rows());
        assert!(report.contains("same: avg coverage 90.0%"), "{report}");
        assert!(
            report.contains("foreign: avg coverage 45.0% (50.0% of same)"),
            "{report}"
        );
        assert!(
            report.contains("merged: avg coverage 81.0% (90.0% of same)"),
            "{report}"
        );
        assert!(
            report.contains("1 families, 3 cells, 0 divergences"),
            "{report}"
        );

        // Canonical row order: shuffling the input changes nothing.
        let mut shuffled = fake_rows();
        shuffled.reverse();
        assert_eq!(render_cross_report(&shuffled), report);
    }
}
