//! Offline phase-timeline dashboard: self-contained HTML/SVG with no
//! external resources.
//!
//! The `dashboard` binary renders, for each requested workload, a phase
//! timeline (when each filtered phase was detected, on the retired-branch
//! axis) over a package-residency Gantt chart (which package the packed
//! run lived in, on the retired-event axis), plus a coverage heatmap over
//! the evaluation matrix, a span-tree flame view of the harness's own
//! cost, and a throughput trend over the committed `BENCH_*.json`
//! baselines. Everything is plain inline SVG + CSS — the output opens
//! from a file:// URL with the network cable unplugged.
//!
//! All collection goes through the capture/replay layer: the original
//! run is profiled once through [`TraceStore`], the packed run
//! is captured under its `TraceKey::packed` key, and the residency lanes
//! come from replaying that capture into a
//! [`vacuum_packing::metrics::ResidencySink`].

use vacuum_packing::core::{pack, PackConfig};
use vacuum_packing::exec::{ExecError, RunConfig, TraceKey, TraceStore};
use vacuum_packing::hsd::{FilterConfig, HsdConfig};
use vacuum_packing::metrics::{
    phase_timeline, profile, PhaseMark, ResidencyInterval, ResidencySink,
};
use vacuum_packing::program::Layout;
use vacuum_packing::workloads::Workload;

/// Everything needed to draw one workload's row of the dashboard.
#[derive(Debug)]
pub struct WorkloadTimeline {
    /// Workload label, e.g. `"300.twolf A"`.
    pub label: String,
    /// Phase detections in detection order on the retired-branch axis.
    pub phases: Vec<PhaseMark>,
    /// Total branches retired by the original run (phase-axis length).
    pub branches_total: u64,
    /// Package-residency intervals of the packed run, in stream order.
    pub intervals: Vec<ResidencyInterval>,
    /// Total retired events of the packed run (residency-axis length).
    pub events_total: u64,
    /// Number of packages the pack built (one Gantt lane each).
    pub packages: usize,
}

/// Profiles `w`, packs it under `cfg`, and replays the packed capture
/// into residency intervals — the dashboard's per-workload data model.
///
/// # Errors
///
/// Propagates [`ExecError`] from the profiling or measurement run.
pub fn collect_timeline(w: &Workload, cfg: &PackConfig) -> Result<WorkloadTimeline, ExecError> {
    let _s = vp_trace::span("dashboard.collect");
    let label = w.label();
    let pw = profile(&label, w.program.clone(), &HsdConfig::table2(), None)?;
    let (phases, branches_total) =
        phase_timeline(&pw.trace, &HsdConfig::table2(), &FilterConfig::default());

    let out = pack(&pw.program, &pw.layout, &pw.phases, cfg);
    let packed_layout = Layout::natural(&out.program);
    let run_cfg = RunConfig::default();
    let key = TraceKey::packed(
        &label,
        &out.program,
        &packed_layout,
        &run_cfg,
        out.fingerprint(),
    );
    let mut sink = ResidencySink::new(out.identity_map());
    TraceStore::global().capture_or_replay_shared(
        key,
        &out.program,
        &packed_layout,
        &run_cfg,
        &mut sink,
    )?;
    let events_total = sink.events();
    let intervals = sink.finish();
    Ok(WorkloadTimeline {
        label,
        phases,
        branches_total,
        intervals,
        events_total,
        packages: out.packages.len(),
    })
}

/// Escapes `s` for use in XML/HTML text and attribute values.
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// A small qualitative palette, cycled by index.
fn color(i: usize) -> &'static str {
    const PALETTE: [&str; 8] = [
        "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
    ];
    PALETTE[i % PALETTE.len()]
}

const SVG_W: f64 = 960.0;
const GUTTER: f64 = 120.0;
const LANE_H: f64 = 18.0;
const LANE_GAP: f64 = 6.0;
const PHASE_STRIP_H: f64 = 22.0;

/// Renders one workload's phase timeline + package-residency Gantt as a
/// standalone `<svg>` element. Exactly one `class="pkg-lane"` group is
/// emitted per package, plus one `class="orig-lane"` group for unpacked
/// stretches.
pub fn render_timeline_svg(t: &WorkloadTimeline) -> String {
    let plot_w = SVG_W - GUTTER - 10.0;
    let lanes = t.packages + 1; // lane 0 = original code
    let gantt_top = PHASE_STRIP_H + 18.0;
    let height = gantt_top + lanes as f64 * (LANE_H + LANE_GAP) + 24.0;
    let mut s = String::new();
    s.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" class="timeline" viewBox="0 0 {SVG_W} {height}" width="{SVG_W}" height="{height}">"#
    ));
    s.push_str(&format!(
        r#"<text x="0" y="12" class="svg-title">{}</text>"#,
        xml_escape(&t.label)
    ));

    // Phase strip: one tick per detection, colored by filtered phase id,
    // on the retired-branch axis.
    let bx = |at: u64| GUTTER + plot_w * (at as f64 / t.branches_total.max(1) as f64);
    s.push_str(&format!(
        r#"<text x="{GUTTER}" y="{}" text-anchor="end" class="lane-label">phases&#160;</text>"#,
        PHASE_STRIP_H + 8.0
    ));
    for m in &t.phases {
        s.push_str(&format!(
            r#"<rect class="phase-mark" x="{:.1}" y="{}" width="2.5" height="{}" fill="{}"><title>phase {} @ branch {}</title></rect>"#,
            bx(m.at_branch),
            6.0,
            PHASE_STRIP_H - 4.0,
            color(m.phase),
            m.phase,
            m.at_branch
        ));
    }

    // Gantt lanes on the retired-event axis: lane 0 is original code,
    // lane k+1 is package k. Each package's intervals live inside its
    // own <g class="pkg-lane"> group.
    let ex = |e: u64| GUTTER + plot_w * (e as f64 / t.events_total.max(1) as f64);
    let lane_y = |lane: usize| gantt_top + lane as f64 * (LANE_H + LANE_GAP);
    let rects_for = |pkg: Option<u32>, fill: &str| {
        let lane = pkg.map_or(0, |p| p as usize + 1);
        let y = lane_y(lane);
        let mut r = String::new();
        for iv in t.intervals.iter().filter(|iv| iv.package == pkg) {
            let x0 = ex(iv.start);
            let w = (ex(iv.end) - x0).max(0.5);
            r.push_str(&format!(
                r#"<rect x="{x0:.1}" y="{y:.1}" width="{w:.1}" height="{LANE_H}" fill="{fill}"><title>events {}..{} ({})</title></rect>"#,
                iv.start,
                iv.end,
                iv.len()
            ));
        }
        r
    };

    s.push_str(r#"<g class="orig-lane">"#);
    s.push_str(&format!(
        r#"<text x="{GUTTER}" y="{:.1}" text-anchor="end" class="lane-label">original&#160;</text>"#,
        lane_y(0) + LANE_H - 5.0
    ));
    s.push_str(&rects_for(None, "#c7c7c7"));
    s.push_str("</g>");
    for k in 0..t.packages {
        s.push_str(&format!(r#"<g class="pkg-lane" data-package="{k}">"#));
        s.push_str(&format!(
            r#"<text x="{GUTTER}" y="{:.1}" text-anchor="end" class="lane-label">package {k}&#160;</text>"#,
            lane_y(k + 1) + LANE_H - 5.0
        ));
        s.push_str(&rects_for(Some(k as u32), color(k)));
        s.push_str("</g>");
    }

    s.push_str(&format!(
        r#"<text x="{GUTTER}" y="{:.1}" class="axis-note">0 .. {} retired events (packed run); {} branches (phase axis)</text>"#,
        height - 8.0,
        t.events_total,
        t.branches_total
    ));
    s.push_str("</svg>");
    s
}

/// Renders a labeled-rows × labeled-cols heatmap of fractions in `[0, 1]`
/// (the Figure 8 coverage matrix) as a standalone `<svg>` element.
pub fn render_heatmap_svg(rows: &[(String, Vec<f64>)], cols: &[&str]) -> String {
    let cell_w = 120.0;
    let cell_h = 24.0;
    let top = 40.0;
    let width = GUTTER + cols.len() as f64 * cell_w + 10.0;
    let height = top + rows.len() as f64 * cell_h + 10.0;
    let mut s = String::new();
    s.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" class="heatmap" viewBox="0 0 {width} {height}" width="{width}" height="{height}">"#
    ));
    for (c, name) in cols.iter().enumerate() {
        s.push_str(&format!(
            r#"<text x="{:.1}" y="{}" text-anchor="middle" class="col-label">{}</text>"#,
            GUTTER + (c as f64 + 0.5) * cell_w,
            top - 8.0,
            xml_escape(name)
        ));
    }
    for (r, (label, vals)) in rows.iter().enumerate() {
        let y = top + r as f64 * cell_h;
        s.push_str(&format!(
            r#"<text x="{GUTTER}" y="{:.1}" text-anchor="end" class="lane-label">{}&#160;</text>"#,
            y + cell_h - 8.0,
            xml_escape(label)
        ));
        for (c, v) in vals.iter().enumerate() {
            let v = v.clamp(0.0, 1.0);
            // White → saturated green ramp.
            let chan = |base: f64| (255.0 - v * (255.0 - base)).round() as u32;
            let fill = format!(
                "#{:02x}{:02x}{:02x}",
                chan(0x2e as f64),
                chan(0x7d as f64),
                chan(0x32 as f64)
            );
            let x = GUTTER + c as f64 * cell_w;
            s.push_str(&format!(
                r#"<rect class="heat-cell" x="{x:.1}" y="{y:.1}" width="{cell_w}" height="{cell_h}" fill="{fill}"/>"#
            ));
            s.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" class="cell-label" fill="{}">{:.1}%</text>"#,
                x + cell_w / 2.0,
                y + cell_h - 8.0,
                if v > 0.55 { "#ffffff" } else { "#1a1a1a" },
                v * 100.0
            ));
        }
    }
    s.push_str("</svg>");
    s
}

/// Folds evaluated generalization cells ([`crate::cross::cross_cells`])
/// into heatmap shape: one row per evaluated input (`"family eval"`),
/// one column per profile source in matrix order (inputs first, then
/// `merged`), cell value = packaged-instruction coverage. Returns
/// `(rows, column labels)` ready for [`render_heatmap_svg`].
pub fn generalization_heatmap(
    cells: &[crate::cross::CrossCell],
) -> (Vec<(String, Vec<f64>)>, Vec<String>) {
    let mut cols: Vec<String> = Vec::new();
    for c in cells {
        if !cols.contains(&c.profile) {
            cols.push(c.profile.clone());
        }
    }
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for c in cells {
        let label = format!("{} {}", c.family, c.eval);
        if !rows.iter().any(|(l, _)| *l == label) {
            rows.push((label.clone(), vec![0.0; cols.len()]));
        }
        let row = rows.iter_mut().find(|(l, _)| *l == label).unwrap();
        let col = cols.iter().position(|p| *p == c.profile).unwrap();
        row.1[col] = c.outcome.coverage;
    }
    (rows, cols)
}

/// Renders the aggregated span tree as an icicle-style flame view: one
/// bar per [`vp_trace::SpanNode`], indented by depth, width proportional
/// to its share of total root wall time.
pub fn render_flame_svg(nodes: &[vp_trace::SpanNode]) -> String {
    let bar_h = 20.0;
    let gap = 3.0;
    let top = 10.0;
    let height = top + nodes.len().max(1) as f64 * (bar_h + gap) + 10.0;
    let root_total: u64 = nodes.iter().filter(|n| n.depth == 0).map(|n| n.nanos).sum();
    let scale = SVG_W - GUTTER - 10.0;
    let mut s = String::new();
    s.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" class="flame" viewBox="0 0 {SVG_W} {height}" width="{SVG_W}" height="{height}">"#
    ));
    if nodes.is_empty() {
        s.push_str(r#"<text x="10" y="24" class="axis-note">no spans recorded</text>"#);
    }
    for (i, n) in nodes.iter().enumerate() {
        let y = top + i as f64 * (bar_h + gap);
        let frac = if root_total == 0 {
            0.0
        } else {
            n.nanos as f64 / root_total as f64
        };
        let x = GUTTER + n.depth as f64 * 14.0;
        let w = (frac * (scale - n.depth as f64 * 14.0)).max(1.0);
        s.push_str(&format!(
            r#"<rect class="flame-bar" x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{bar_h}" fill="{}"><title>{}: {} x, {:.3} ms ({:.1}%)</title></rect>"#,
            color(n.depth),
            xml_escape(&n.path),
            n.count,
            n.nanos as f64 / 1e6,
            frac * 100.0
        ));
        s.push_str(&format!(
            r#"<text x="{GUTTER}" y="{:.1}" text-anchor="end" class="lane-label">{}&#160;</text>"#,
            y + bar_h - 6.0,
            xml_escape(&n.name)
        ));
        s.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" class="cell-label">{:.2} ms ({} x)</text>"#,
            x + w + 6.0,
            y + bar_h - 6.0,
            n.nanos as f64 / 1e6,
            n.count
        ));
    }
    s.push_str("</svg>");
    s
}

/// Loads the replay-throughput trend from committed `BENCH_*.json`
/// baselines in `dir`, ordered by PR number: `(file stem, batched replay
/// events/sec)`. Files that fail to parse are skipped.
pub fn load_bench_trend(dir: &std::path::Path) -> Vec<(String, f64)> {
    let mut found: Vec<(u64, String, f64)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(j) = vp_trace::Json::parse(&text) else {
            continue;
        };
        let Some(eps) = j
            .get("events_per_sec")
            .and_then(|e| e.get("replay_batched"))
            .and_then(vp_trace::Json::as_f64)
        else {
            continue;
        };
        found.push((num, format!("BENCH_{num}"), eps));
    }
    found.sort_by_key(|(num, _, _)| *num);
    found.into_iter().map(|(_, l, v)| (l, v)).collect()
}

/// Renders the throughput trend (batched replay events/sec per committed
/// baseline) as a standalone `<svg>` line chart.
pub fn render_trend_svg(points: &[(String, f64)]) -> String {
    let height = 180.0;
    let top = 16.0;
    let bottom = height - 28.0;
    let plot_w = SVG_W - GUTTER - 20.0;
    let mut s = String::new();
    s.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" class="trend" viewBox="0 0 {SVG_W} {height}" width="{SVG_W}" height="{height}">"#
    ));
    if points.is_empty() {
        s.push_str(
            r#"<text x="10" y="24" class="axis-note">no BENCH_*.json baselines found</text>"#,
        );
        s.push_str("</svg>");
        return s;
    }
    let max = points.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let px = |i: usize| {
        GUTTER
            + if points.len() == 1 {
                plot_w / 2.0
            } else {
                plot_w * i as f64 / (points.len() - 1) as f64
            }
    };
    let py = |v: f64| bottom - (bottom - top) * (v / max.max(1.0));
    let path: Vec<String> = points
        .iter()
        .enumerate()
        .map(|(i, (_, v))| format!("{:.1},{:.1}", px(i), py(*v)))
        .collect();
    s.push_str(&format!(
        r#"<polyline class="trend-line" points="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
        path.join(" "),
        color(0)
    ));
    for (i, (label, v)) in points.iter().enumerate() {
        s.push_str(&format!(
            r#"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="{}"><title>{}: {:.2}M events/s</title></circle>"#,
            px(i),
            py(*v),
            color(0),
            xml_escape(label),
            v / 1e6
        ));
        s.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" class="cell-label">{}</text>"#,
            px(i),
            height - 10.0,
            xml_escape(label)
        ));
        s.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" class="cell-label">{:.1}M/s</text>"#,
            px(i),
            py(*v) - 8.0,
            v / 1e6
        ));
    }
    s.push_str(&format!(
        r#"<text x="{GUTTER}" y="{top}" text-anchor="end" class="lane-label">batched replay&#160;</text>"#
    ));
    s.push_str("</svg>");
    s
}

/// One warehouse-sourced metric series for the cross-run trend table:
/// a sparkline row with changepoint markers.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct HistorySeries {
    /// Row label: `"<bin> <metric>"`.
    pub label: String,
    /// `(run label, value)` per warehoused run, oldest first.
    pub points: Vec<(String, f64)>,
    /// Indices into `points` flagged by [`crate::history::changepoints`].
    pub marks: Vec<usize>,
}

/// At most this many sparkline rows render; the section notes how many
/// series were dropped when the warehouse tracks more.
pub const MAX_HISTORY_ROWS: usize = 16;

/// Folds warehoused run records into per-`(bin, metric)` sparkline
/// series: run duration first, then every derived metric, then raw
/// counters — each kept only when at least two runs carry it, so
/// one-off fields don't produce flat single-point rows.
pub fn load_history_series(records: &[crate::history::RunRecord]) -> Vec<HistorySeries> {
    use std::collections::BTreeMap;
    let mut recs: Vec<&crate::history::RunRecord> = records.iter().collect();
    recs.sort_by_key(|r| r.ts);
    // (bin, rank, name) -> points; rank orders duration < metrics < counters.
    let mut series: BTreeMap<(String, u8, String), Vec<(String, f64)>> = BTreeMap::new();
    for r in &recs {
        let run = if r.label.is_empty() {
            format!("ts{}", r.ts)
        } else {
            r.label.clone()
        };
        let mut push = |rank: u8, name: &str, v: f64| {
            series
                .entry((r.bin.clone(), rank, name.to_string()))
                .or_default()
                .push((run.clone(), v));
        };
        if let Some(ms) = r.duration_ms {
            push(0, "duration_ms", ms);
        }
        for (name, v) in &r.metrics {
            push(1, name, *v);
        }
        for (name, v) in &r.counters {
            push(2, name, *v as f64);
        }
    }
    series
        .into_iter()
        .filter(|(_, pts)| pts.len() >= 2)
        .map(|((bin, _, name), points)| {
            let values: Vec<f64> = points.iter().map(|(_, v)| *v).collect();
            HistorySeries {
                label: format!("{bin} {name}"),
                marks: crate::history::changepoints(&values),
                points,
            }
        })
        .collect()
}

/// Renders one series as an inline sparkline `<svg>`: a normalized
/// polyline with red circles on changepoint runs.
pub fn render_sparkline_svg(s: &HistorySeries) -> String {
    let (w, h, pad) = (160.0, 26.0, 3.0);
    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" class="spark" viewBox="0 0 {w} {h}" width="{w}" height="{h}">"#
    );
    let values: Vec<f64> = s.points.iter().map(|(_, v)| *v).collect();
    let (min, max) = values
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(*v), hi.max(*v)));
    let span = (max - min).max(f64::EPSILON);
    let px = |i: usize| {
        pad + if values.len() == 1 {
            (w - 2.0 * pad) / 2.0
        } else {
            (w - 2.0 * pad) * i as f64 / (values.len() - 1) as f64
        }
    };
    let py = |v: f64| h - pad - (h - 2.0 * pad) * ((v - min) / span);
    let path: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| format!("{:.1},{:.1}", px(i), py(*v)))
        .collect();
    svg.push_str(&format!(
        r#"<polyline class="spark-line" points="{}" fill="none" stroke="{}" stroke-width="1.5"/>"#,
        path.join(" "),
        color(0)
    ));
    for &i in &s.marks {
        if let Some((label, v)) = s.points.get(i) {
            svg.push_str(&format!(
                r##"<circle class="spark-mark" cx="{:.1}" cy="{:.1}" r="2.5" fill="#c0392b"><title>changepoint at {}: {v}</title></circle>"##,
                px(i),
                py(*v),
                xml_escape(label),
            ));
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Renders the cross-run trend table: one sparkline row per tracked
/// series, latest value, delta vs the previous run, and changepoint
/// count. Series beyond [`MAX_HISTORY_ROWS`] are dropped with a note.
pub fn render_history_html(series: &[HistorySeries]) -> String {
    let mut h = String::new();
    let shown = &series[..series.len().min(MAX_HISTORY_ROWS)];
    h.push_str(
        "<table>\n<tr><th>series</th><th>trend</th><th>runs</th>\
         <th>latest</th><th>&#916; vs prev</th><th>changepoints</th></tr>\n",
    );
    for s in shown {
        let n = s.points.len();
        let latest = s.points.last().map_or(0.0, |(_, v)| *v);
        let delta = if n >= 2 {
            let prev = s.points[n - 2].1;
            if prev.abs() > f64::EPSILON {
                format!("{:+.1}%", (latest / prev - 1.0) * 100.0)
            } else {
                "—".to_string()
            }
        } else {
            "—".to_string()
        };
        h.push_str(&format!(
            "<tr><td class=\"series\">{}</td><td>{}</td><td>{n}</td>\
             <td>{latest:.4}</td><td>{delta}</td><td>{}</td></tr>\n",
            xml_escape(&s.label),
            render_sparkline_svg(s),
            s.marks.len(),
        ));
    }
    h.push_str("</table>\n");
    if series.len() > shown.len() {
        h.push_str(&format!(
            "<p class=\"note\">{} more series tracked in the warehouse; \
             narrow with <code>sweep history series</code>.</p>\n",
            series.len() - shown.len()
        ));
    }
    h
}

/// All sections of a rendered dashboard.
#[derive(Debug, Default)]
pub struct Dashboard {
    /// One timeline per requested workload.
    pub timelines: Vec<WorkloadTimeline>,
    /// `(workload label, coverage per config)` heatmap rows.
    pub heatmap: Vec<(String, Vec<f64>)>,
    /// Cross-input generalization heatmap rows (`"family eval"`, coverage
    /// per profile column) — empty when no multi-input family was
    /// selected, which hides the section.
    pub generalization: Vec<(String, Vec<f64>)>,
    /// Column labels of `generalization` (input names, then `merged`).
    pub generalization_cols: Vec<String>,
    /// The harness's own span tree (`vp_trace::tree_snapshot`).
    pub flame: Vec<vp_trace::SpanNode>,
    /// Work-stealing scheduler totals for this process
    /// ([`crate::sched_manifest_value`]) — `None` when every stage ran
    /// sequentially, which hides the table.
    pub sched: Option<vp_trace::Json>,
    /// `(baseline label, batched replay events/sec)` trend points.
    pub trend: Vec<(String, f64)>,
    /// Warehouse-sourced cross-run series ([`load_history_series`]) —
    /// empty when `VP_HISTORY_DIR` is unset, which hides the section.
    pub history: Vec<HistorySeries>,
}

/// Renders the scheduler-telemetry table from the `sweep` manifest
/// object: worker count, task/steal totals, and per-worker utilization
/// of the wall time the parallel stages spanned.
pub fn render_sched_html(sched: &vp_trace::Json) -> String {
    let num = |key: &str| sched.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let mut h = String::new();
    h.push_str(&format!(
        "<p class=\"note\">Work-stealing sweep scheduler: {} workers ran {} tasks across \
         {} parallel stages in {:.0} ms of scheduler wall time; {} steals.</p>\n",
        num("jobs"),
        num("tasks"),
        num("runs"),
        num("wall_ms"),
        num("steals"),
    ));
    h.push_str("<table>\n<tr><th>worker</th><th>executed</th><th>stolen</th><th>busy ms</th><th>utilization</th></tr>\n");
    for (i, w) in sched
        .get("workers")
        .and_then(|v| v.as_arr())
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let f = |key: &str| w.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        h.push_str(&format!(
            "<tr><td>{i}</td><td>{}</td><td>{}</td><td>{:.0}</td><td>{:.0}%</td></tr>\n",
            f("executed"),
            f("stolen"),
            f("busy_ms"),
            f("utilization") * 100.0,
        ));
    }
    h.push_str("</table>\n");
    h
}

/// Assembles the self-contained dashboard HTML: inline CSS, inline SVG,
/// zero external requests.
pub fn render_dashboard_html(d: &Dashboard) -> String {
    let mut h = String::new();
    h.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    h.push_str("<title>vacuum-packing dashboard</title>\n<style>\n");
    h.push_str(
        "body{font:14px/1.5 -apple-system,system-ui,sans-serif;margin:24px auto;max-width:1000px;color:#1a1a1a}\n\
         h1{font-size:22px} h2{font-size:17px;margin-top:32px;border-bottom:1px solid #ddd;padding-bottom:4px}\n\
         svg{display:block;margin:12px 0}\n\
         .svg-title{font-size:13px;font-weight:600}\n\
         .lane-label,.col-label,.axis-note,.cell-label{font-size:10px;fill:#444}\n\
         .phase-mark:hover,.heat-cell:hover,.flame-bar:hover{opacity:.7}\n\
         p.note{color:#555}\n\
         table{border-collapse:collapse;margin:12px 0}\n\
         th,td{border:1px solid #ddd;padding:3px 8px;font-size:12px;text-align:right}\n\
         th{background:#f5f5f5}\n\
         svg.spark{display:inline-block;margin:0;vertical-align:middle}\n\
         td.series{text-align:left;font-family:ui-monospace,monospace}\n",
    );
    h.push_str("</style>\n</head>\n<body>\n<h1>vacuum-packing dashboard</h1>\n");
    h.push_str(
        "<p class=\"note\">Rendered offline by <code>cargo run -p bench --bin dashboard</code>; \
         all data comes from capture/replay — no workload executes more than once per key, \
         and this page loads no external resources.</p>\n",
    );

    h.push_str("<h2>Phase timelines &amp; package residency</h2>\n");
    h.push_str(
        "<p class=\"note\">Top strip: hot-spot detections colored by filtered phase, on the \
         retired-branch axis of the original run. Lanes: which package (or original code) the \
         packed run's retired stream was resident in, one lane per package.</p>\n",
    );
    for t in &d.timelines {
        h.push_str(&render_timeline_svg(t));
        h.push('\n');
    }

    h.push_str("<h2>Coverage heatmap</h2>\n");
    h.push_str(
        "<p class=\"note\">Packaged-instruction coverage per (workload, configuration) — \
         the Figure 8 matrix.</p>\n",
    );
    h.push_str(&render_heatmap_svg(&d.heatmap, &crate::CONFIG_LABELS));
    h.push('\n');

    if !d.generalization.is_empty() {
        h.push_str("<h2>Cross-input generalization</h2>\n");
        h.push_str(
            "<p class=\"note\">Coverage per (evaluated input, profile source) under the \
             strongest configuration: the diagonal is the same-input baseline, off-diagonal \
             columns pack with a sibling input's profile, and the <code>merged</code> column \
             uses the family's weighted profile union (<code>vp_hsd::merge</code>). See \
             EXPERIMENTS.md &quot;Cross-input generalization&quot;.</p>\n",
        );
        let cols: Vec<&str> = d.generalization_cols.iter().map(String::as_str).collect();
        h.push_str(&render_heatmap_svg(&d.generalization, &cols));
        h.push('\n');
    }

    h.push_str("<h2>Harness self-profile (span tree)</h2>\n");
    h.push_str(
        "<p class=\"note\">Where the dashboard run itself spent its time: the hierarchical \
         span tree, indented by nesting depth, bar width proportional to share of root wall \
         time.</p>\n",
    );
    h.push_str(&render_flame_svg(&d.flame));
    h.push('\n');
    if let Some(sched) = &d.sched {
        h.push_str(&render_sched_html(sched));
    }

    h.push_str("<h2>Replay throughput trend</h2>\n");
    h.push_str(
        "<p class=\"note\">Batched replay events/sec from the committed \
         <code>BENCH_*.json</code> baselines, in PR order.</p>\n",
    );
    h.push_str(&render_trend_svg(&d.trend));
    h.push('\n');

    if !d.history.is_empty() {
        h.push_str("<h2>Cross-run history trends</h2>\n");
        h.push_str(
            "<p class=\"note\">Sparklines from the <code>VP_HISTORY_DIR</code> run-history \
             warehouse, one row per tracked counter/metric, oldest run on the left. Red dots \
             mark changepoints: runs outside the median&#177;3&#183;MAD band of the window \
             before them (<code>bench::history::changepoints</code>).</p>\n",
        );
        h.push_str(&render_history_html(&d.history));
    }
    h.push_str("</body>\n</html>\n");
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_timeline() -> WorkloadTimeline {
        WorkloadTimeline {
            label: "synthetic W".to_string(),
            phases: vec![
                PhaseMark {
                    at_branch: 10,
                    phase: 0,
                },
                PhaseMark {
                    at_branch: 60,
                    phase: 1,
                },
            ],
            branches_total: 100,
            intervals: vec![
                ResidencyInterval {
                    start: 0,
                    end: 40,
                    package: Some(0),
                },
                ResidencyInterval {
                    start: 40,
                    end: 55,
                    package: None,
                },
                ResidencyInterval {
                    start: 55,
                    end: 90,
                    package: Some(1),
                },
            ],
            events_total: 90,
            packages: 2,
        }
    }

    #[test]
    fn timeline_svg_has_one_lane_per_package() {
        let t = synthetic_timeline();
        let svg = render_timeline_svg(&t);
        assert_eq!(svg.matches(r#"class="pkg-lane""#).count(), t.packages);
        assert_eq!(svg.matches(r#"class="orig-lane""#).count(), 1);
        assert_eq!(svg.matches(r#"class="phase-mark""#).count(), t.phases.len());
    }

    #[test]
    fn timeline_svg_escapes_labels() {
        let mut t = synthetic_timeline();
        t.label = "a<b>&\"c\"".to_string();
        let svg = render_timeline_svg(&t);
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(!svg.contains("a<b>"));
    }

    #[test]
    fn heatmap_svg_covers_every_cell() {
        let rows = vec![
            ("w1".to_string(), vec![0.1, 0.9]),
            ("w2".to_string(), vec![0.5, 1.0]),
        ];
        let svg = render_heatmap_svg(&rows, &["cfgA", "cfgB"]);
        assert_eq!(svg.matches(r#"class="heat-cell""#).count(), 4);
        assert!(svg.contains("cfgA") && svg.contains("cfgB"));
        assert!(svg.contains("100.0%"));
    }

    #[test]
    fn flame_svg_renders_one_bar_per_node() {
        let nodes = vec![
            vp_trace::SpanNode {
                path: "root".to_string(),
                name: "root".to_string(),
                depth: 0,
                count: 1,
                nanos: 10_000_000,
            },
            vp_trace::SpanNode {
                path: "root/child".to_string(),
                name: "child".to_string(),
                depth: 1,
                count: 3,
                nanos: 4_000_000,
            },
        ];
        let svg = render_flame_svg(&nodes);
        assert_eq!(svg.matches(r#"class="flame-bar""#).count(), 2);
        assert!(svg.contains("root/child"), "tooltip carries the full path");
    }

    #[test]
    fn trend_svg_handles_empty_and_plots_points() {
        assert!(render_trend_svg(&[]).contains("no BENCH_"));
        let svg = render_trend_svg(&[
            ("BENCH_5".to_string(), 100e6),
            ("BENCH_6".to_string(), 120e6),
        ]);
        assert!(svg.contains("polyline"));
        assert!(svg.contains("BENCH_5") && svg.contains("BENCH_6"));
    }

    #[test]
    fn bench_trend_reads_and_orders_baselines() {
        let dir = std::env::temp_dir().join(format!("vp-dash-trend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_10.json"),
            r#"{"schema":"vp-bench/1","events_per_sec":{"replay_batched":2.5e8}}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_5.json"),
            r#"{"schema":"vp-bench/1","events_per_sec":{"replay_batched":1.5e8}}"#,
        )
        .unwrap();
        std::fs::write(dir.join("BENCH_bad.json"), "not json").unwrap();
        std::fs::write(dir.join("README.md"), "ignored").unwrap();
        let trend = load_bench_trend(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            trend,
            vec![
                ("BENCH_5".to_string(), 1.5e8),
                ("BENCH_10".to_string(), 2.5e8)
            ],
            "numeric order, parse failures skipped"
        );
    }

    /// A `sweep` manifest object like [`crate::sched_manifest_value`]
    /// produces: 4 workers, one of them fed entirely by steals.
    fn synthetic_sched() -> vp_trace::Json {
        vp_trace::Json::parse(
            r#"{"jobs":4,"runs":2,"tasks":12,"steals":3,"wall_ms":80.0,
                "workers":[{"executed":5,"stolen":0,"busy_ms":70.0,"utilization":0.875},
                           {"executed":3,"stolen":3,"busy_ms":60.0,"utilization":0.75}]}"#,
        )
        .expect("synthetic sched json")
    }

    #[test]
    fn sched_table_reports_per_worker_utilization() {
        let html = render_sched_html(&synthetic_sched());
        assert!(html.contains("12 tasks"));
        assert!(html.contains("3 steals"));
        assert!(html.contains("<td>88%</td>"), "{html}");
        assert!(html.contains("<td>75%</td>"), "{html}");
    }

    #[test]
    fn dashboard_html_is_self_contained() {
        let d = Dashboard {
            timelines: vec![synthetic_timeline()],
            heatmap: vec![("w".to_string(), vec![0.5, 0.6, 0.7, 0.8])],
            generalization: vec![("130.li A".to_string(), vec![0.9, 0.0, 0.9])],
            generalization_cols: vec!["A".to_string(), "B".to_string(), "merged".to_string()],
            flame: Vec::new(),
            sched: Some(synthetic_sched()),
            trend: vec![("BENCH_5".to_string(), 1e8)],
            history: vec![HistorySeries {
                label: "sweep events_total".to_string(),
                points: vec![
                    ("r1".to_string(), 100.0),
                    ("r2".to_string(), 102.0),
                    ("r3".to_string(), 250.0),
                ],
                marks: vec![2],
            }],
        };
        let html = render_dashboard_html(&d);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains(r#"class="pkg-lane""#));
        assert!(html.contains("Cross-input generalization"));
        assert!(html.contains("Cross-run history trends"));
        assert!(
            html.contains(r#"class="spark-mark""#),
            "changepoint marker must render in the sparkline"
        );
        assert!(
            html.contains("Work-stealing sweep scheduler: 4 workers"),
            "scheduler telemetry table must render when sched totals exist"
        );
        assert!(html.contains("<th>utilization</th>"));
        for needle in ["<script src", "<link", "https://", "fetch("] {
            assert!(
                !html.contains(needle),
                "self-contained page must not reference external resources: {needle}"
            );
        }
    }

    #[test]
    fn generalization_section_hides_when_empty() {
        let html = render_dashboard_html(&Dashboard::default());
        assert!(!html.contains("Cross-input generalization"));
        assert!(!html.contains("Cross-run history trends"));
    }

    #[test]
    fn history_series_fold_orders_runs_and_skips_single_points() {
        use crate::history::RunRecord;
        let rec = |ts: u64, label: &str, eps: f64| {
            let mut r = RunRecord {
                ts,
                bin: "sweep".to_string(),
                label: label.to_string(),
                duration_ms: Some(10.0 * ts as f64),
                ..RunRecord::default()
            };
            r.metrics.insert("eps".to_string(), eps);
            r
        };
        let mut records = vec![rec(2, "b", 2e6), rec(1, "a", 1e6)];
        // A field only one run carries must not become a row.
        records[0].counters.insert("once".to_string(), 7);
        let series = load_history_series(&records);
        let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["sweep duration_ms", "sweep eps"]);
        assert_eq!(
            series[1].points,
            vec![("a".to_string(), 1e6), ("b".to_string(), 2e6)],
            "points must be oldest-first regardless of input order"
        );
    }

    #[test]
    fn history_table_caps_rows_and_reports_delta() {
        let s = |i: usize| HistorySeries {
            label: format!("bin m{i}"),
            points: vec![("a".to_string(), 100.0), ("b".to_string(), 150.0)],
            marks: Vec::new(),
        };
        let many: Vec<_> = (0..MAX_HISTORY_ROWS + 3).map(s).collect();
        let html = render_history_html(&many);
        assert!(html.contains("+50.0%"));
        assert!(html.contains("3 more series tracked"));
        assert!(!html.contains(&format!("bin m{}", MAX_HISTORY_ROWS + 1)));
    }

    #[test]
    fn generalization_heatmap_folds_cells_into_matrix_shape() {
        use vacuum_packing::metrics::ConfigOutcome;
        let cell =
            |family: &str, eval: &str, profile: &str, kind, coverage| crate::cross::CrossCell {
                cell: 0,
                family: family.to_string(),
                eval: eval.to_string(),
                profile: profile.to_string(),
                kind,
                outcome: ConfigOutcome {
                    coverage,
                    ..ConfigOutcome::default()
                },
            };
        use crate::cross::Kind;
        let cells = vec![
            cell("130.li", "A", "A", Kind::Same, 0.95),
            cell("130.li", "A", "B", Kind::Foreign, 0.10),
            cell("130.li", "A", "merged", Kind::Merged, 0.95),
            cell("130.li", "B", "A", Kind::Foreign, 0.20),
            cell("130.li", "B", "B", Kind::Same, 0.90),
            cell("130.li", "B", "merged", Kind::Merged, 0.90),
        ];
        let (rows, cols) = generalization_heatmap(&cells);
        assert_eq!(cols, vec!["A", "B", "merged"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "130.li A");
        assert_eq!(rows[0].1, vec![0.95, 0.10, 0.95]);
        assert_eq!(rows[1].1, vec![0.20, 0.90, 0.90]);
    }
}
