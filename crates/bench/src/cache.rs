//! Result-cache key plumbing for the sweep and cross binaries.
//!
//! The [`vacuum_packing::metrics::ResultCache`] memoizes per-cell
//! [`vacuum_packing::metrics::ConfigOutcome`]s; this module derives the
//! three fingerprints of its key from what a cell is *about to* do —
//! before any profiling or replay happens, which is what lets a workload
//! whose every selected cell is already cached skip profiling entirely.
//!
//! The sweep and cross drivers obtain the cache through
//! [`active_cache`], which additionally disables caching under
//! `VP_PROFILE_FROM`: that knob substitutes profiles *after* the cells
//! are planned, so the planned `profile_fp` would not describe what
//! actually drove the pack.

use vacuum_packing::core::PackConfig;
use vacuum_packing::exec::diff::DiffMode;
use vacuum_packing::exec::{RunConfig, TraceKey};
use vacuum_packing::hsd::{FilterConfig, HsdConfig, MergeConfig};
use vacuum_packing::isa::Fnv;
use vacuum_packing::metrics::{ResultCache, ResultKey};
use vacuum_packing::opt::OptConfig;
use vacuum_packing::program::Layout;
use vacuum_packing::sim::MachineConfig;
use vacuum_packing::workloads::Workload;

/// The result cache from `VP_RESULT_DIR`, or `None` when disabled —
/// including under `VP_PROFILE_FROM`, whose profile substitution happens
/// downstream of cell planning and would make every planned key a lie.
pub(crate) fn active_cache() -> Option<ResultCache> {
    if std::env::var("VP_PROFILE_FROM").is_ok_and(|s| !s.trim().is_empty()) {
        return None;
    }
    ResultCache::from_env()
}

/// The trace fingerprint a workload's profile run would use: the
/// structural [`TraceKey`] over the natural layout under the default
/// run limits — exactly what [`vacuum_packing::metrics::profile`]
/// captures or replays.
pub(crate) fn workload_trace_fp(wl: &Workload) -> u64 {
    let layout = Layout::natural(&wl.program);
    let key = TraceKey::new(&wl.label(), &wl.program, &layout, &RunConfig::default());
    ResultKey::trace_fingerprint(&key)
}

/// Profile fingerprint of an own-profile cell: the detector and filter
/// configurations the sweep profiles with. The driving trace is the
/// cell's own (already in the key's `trace_fp`).
pub(crate) fn own_profile_fp() -> u64 {
    let mut h = Fnv::new();
    h.write_str("profile:own");
    h.write_u64(HsdConfig::table2().fingerprint());
    h.write_u64(FilterConfig::default().fingerprint());
    h.finish()
}

/// Profile fingerprint of a cross-input cell: phases detected on
/// `src_trace_fp`'s run applied to another input of the same benchmark.
pub(crate) fn foreign_profile_fp(src_trace_fp: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_str("profile:foreign");
    h.write_u64(src_trace_fp);
    h.write_u64(HsdConfig::table2().fingerprint());
    h.write_u64(FilterConfig::default().fingerprint());
    h.finish()
}

/// Profile fingerprint of a merged-profile cell: the family's input
/// traces folded in suite order, plus the merge algebra's configuration.
pub(crate) fn merged_profile_fp(family_trace_fps: &[u64], merge: &MergeConfig) -> u64 {
    let mut h = Fnv::new();
    h.write_str("profile:merged");
    h.write_usize(family_trace_fps.len());
    for &fp in family_trace_fps {
        h.write_u64(fp);
    }
    h.write_u64(HsdConfig::table2().fingerprint());
    h.write_u64(FilterConfig::default().fingerprint());
    h.write_u64(merge.fingerprint());
    h.finish()
}

/// Configuration fingerprint of one cell: every knob that steers the
/// pack/optimize/time/diff pipeline after the profile is fixed.
pub(crate) fn cell_config_fp(
    pack: &PackConfig,
    opt: &OptConfig,
    machine: Option<&MachineConfig>,
) -> u64 {
    let mut h = Fnv::new();
    h.write_str("config");
    h.write_u64(pack.fingerprint());
    h.write_u64(opt.fingerprint());
    match machine {
        Some(m) => {
            h.write_bool(true);
            h.write_u64(m.fingerprint());
        }
        None => h.write_bool(false),
    }
    h.write_u64(match DiffMode::from_env() {
        DiffMode::Off => 0,
        DiffMode::Report => 1,
        DiffMode::Strict => 2,
    });
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_fp_separates_every_knob() {
        let base = cell_config_fp(
            &PackConfig::default(),
            &OptConfig::default(),
            Some(&MachineConfig::table2()),
        );
        let no_inf = cell_config_fp(
            &PackConfig {
                inference: false,
                ..PackConfig::default()
            },
            &OptConfig::default(),
            Some(&MachineConfig::table2()),
        );
        assert_ne!(base, no_inf);
        let full_opt = cell_config_fp(
            &PackConfig::default(),
            &OptConfig::full(),
            Some(&MachineConfig::table2()),
        );
        assert_ne!(base, full_opt);
        let untimed = cell_config_fp(&PackConfig::default(), &OptConfig::default(), None);
        assert_ne!(base, untimed);
        let wider = MachineConfig {
            issue_width: 4,
            ..MachineConfig::table2()
        };
        assert_ne!(
            base,
            cell_config_fp(&PackConfig::default(), &OptConfig::default(), Some(&wider))
        );
    }

    #[test]
    fn profile_fps_are_domain_separated() {
        let own = own_profile_fp();
        let foreign = foreign_profile_fp(0);
        let merged = merged_profile_fp(&[], &MergeConfig::default());
        assert_ne!(own, foreign);
        assert_ne!(own, merged);
        assert_ne!(foreign, merged);
        assert_ne!(foreign_profile_fp(1), foreign_profile_fp(2));
        assert_ne!(
            merged_profile_fp(&[1, 2], &MergeConfig::default()),
            merged_profile_fp(&[2, 1], &MergeConfig::default()),
            "family fold order participates"
        );
    }
}
