//! Regression attribution between two `vp-manifest` runs.
//!
//! `manifest-diff OLD NEW` loads one manifest line from each file
//! (`vp-manifest/2`, or legacy `/1`), aligns their stamped span,
//! counter, and histogram aggregates by name, and reports what moved —
//! so a slowdown shows up attributed to the stage that regressed rather
//! than as one opaque wall-time number. The worst span regression gates
//! CI: the binary exits non-zero when it exceeds the threshold.
//!
//! Two gating modes share the reporting above:
//!
//! * **single-baseline** (the original): a span fails when it moved more
//!   than `max_pct` against the one old manifest;
//! * **history-aware** (`--history DIR`): a span fails when it lands
//!   above the tolerance band of its last-K warehoused runs — median +
//!   max(3·MAD, `max_pct`) (see [`crate::history`]). One noisy baseline
//!   sample no longer decides the verdict; spans without enough history
//!   fall back to the single-baseline rule.

use crate::history::{Band, RunRecord, GATE_K, GATE_LAST_K, GATE_MIN_SAMPLES};
use std::collections::BTreeMap;
use vp_trace::Json;

/// Spans faster than this on the old side are not gated: percentage
/// movement on sub-millisecond stages is noise, not regression.
pub const MIN_GATED_SPAN_MS: f64 = 1.0;

/// One span's movement between the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// Span name (flat aggregate key).
    pub name: String,
    /// Total milliseconds in the old run (`None` if the span is new).
    pub old_ms: Option<f64>,
    /// Total milliseconds in the new run (`None` if the span vanished).
    pub new_ms: Option<f64>,
}

impl SpanDelta {
    /// Percent change new-vs-old, when both sides exist and the old side
    /// is big enough to gate on. Positive = regression.
    pub fn gated_pct(&self) -> Option<f64> {
        match (self.old_ms, self.new_ms) {
            (Some(old), Some(new)) if old >= MIN_GATED_SPAN_MS => Some((new - old) / old * 100.0),
            _ => None,
        }
    }
}

/// One counter's movement between the two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Old total (0 if absent).
    pub old: u64,
    /// New total (0 if absent).
    pub new: u64,
}

/// One histogram's movement between the two runs, summarized by count
/// and mean.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDelta {
    /// Histogram name.
    pub name: String,
    /// `(count, mean, p50)` in the old run.
    pub old: (u64, f64, u64),
    /// `(count, mean, p50)` in the new run.
    pub new: (u64, f64, u64),
}

/// The aligned difference between two manifest runs.
#[derive(Debug, Clone, Default)]
pub struct ManifestDiff {
    /// `bin` fields of the two manifests.
    pub bins: (String, String),
    /// `duration_ms` of each side, when stamped (v2 manifests).
    pub duration_ms: (Option<f64>, Option<f64>),
    /// Every span present on either side, sorted by name.
    pub spans: Vec<SpanDelta>,
    /// Counters whose totals differ, sorted by name.
    pub counters: Vec<CounterDelta>,
    /// Histograms present on either side whose summary moved, sorted by
    /// name.
    pub histograms: Vec<HistDelta>,
}

fn named_ms(j: &Json, section: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(pairs)) = j.get(section) {
        for (name, v) in pairs {
            if let Some(ms) = v.get("ms").and_then(Json::as_f64) {
                out.insert(name.clone(), ms);
            }
        }
    }
    out
}

fn named_u64(j: &Json, section: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(pairs)) = j.get(section) {
        for (name, v) in pairs {
            if let Some(n) = v.as_u64() {
                out.insert(name.clone(), n);
            }
        }
    }
    out
}

fn hist_summary(v: &Json) -> (u64, f64, u64) {
    let count = v.get("count").and_then(Json::as_u64).unwrap_or(0);
    let sum = v.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
    let p50 = v.get("p50").and_then(Json::as_u64).unwrap_or(0);
    let mean = if count == 0 { 0.0 } else { sum / count as f64 };
    (count, mean, p50)
}

/// Aligns two parsed manifests (see [`vp_trace::parse_manifest_line`])
/// into a [`ManifestDiff`].
pub fn diff_manifests(old: &Json, new: &Json) -> ManifestDiff {
    let bin = |j: &Json| {
        j.get("bin")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let dur = |j: &Json| j.get("duration_ms").and_then(Json::as_f64);

    let (old_spans, new_spans) = (named_ms(old, "spans"), named_ms(new, "spans"));
    let mut span_names: Vec<&String> = old_spans.keys().chain(new_spans.keys()).collect();
    span_names.sort();
    span_names.dedup();
    let spans = span_names
        .into_iter()
        .map(|name| SpanDelta {
            name: name.clone(),
            old_ms: old_spans.get(name).copied(),
            new_ms: new_spans.get(name).copied(),
        })
        .collect();

    let (old_c, new_c) = (named_u64(old, "counters"), named_u64(new, "counters"));
    let mut counter_names: Vec<&String> = old_c.keys().chain(new_c.keys()).collect();
    counter_names.sort();
    counter_names.dedup();
    let counters = counter_names
        .into_iter()
        .filter_map(|name| {
            let (o, n) = (
                old_c.get(name).copied().unwrap_or(0),
                new_c.get(name).copied().unwrap_or(0),
            );
            (o != n).then(|| CounterDelta {
                name: name.clone(),
                old: o,
                new: n,
            })
        })
        .collect();

    let hists = |j: &Json| -> BTreeMap<String, (u64, f64, u64)> {
        let mut out = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = j.get("histograms") {
            for (name, v) in pairs {
                out.insert(name.clone(), hist_summary(v));
            }
        }
        out
    };
    let (old_h, new_h) = (hists(old), hists(new));
    let mut hist_names: Vec<&String> = old_h.keys().chain(new_h.keys()).collect();
    hist_names.sort();
    hist_names.dedup();
    let histograms = hist_names
        .into_iter()
        .filter_map(|name| {
            let o = old_h.get(name).copied().unwrap_or((0, 0.0, 0));
            let n = new_h.get(name).copied().unwrap_or((0, 0.0, 0));
            (o != n).then(|| HistDelta {
                name: name.clone(),
                old: o,
                new: n,
            })
        })
        .collect();

    ManifestDiff {
        bins: (bin(old), bin(new)),
        duration_ms: (dur(old), dur(new)),
        spans,
        counters,
        histograms,
    }
}

impl ManifestDiff {
    /// The largest gated span regression in percent (0 when nothing
    /// regressed). Only spans at least [`MIN_GATED_SPAN_MS`] on the old
    /// side participate.
    pub fn worst_span_regression_pct(&self) -> f64 {
        self.spans
            .iter()
            .filter_map(SpanDelta::gated_pct)
            .fold(0.0, f64::max)
    }

    /// Span-gate failure descriptions under the history-aware rule.
    ///
    /// Each span on the new side is judged against its tolerance band in
    /// `bands` when one exists (`new > band.ceil` fails; bands whose
    /// median is below [`MIN_GATED_SPAN_MS`] never gate), and against
    /// the single-baseline `max_pct` rule otherwise. Returns one line
    /// per failing span; empty means the gate passes.
    pub fn gate_failures(&self, bands: &BTreeMap<String, Band>, max_pct: f64) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.spans {
            let Some(new) = s.new_ms else { continue };
            match bands.get(&s.name) {
                Some(band) if band.median >= MIN_GATED_SPAN_MS => {
                    let ceil = band.ceil(GATE_K, max_pct / 100.0);
                    if new > ceil {
                        out.push(format!(
                            "span {} = {new:.3} ms exceeds history band ceil {ceil:.3} ms \
                             (median {:.3} ms, MAD {:.3}, n={})",
                            s.name, band.median, band.mad, band.n
                        ));
                    }
                }
                Some(_) => {}
                None => {
                    if let Some(pct) = s.gated_pct() {
                        if pct > max_pct {
                            out.push(format!(
                                "span {} regressed {pct:+.1}% vs the old manifest \
                                 (gate {max_pct:.0}%, no history band)",
                                s.name
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Renders the diff as a plain-text report, spans sorted worst
    /// regression first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "manifest-diff: {} -> {}\n",
            self.bins.0, self.bins.1
        ));
        if let (Some(o), Some(n)) = self.duration_ms {
            out.push_str(&format!(
                "run duration: {o:.1} ms -> {n:.1} ms ({:+.1}%)\n",
                (n - o) / o.max(1e-9) * 100.0
            ));
        }

        let mut spans: Vec<&SpanDelta> = self.spans.iter().collect();
        spans.sort_by(|a, b| {
            b.gated_pct()
                .unwrap_or(f64::MIN)
                .total_cmp(&a.gated_pct().unwrap_or(f64::MIN))
        });
        out.push_str("\nspans (worst regression first):\n");
        if spans.is_empty() {
            out.push_str("  (none on either side)\n");
        }
        for s in spans {
            let fmt = |v: Option<f64>| v.map_or("-".to_string(), |ms| format!("{ms:.3} ms"));
            let tag = match (s.gated_pct(), s.old_ms, s.new_ms) {
                (Some(pct), _, _) => format!("{pct:+.1}%"),
                (None, Some(_), Some(_)) => "below gate".to_string(),
                (None, None, _) => "added".to_string(),
                (None, _, None) => "removed".to_string(),
            };
            out.push_str(&format!(
                "  {:<44} {:>14} -> {:>14}  {}\n",
                s.name,
                fmt(s.old_ms),
                fmt(s.new_ms),
                tag
            ));
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters (changed):\n");
            for c in &self.counters {
                let delta = c.new as i128 - c.old as i128;
                out.push_str(&format!(
                    "  {:<44} {:>14} -> {:>14}  ({delta:+})\n",
                    c.name, c.old, c.new
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms (changed):\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<44} count {} -> {}, mean {:.1} -> {:.1}, p50 {} -> {}\n",
                    h.name, h.old.0, h.new.0, h.old.1, h.new.1, h.old.2, h.new.2
                ));
            }
        }
        out
    }
}

/// Builds per-span tolerance bands from warehoused runs of `bin`.
///
/// Each span seen across the filtered records contributes its last
/// [`GATE_LAST_K`] values; spans with fewer than [`GATE_MIN_SAMPLES`]
/// samples get no band (the diff falls back to single-baseline gating
/// for them).
pub fn history_span_bands(records: &[RunRecord], bin: &str) -> BTreeMap<String, Band> {
    let mut series: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for rec in records.iter().filter(|r| r.bin == bin) {
        for (name, &ms) in &rec.spans {
            series.entry(name.clone()).or_default().push(ms);
        }
    }
    series
        .into_iter()
        .filter_map(|(name, values)| {
            if values.len() < GATE_MIN_SAMPLES {
                return None;
            }
            let tail = &values[values.len().saturating_sub(GATE_LAST_K)..];
            crate::history::band(tail).map(|b| (name, b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(spans: &[(&str, f64)], counters: &[(&str, u64)]) -> Json {
        let mut line = String::from(r#"{"t":"manifest","schema":"vp-manifest/2","bin":"sweep""#);
        line.push_str(r#","duration_ms":100.0,"spans":{"#);
        line.push_str(
            &spans
                .iter()
                .map(|(n, ms)| format!(r#""{n}":{{"count":1,"ms":{ms}}}"#))
                .collect::<Vec<_>>()
                .join(","),
        );
        line.push_str(r#"},"counters":{"#);
        line.push_str(
            &counters
                .iter()
                .map(|(n, v)| format!(r#""{n}":{v}"#))
                .collect::<Vec<_>>()
                .join(","),
        );
        line.push_str("}}");
        vp_trace::parse_manifest_line(&line).unwrap()
    }

    #[test]
    fn clean_diff_has_no_regression() {
        let old = manifest(&[("pack", 10.0), ("measure", 50.0)], &[("hits", 4)]);
        let new = manifest(&[("pack", 10.2), ("measure", 49.0)], &[("hits", 4)]);
        let d = diff_manifests(&old, &new);
        assert!(d.worst_span_regression_pct() < 25.0);
        assert!(d.counters.is_empty(), "unchanged counters are not listed");
    }

    #[test]
    fn injected_span_regression_is_attributed() {
        let old = manifest(&[("pack", 10.0), ("measure", 50.0)], &[]);
        let new = manifest(&[("pack", 10.0), ("measure", 100.0)], &[]);
        let d = diff_manifests(&old, &new);
        let worst = d.worst_span_regression_pct();
        assert!((worst - 100.0).abs() < 1e-9, "worst = {worst}");
        let report = d.render();
        let measure_at = report.find("measure").unwrap();
        let pack_at = report.find("pack").unwrap();
        assert!(
            measure_at < pack_at,
            "regressed span sorts first:\n{report}"
        );
        assert!(report.contains("+100.0%"), "{report}");
    }

    #[test]
    fn sub_millisecond_spans_do_not_gate() {
        let old = manifest(&[("tiny", 0.01)], &[]);
        let new = manifest(&[("tiny", 0.09)], &[]);
        let d = diff_manifests(&old, &new);
        assert_eq!(d.worst_span_regression_pct(), 0.0);
        assert!(d.render().contains("below gate"));
    }

    #[test]
    fn added_and_removed_spans_are_listed_not_gated() {
        let old = manifest(&[("gone", 30.0)], &[]);
        let new = manifest(&[("fresh", 30.0)], &[]);
        let d = diff_manifests(&old, &new);
        assert_eq!(d.worst_span_regression_pct(), 0.0);
        let report = d.render();
        assert!(
            report.contains("added") && report.contains("removed"),
            "{report}"
        );
    }

    #[test]
    fn counter_and_duration_movement_is_reported() {
        let old = manifest(&[], &[("trace_store.hits", 10), ("same", 1)]);
        let new = manifest(&[], &[("trace_store.hits", 4), ("same", 1)]);
        let d = diff_manifests(&old, &new);
        assert_eq!(
            d.counters,
            vec![CounterDelta {
                name: "trace_store.hits".to_string(),
                old: 10,
                new: 4
            }]
        );
        assert!(d.render().contains("(-6)"));
    }

    #[test]
    fn histogram_mean_shift_is_reported() {
        let mk = |sum: u64| {
            let line = format!(
                r#"{{"t":"manifest","schema":"vp-manifest/2","bin":"x","histograms":{{"h":{{"count":4,"sum":{sum},"min":1,"max":9,"p50":2,"p99":9,"buckets":[[1,4]]}}}}}}"#
            );
            vp_trace::parse_manifest_line(&line).unwrap()
        };
        let d = diff_manifests(&mk(8), &mk(80));
        assert_eq!(d.histograms.len(), 1);
        assert_eq!(d.histograms[0].old.1, 2.0);
        assert_eq!(d.histograms[0].new.1, 20.0);
    }

    fn history_recs(span: &str, values: &[f64]) -> Vec<RunRecord> {
        values
            .iter()
            .enumerate()
            .map(|(i, &ms)| {
                let mut r = RunRecord {
                    ts: i as u64,
                    bin: "sweep".into(),
                    label: format!("run{i}"),
                    ..RunRecord::default()
                };
                r.spans.insert(span.to_string(), ms);
                r
            })
            .collect()
    }

    #[test]
    fn history_band_tolerates_spread_the_single_baseline_would_gate() {
        // History: the span bounces between 40 and 60 ms run to run. A
        // single-baseline diff of a lucky 40 against an unlucky 58 gates
        // at 25% (+45%); the history band knows that spread is normal.
        let recs = history_recs("measure", &[50.0, 40.0, 60.0, 45.0, 55.0]);
        let bands = history_span_bands(&recs, "sweep");
        let old = manifest(&[("measure", 40.0)], &[]);
        let new = manifest(&[("measure", 58.0)], &[]);
        let d = diff_manifests(&old, &new);
        assert!(d.worst_span_regression_pct() > 25.0, "baseline rule fires");
        assert!(
            d.gate_failures(&bands, 25.0).is_empty(),
            "history band absorbs normal spread"
        );
        // A genuine blowup still fails against the band.
        let blown = manifest(&[("measure", 200.0)], &[]);
        let d = diff_manifests(&old, &blown);
        let failures = d.gate_failures(&bands, 25.0);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("history band"), "{failures:?}");
    }

    #[test]
    fn spans_without_history_fall_back_to_single_baseline() {
        let bands = history_span_bands(&history_recs("other", &[1.0, 1.0, 1.0]), "sweep");
        let old = manifest(&[("measure", 50.0)], &[]);
        let new = manifest(&[("measure", 100.0)], &[]);
        let d = diff_manifests(&old, &new);
        let failures = d.gate_failures(&bands, 25.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("no history band"), "{failures:?}");
        // And with no bands at all, behaves exactly like the old gate.
        let none = BTreeMap::new();
        assert_eq!(d.gate_failures(&none, 25.0).len(), 1);
        assert!(d.gate_failures(&none, 150.0).is_empty());
    }

    #[test]
    fn history_bands_require_min_samples_and_matching_bin() {
        let thin = history_span_bands(&history_recs("measure", &[50.0, 51.0]), "sweep");
        assert!(thin.is_empty(), "two samples are not enough");
        let other_bin = history_span_bands(&history_recs("measure", &[50.0; 5]), "report");
        assert!(other_bin.is_empty(), "bands are per-bin");
        // Sub-millisecond spans never gate even with a band.
        let tiny = history_span_bands(&history_recs("tiny", &[0.01, 0.01, 0.01]), "sweep");
        let old = manifest(&[("tiny", 0.01)], &[]);
        let new = manifest(&[("tiny", 0.9)], &[]);
        let d = diff_manifests(&old, &new);
        assert!(d.gate_failures(&tiny, 25.0).is_empty());
    }

    #[test]
    fn legacy_v1_manifests_diff_without_duration() {
        let legacy = vp_trace::parse_manifest_line(
            r#"{"t":"manifest","schema":"vp-manifest/1","bin":"sweep","spans":{"pack":{"count":1,"ms":5.0}}}"#,
        )
        .unwrap();
        let d = diff_manifests(&legacy, &legacy);
        assert_eq!(d.duration_ms, (None, None));
        assert_eq!(d.worst_span_regression_pct(), 0.0);
    }
}
