//! Regression attribution between two `vp-manifest` runs.
//!
//! `manifest-diff OLD NEW` loads one manifest line from each file
//! (`vp-manifest/2`, or legacy `/1`), aligns their stamped span,
//! counter, and histogram aggregates by name, and reports what moved —
//! so a slowdown shows up attributed to the stage that regressed rather
//! than as one opaque wall-time number. The worst span regression gates
//! CI: the binary exits non-zero when it exceeds the threshold.

use std::collections::BTreeMap;
use vp_trace::Json;

/// Spans faster than this on the old side are not gated: percentage
/// movement on sub-millisecond stages is noise, not regression.
pub const MIN_GATED_SPAN_MS: f64 = 1.0;

/// One span's movement between the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// Span name (flat aggregate key).
    pub name: String,
    /// Total milliseconds in the old run (`None` if the span is new).
    pub old_ms: Option<f64>,
    /// Total milliseconds in the new run (`None` if the span vanished).
    pub new_ms: Option<f64>,
}

impl SpanDelta {
    /// Percent change new-vs-old, when both sides exist and the old side
    /// is big enough to gate on. Positive = regression.
    pub fn gated_pct(&self) -> Option<f64> {
        match (self.old_ms, self.new_ms) {
            (Some(old), Some(new)) if old >= MIN_GATED_SPAN_MS => Some((new - old) / old * 100.0),
            _ => None,
        }
    }
}

/// One counter's movement between the two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Old total (0 if absent).
    pub old: u64,
    /// New total (0 if absent).
    pub new: u64,
}

/// One histogram's movement between the two runs, summarized by count
/// and mean.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDelta {
    /// Histogram name.
    pub name: String,
    /// `(count, mean, p50)` in the old run.
    pub old: (u64, f64, u64),
    /// `(count, mean, p50)` in the new run.
    pub new: (u64, f64, u64),
}

/// The aligned difference between two manifest runs.
#[derive(Debug, Clone, Default)]
pub struct ManifestDiff {
    /// `bin` fields of the two manifests.
    pub bins: (String, String),
    /// `duration_ms` of each side, when stamped (v2 manifests).
    pub duration_ms: (Option<f64>, Option<f64>),
    /// Every span present on either side, sorted by name.
    pub spans: Vec<SpanDelta>,
    /// Counters whose totals differ, sorted by name.
    pub counters: Vec<CounterDelta>,
    /// Histograms present on either side whose summary moved, sorted by
    /// name.
    pub histograms: Vec<HistDelta>,
}

fn named_ms(j: &Json, section: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(pairs)) = j.get(section) {
        for (name, v) in pairs {
            if let Some(ms) = v.get("ms").and_then(Json::as_f64) {
                out.insert(name.clone(), ms);
            }
        }
    }
    out
}

fn named_u64(j: &Json, section: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(pairs)) = j.get(section) {
        for (name, v) in pairs {
            if let Some(n) = v.as_u64() {
                out.insert(name.clone(), n);
            }
        }
    }
    out
}

fn hist_summary(v: &Json) -> (u64, f64, u64) {
    let count = v.get("count").and_then(Json::as_u64).unwrap_or(0);
    let sum = v.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
    let p50 = v.get("p50").and_then(Json::as_u64).unwrap_or(0);
    let mean = if count == 0 { 0.0 } else { sum / count as f64 };
    (count, mean, p50)
}

/// Aligns two parsed manifests (see [`vp_trace::parse_manifest_line`])
/// into a [`ManifestDiff`].
pub fn diff_manifests(old: &Json, new: &Json) -> ManifestDiff {
    let bin = |j: &Json| {
        j.get("bin")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let dur = |j: &Json| j.get("duration_ms").and_then(Json::as_f64);

    let (old_spans, new_spans) = (named_ms(old, "spans"), named_ms(new, "spans"));
    let mut span_names: Vec<&String> = old_spans.keys().chain(new_spans.keys()).collect();
    span_names.sort();
    span_names.dedup();
    let spans = span_names
        .into_iter()
        .map(|name| SpanDelta {
            name: name.clone(),
            old_ms: old_spans.get(name).copied(),
            new_ms: new_spans.get(name).copied(),
        })
        .collect();

    let (old_c, new_c) = (named_u64(old, "counters"), named_u64(new, "counters"));
    let mut counter_names: Vec<&String> = old_c.keys().chain(new_c.keys()).collect();
    counter_names.sort();
    counter_names.dedup();
    let counters = counter_names
        .into_iter()
        .filter_map(|name| {
            let (o, n) = (
                old_c.get(name).copied().unwrap_or(0),
                new_c.get(name).copied().unwrap_or(0),
            );
            (o != n).then(|| CounterDelta {
                name: name.clone(),
                old: o,
                new: n,
            })
        })
        .collect();

    let hists = |j: &Json| -> BTreeMap<String, (u64, f64, u64)> {
        let mut out = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = j.get("histograms") {
            for (name, v) in pairs {
                out.insert(name.clone(), hist_summary(v));
            }
        }
        out
    };
    let (old_h, new_h) = (hists(old), hists(new));
    let mut hist_names: Vec<&String> = old_h.keys().chain(new_h.keys()).collect();
    hist_names.sort();
    hist_names.dedup();
    let histograms = hist_names
        .into_iter()
        .filter_map(|name| {
            let o = old_h.get(name).copied().unwrap_or((0, 0.0, 0));
            let n = new_h.get(name).copied().unwrap_or((0, 0.0, 0));
            (o != n).then(|| HistDelta {
                name: name.clone(),
                old: o,
                new: n,
            })
        })
        .collect();

    ManifestDiff {
        bins: (bin(old), bin(new)),
        duration_ms: (dur(old), dur(new)),
        spans,
        counters,
        histograms,
    }
}

impl ManifestDiff {
    /// The largest gated span regression in percent (0 when nothing
    /// regressed). Only spans at least [`MIN_GATED_SPAN_MS`] on the old
    /// side participate.
    pub fn worst_span_regression_pct(&self) -> f64 {
        self.spans
            .iter()
            .filter_map(SpanDelta::gated_pct)
            .fold(0.0, f64::max)
    }

    /// Renders the diff as a plain-text report, spans sorted worst
    /// regression first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "manifest-diff: {} -> {}\n",
            self.bins.0, self.bins.1
        ));
        if let (Some(o), Some(n)) = self.duration_ms {
            out.push_str(&format!(
                "run duration: {o:.1} ms -> {n:.1} ms ({:+.1}%)\n",
                (n - o) / o.max(1e-9) * 100.0
            ));
        }

        let mut spans: Vec<&SpanDelta> = self.spans.iter().collect();
        spans.sort_by(|a, b| {
            b.gated_pct()
                .unwrap_or(f64::MIN)
                .total_cmp(&a.gated_pct().unwrap_or(f64::MIN))
        });
        out.push_str("\nspans (worst regression first):\n");
        if spans.is_empty() {
            out.push_str("  (none on either side)\n");
        }
        for s in spans {
            let fmt = |v: Option<f64>| v.map_or("-".to_string(), |ms| format!("{ms:.3} ms"));
            let tag = match (s.gated_pct(), s.old_ms, s.new_ms) {
                (Some(pct), _, _) => format!("{pct:+.1}%"),
                (None, Some(_), Some(_)) => "below gate".to_string(),
                (None, None, _) => "added".to_string(),
                (None, _, None) => "removed".to_string(),
            };
            out.push_str(&format!(
                "  {:<44} {:>14} -> {:>14}  {}\n",
                s.name,
                fmt(s.old_ms),
                fmt(s.new_ms),
                tag
            ));
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters (changed):\n");
            for c in &self.counters {
                let delta = c.new as i128 - c.old as i128;
                out.push_str(&format!(
                    "  {:<44} {:>14} -> {:>14}  ({delta:+})\n",
                    c.name, c.old, c.new
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms (changed):\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<44} count {} -> {}, mean {:.1} -> {:.1}, p50 {} -> {}\n",
                    h.name, h.old.0, h.new.0, h.old.1, h.new.1, h.old.2, h.new.2
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(spans: &[(&str, f64)], counters: &[(&str, u64)]) -> Json {
        let mut line = String::from(r#"{"t":"manifest","schema":"vp-manifest/2","bin":"sweep""#);
        line.push_str(r#","duration_ms":100.0,"spans":{"#);
        line.push_str(
            &spans
                .iter()
                .map(|(n, ms)| format!(r#""{n}":{{"count":1,"ms":{ms}}}"#))
                .collect::<Vec<_>>()
                .join(","),
        );
        line.push_str(r#"},"counters":{"#);
        line.push_str(
            &counters
                .iter()
                .map(|(n, v)| format!(r#""{n}":{v}"#))
                .collect::<Vec<_>>()
                .join(","),
        );
        line.push_str("}}");
        vp_trace::parse_manifest_line(&line).unwrap()
    }

    #[test]
    fn clean_diff_has_no_regression() {
        let old = manifest(&[("pack", 10.0), ("measure", 50.0)], &[("hits", 4)]);
        let new = manifest(&[("pack", 10.2), ("measure", 49.0)], &[("hits", 4)]);
        let d = diff_manifests(&old, &new);
        assert!(d.worst_span_regression_pct() < 25.0);
        assert!(d.counters.is_empty(), "unchanged counters are not listed");
    }

    #[test]
    fn injected_span_regression_is_attributed() {
        let old = manifest(&[("pack", 10.0), ("measure", 50.0)], &[]);
        let new = manifest(&[("pack", 10.0), ("measure", 100.0)], &[]);
        let d = diff_manifests(&old, &new);
        let worst = d.worst_span_regression_pct();
        assert!((worst - 100.0).abs() < 1e-9, "worst = {worst}");
        let report = d.render();
        let measure_at = report.find("measure").unwrap();
        let pack_at = report.find("pack").unwrap();
        assert!(
            measure_at < pack_at,
            "regressed span sorts first:\n{report}"
        );
        assert!(report.contains("+100.0%"), "{report}");
    }

    #[test]
    fn sub_millisecond_spans_do_not_gate() {
        let old = manifest(&[("tiny", 0.01)], &[]);
        let new = manifest(&[("tiny", 0.09)], &[]);
        let d = diff_manifests(&old, &new);
        assert_eq!(d.worst_span_regression_pct(), 0.0);
        assert!(d.render().contains("below gate"));
    }

    #[test]
    fn added_and_removed_spans_are_listed_not_gated() {
        let old = manifest(&[("gone", 30.0)], &[]);
        let new = manifest(&[("fresh", 30.0)], &[]);
        let d = diff_manifests(&old, &new);
        assert_eq!(d.worst_span_regression_pct(), 0.0);
        let report = d.render();
        assert!(
            report.contains("added") && report.contains("removed"),
            "{report}"
        );
    }

    #[test]
    fn counter_and_duration_movement_is_reported() {
        let old = manifest(&[], &[("trace_store.hits", 10), ("same", 1)]);
        let new = manifest(&[], &[("trace_store.hits", 4), ("same", 1)]);
        let d = diff_manifests(&old, &new);
        assert_eq!(
            d.counters,
            vec![CounterDelta {
                name: "trace_store.hits".to_string(),
                old: 10,
                new: 4
            }]
        );
        assert!(d.render().contains("(-6)"));
    }

    #[test]
    fn histogram_mean_shift_is_reported() {
        let mk = |sum: u64| {
            let line = format!(
                r#"{{"t":"manifest","schema":"vp-manifest/2","bin":"x","histograms":{{"h":{{"count":4,"sum":{sum},"min":1,"max":9,"p50":2,"p99":9,"buckets":[[1,4]]}}}}}}"#
            );
            vp_trace::parse_manifest_line(&line).unwrap()
        };
        let d = diff_manifests(&mk(8), &mk(80));
        assert_eq!(d.histograms.len(), 1);
        assert_eq!(d.histograms[0].old.1, 2.0);
        assert_eq!(d.histograms[0].new.1, 20.0);
    }

    #[test]
    fn legacy_v1_manifests_diff_without_duration() {
        let legacy = vp_trace::parse_manifest_line(
            r#"{"t":"manifest","schema":"vp-manifest/1","bin":"sweep","spans":{"pack":{"count":1,"ms":5.0}}}"#,
        )
        .unwrap();
        let d = diff_manifests(&legacy, &legacy);
        assert_eq!(d.duration_ms, (None, None));
        assert_eq!(d.worst_span_regression_pct(), 0.0);
    }
}
