//! `sweep watch`: fold a live feed file into a terminal progress view.
//!
//! The write side is `vp_trace::feed` (sweep emits `sweep.start`,
//! `cell.start`, `cell.done`, `sweep.done` events — see
//! [`crate::sweep::sweep_cells`] and the cell events in the scoped
//! sweep driver). This module is the read side: [`fold_feed`] reduces
//! the event lines into a [`WatchState`], and [`render_watch`] formats
//! that state — per-worker utilization, cells done/total, trace-store
//! hit ratio, ETA. Both halves are pure, so the view is unit-testable
//! without a live sweep; the `watch` subcommand in the sweep binary
//! adds the only impure part (re-reading a growing file).

use std::collections::BTreeMap;
use vp_trace::Json;

/// Per-worker accumulation across `cell.*` events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerView {
    /// Cells this worker finished.
    pub cells: u64,
    /// Wall ms this worker spent inside finished cells.
    pub busy_ms: f64,
}

/// Everything the watch view knows after folding a feed prefix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WatchState {
    /// Cells the sweep will run (`sweep.start`, refined by `cell.done`).
    pub total: u64,
    /// Scheduler worker count announced by `sweep.start`.
    pub jobs: u64,
    /// Cells finished so far.
    pub done: u64,
    /// Feed `ms` of the first event seen.
    pub first_ms: f64,
    /// Feed `ms` of the last event seen.
    pub last_ms: f64,
    /// Per-worker view, keyed by worker id.
    pub workers: BTreeMap<u64, WorkerView>,
    /// Trace-store hits summed over finished cells.
    pub hits: u64,
    /// Live captures summed over finished cells.
    pub captures: u64,
    /// Latest shared-store occupancy (bytes), from the newest `cell.done`.
    pub store_resident_bytes: u64,
    /// Cells started but not yet finished, in start order.
    pub running: Vec<String>,
    /// A `sweep.done` event has been seen.
    pub finished: bool,
    /// Total sweep wall ms (from `sweep.done`).
    pub wall_ms: f64,
    /// Lines that did not parse as `vp-feed/1` events.
    pub malformed: usize,
}

impl WatchState {
    /// Elapsed feed time covered by the folded events, ms.
    pub fn elapsed_ms(&self) -> f64 {
        (self.last_ms - self.first_ms).max(0.0)
    }

    /// A worker's busy fraction of the observed elapsed time.
    pub fn utilization(&self, worker: u64) -> f64 {
        let elapsed = self.elapsed_ms();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.workers
            .get(&worker)
            .map_or(0.0, |w| (w.busy_ms / elapsed).clamp(0.0, 1.0))
    }

    /// Store hit ratio over finished cells, when any touched the store.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.captures;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Estimated ms to completion: remaining cells at the observed mean
    /// cell rate. `None` until a cell finished or once done.
    pub fn eta_ms(&self) -> Option<f64> {
        if self.finished || self.done == 0 || self.total <= self.done {
            return None;
        }
        let elapsed = self.elapsed_ms();
        if elapsed <= 0.0 {
            return None;
        }
        Some((self.total - self.done) as f64 * elapsed / self.done as f64)
    }
}

/// Folds feed text (any prefix of a feed file, torn final line included)
/// into a [`WatchState`].
pub fn fold_feed(text: &str) -> WatchState {
    let mut st = WatchState::default();
    let mut seen_any = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(j) = vp_trace::parse_feed_line(line) else {
            st.malformed += 1;
            continue;
        };
        if let Some(ms) = j.get("ms").and_then(Json::as_f64) {
            if !seen_any {
                st.first_ms = ms;
                seen_any = true;
            }
            st.last_ms = st.last_ms.max(ms);
        }
        let num = |key: &str| j.get(key).and_then(Json::as_u64).unwrap_or(0);
        match j.get("kind").and_then(Json::as_str) {
            Some("sweep.start") => {
                st.total = num("total");
                st.jobs = num("jobs");
            }
            Some("cell.start") => {
                if let Some(cell) = j.get("cell").and_then(Json::as_str) {
                    st.running.push(cell.to_string());
                }
            }
            Some("cell.done") => {
                st.done += 1;
                st.total = st.total.max(num("total"));
                st.hits += num("hits");
                st.captures += num("captures");
                if let Some(b) = j.get("store_resident_bytes").and_then(Json::as_u64) {
                    st.store_resident_bytes = b;
                }
                let w = st.workers.entry(num("worker")).or_default();
                w.cells += 1;
                w.busy_ms += j.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                if let Some(cell) = j.get("cell").and_then(Json::as_str) {
                    if let Some(pos) = st.running.iter().position(|c| c == cell) {
                        st.running.remove(pos);
                    }
                }
            }
            Some("sweep.done") => {
                st.finished = true;
                st.done = st.done.max(num("done"));
                st.total = st.total.max(num("total"));
                st.wall_ms = j.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
            }
            _ => {}
        }
    }
    st
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(width - filled))
}

fn human_ms(ms: f64) -> String {
    if ms >= 60_000.0 {
        format!("{:.1} min", ms / 60_000.0)
    } else if ms >= 1_000.0 {
        format!("{:.1} s", ms / 1_000.0)
    } else {
        format!("{ms:.0} ms")
    }
}

/// Renders the watch view for one folded state.
pub fn render_watch(st: &WatchState) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let total = st.total.max(st.done);
    if st.finished {
        let _ = writeln!(
            out,
            "sweep complete: {}/{} cells in {}",
            st.done,
            total,
            human_ms(st.wall_ms.max(st.elapsed_ms()))
        );
    } else {
        let eta = st
            .eta_ms()
            .map_or_else(|| "-".to_string(), |ms| format!("ETA {}", human_ms(ms)));
        let _ = writeln!(
            out,
            "sweep: {}/{} cells done, {} worker{}, {eta}",
            st.done,
            total,
            st.jobs.max(st.workers.len() as u64),
            if st.jobs == 1 { "" } else { "s" },
        );
    }
    let frac = if total > 0 {
        st.done as f64 / total as f64
    } else {
        0.0
    };
    let _ = writeln!(out, "  {} {:.0}%", bar(frac, 24), frac * 100.0);
    for (id, w) in &st.workers {
        let util = st.utilization(*id);
        let _ = writeln!(
            out,
            "  worker {id}: {} cell{}, busy {} ({:.0}% utilized) {}",
            w.cells,
            if w.cells == 1 { "" } else { "s" },
            human_ms(w.busy_ms),
            util * 100.0,
            bar(util, 10),
        );
    }
    let ratio = st
        .hit_ratio()
        .map_or_else(|| "-".to_string(), |r| format!("{:.0}%", r * 100.0));
    let _ = writeln!(
        out,
        "  trace store: {} hits / {} captures (hit ratio {ratio}), {:.1} MB resident",
        st.hits,
        st.captures,
        st.store_resident_bytes as f64 / (1024.0 * 1024.0),
    );
    if !st.running.is_empty() {
        let _ = writeln!(out, "  running: {}", st.running.join(", "));
    }
    if st.malformed > 0 {
        let _ = writeln!(out, "  ({} malformed feed lines skipped)", st.malformed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_line(kind: &str, ms: f64, rest: &str) -> String {
        let comma = if rest.is_empty() { "" } else { "," };
        format!(
            r#"{{"t":"feed","schema":"vp-feed/1","seq":1,"ms":{ms},"kind":"{kind}"{comma}{rest}}}"#
        )
    }

    fn sample_feed() -> String {
        [
            feed_line("sweep.start", 0.0, r#""total":4,"jobs":2"#),
            feed_line("cell.start", 1.0, r#""cell":"a [base]","worker":0"#),
            feed_line("cell.start", 1.5, r#""cell":"b [base]","worker":1"#),
            feed_line(
                "cell.done",
                11.0,
                r#""cell":"a [base]","worker":0,"wall_ms":10.0,"hits":2,"captures":1,"done":1,"total":4,"store_entries":1,"store_resident_bytes":1048576"#,
            ),
            feed_line("cell.start", 11.5, r#""cell":"c [base]","worker":0"#),
            feed_line(
                "cell.done",
                16.0,
                r#""cell":"b [base]","worker":1,"wall_ms":14.0,"hits":1,"captures":0,"done":2,"total":4"#,
            ),
        ]
        .join("\n")
    }

    #[test]
    fn fold_accumulates_workers_and_progress() {
        let st = fold_feed(&sample_feed());
        assert_eq!(st.total, 4);
        assert_eq!(st.jobs, 2);
        assert_eq!(st.done, 2);
        assert!(!st.finished);
        assert_eq!(st.workers.len(), 2);
        assert_eq!(st.workers[&0].cells, 1);
        assert!((st.workers[&0].busy_ms - 10.0).abs() < 1e-9);
        assert_eq!(st.hits, 3);
        assert_eq!(st.captures, 1);
        assert_eq!(st.store_resident_bytes, 1_048_576);
        assert_eq!(st.running, vec!["c [base]".to_string()]);
        assert!((st.hit_ratio().unwrap() - 0.75).abs() < 1e-9);
        // 2 cells over 16 ms elapsed → 2 more ≈ 16 ms out.
        let eta = st.eta_ms().unwrap();
        assert!((eta - 16.0).abs() < 1e-6, "eta {eta}");
        // Utilization: worker 0 busy 10 of 16 ms.
        assert!((st.utilization(0) - 10.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn fold_handles_completion_and_torn_lines() {
        let mut text = sample_feed();
        text.push('\n');
        text.push_str(&feed_line(
            "cell.done",
            20.0,
            r#""cell":"c [base]","worker":0,"wall_ms":8.0,"hits":1,"captures":0,"done":3,"total":4"#,
        ));
        text.push('\n');
        text.push_str(&feed_line(
            "cell.done",
            21.0,
            r#""cell":"d [base]","worker":1,"wall_ms":4.0,"hits":1,"captures":0,"done":4,"total":4"#,
        ));
        text.push('\n');
        text.push_str(&feed_line(
            "sweep.done",
            22.0,
            r#""done":4,"total":4,"wall_ms":22.0"#,
        ));
        text.push_str("\n{\"t\":\"feed\",\"schema\":\"vp-feed/1\",\"seq\":9,\"ms\":23.0,\"ki");
        let st = fold_feed(&text);
        assert!(st.finished);
        assert_eq!(st.done, 4);
        assert_eq!(st.malformed, 1, "torn trailing line counted, not fatal");
        assert!(st.running.is_empty());
        assert_eq!(st.eta_ms(), None);
    }

    #[test]
    fn render_shows_workers_progress_and_store() {
        let st = fold_feed(&sample_feed());
        let view = render_watch(&st);
        assert!(view.contains("2/4 cells done"), "{view}");
        assert!(view.contains("2 workers"), "{view}");
        assert!(view.contains("worker 0:"), "{view}");
        assert!(view.contains("worker 1:"), "{view}");
        assert!(view.contains("% utilized"), "{view}");
        assert!(view.contains("hit ratio 75%"), "{view}");
        assert!(view.contains("ETA"), "{view}");
        assert!(view.contains("running: c [base]"), "{view}");

        let empty = render_watch(&WatchState::default());
        assert!(empty.contains("0/0"), "{empty}");
    }

    #[test]
    fn render_final_view_reports_completion() {
        let mut st = fold_feed(&sample_feed());
        st.finished = true;
        st.done = 4;
        st.wall_ms = 22.0;
        let view = render_watch(&st);
        assert!(view.contains("sweep complete: 4/4 cells"), "{view}");
        assert!(!view.contains("ETA"), "{view}");
    }
}
