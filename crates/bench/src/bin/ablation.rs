//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **BBB geometry × inference** — with a generously sized Branch
//!    Behavior Buffer the profile is nearly complete and inference has
//!    little to recover (as in the paper's Figure 8, where it "does not
//!    greatly effect the average"); shrinking the BBB loses branches to
//!    contention, and inference recovers coverage.
//! 2. **MAX_BLOCKS** — the heuristic-growth budget (Section 3.2.3).
//! 3. **Hot-arc thresholds** — the 25%-flow / execution-threshold rule
//!    (Section 3.2.1).

use bench::scale;
use vacuum_packing::core::PackConfig;
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::{evaluate, pct, profile, TextTable};
use vacuum_packing::opt::OptConfig;

fn main() {
    let mut mf = bench::init("ablation");
    let workloads: Vec<(&str, vacuum_packing::program::Program)> = vec![
        ("175.vpr A", vacuum_packing::workloads::vpr::build(scale())),
        (
            "300.twolf A",
            vacuum_packing::workloads::twolf::build(scale()),
        ),
        (
            "134.perl A",
            vacuum_packing::workloads::perl::build(
                vacuum_packing::workloads::perl::Input::A,
                scale(),
            ),
        ),
    ];

    // --- 1. BBB geometry x inference -----------------------------------
    println!("Ablation 1: BBB geometry x inference (coverage %)\n");
    let mut t = TextTable::new(vec![
        "benchmark",
        "BBB",
        "phases",
        "noInf %",
        "inf %",
        "inf gain",
    ]);
    for (label, program) in &workloads {
        for (sets, ways) in [(512usize, 4usize), (16, 4), (4, 4), (2, 2)] {
            let hsd = HsdConfig {
                bbb_sets: sets,
                bbb_ways: ways,
                ..HsdConfig::table2()
            };
            let pw = profile(label, program.clone(), &hsd, None).expect("profile");
            let no_inf = PackConfig {
                inference: false,
                ..PackConfig::default()
            };
            let with = evaluate(&pw, &PackConfig::default(), &OptConfig::default(), None).unwrap();
            let without = evaluate(&pw, &no_inf, &OptConfig::default(), None).unwrap();
            t.row(vec![
                label.to_string(),
                format!("{sets}x{ways}"),
                pw.phases.len().to_string(),
                pct(without.coverage),
                pct(with.coverage),
                format!("{:+.1}", 100.0 * (with.coverage - without.coverage)),
            ]);
        }
    }
    println!("{t}");
    bench::add_table(&mut mf, "ablation1_bbb_geometry", &t);

    // --- 2. MAX_BLOCKS ---------------------------------------------------
    println!("Ablation 2: heuristic growth budget MAX_BLOCKS (coverage / expansion %)\n");
    let mut t = TextTable::new(vec!["benchmark", "MAX_BLOCKS", "coverage %", "expansion %"]);
    for (label, program) in &workloads {
        let pw = profile(label, program.clone(), &HsdConfig::table2(), None).expect("profile");
        for mb in [0usize, 1, 2, 8] {
            let cfg = PackConfig {
                max_growth_blocks: mb,
                ..PackConfig::default()
            };
            let out = evaluate(&pw, &cfg, &OptConfig::default(), None).unwrap();
            t.row(vec![
                label.to_string(),
                mb.to_string(),
                pct(out.coverage),
                pct(out.expansion),
            ]);
        }
    }
    println!("{t}");
    bench::add_table(&mut mf, "ablation2_max_blocks", &t);

    // --- 4. Optimization passes (timed) ----------------------------------
    println!("Ablation 4: optimization passes (speedup on the Table 2 machine)\n");
    let machine = vacuum_packing::sim::MachineConfig::table2();
    let mut t4 = TextTable::new(vec!["benchmark", "passes", "speedup"]);
    for (label, program) in &workloads {
        let pw =
            profile(label, program.clone(), &HsdConfig::table2(), Some(&machine)).expect("profile");
        for (name, ocfg) in [
            (
                "none",
                OptConfig {
                    relayout: false,
                    reschedule: false,
                    sink_cold: false,
                    licm: false,
                },
            ),
            (
                "resched",
                OptConfig {
                    relayout: false,
                    reschedule: true,
                    sink_cold: false,
                    licm: false,
                },
            ),
            (
                "relayout",
                OptConfig {
                    relayout: true,
                    reschedule: false,
                    sink_cold: false,
                    licm: false,
                },
            ),
            ("both (paper)", OptConfig::default()),
            ("all+sink+licm", OptConfig::full()),
        ] {
            let out = evaluate(&pw, &PackConfig::default(), &ocfg, Some(&machine)).unwrap();
            t4.row(vec![
                label.to_string(),
                name.to_string(),
                format!("{:.3}", out.speedup.unwrap_or(0.0)),
            ]);
        }
    }
    println!("{t4}");
    bench::add_table(&mut mf, "ablation4_opt_passes", &t4);

    // --- 5. Hardware detection history -----------------------------------
    println!("Ablation 5: hardware detection history (Section 3.1 enhancement)\n");
    let mut t5 = TextTable::new(vec![
        "benchmark",
        "history",
        "raw records",
        "suppressed",
        "phases",
        "coverage %",
    ]);
    for (label, program) in &workloads {
        for depth in [0usize, 1, 2, 4] {
            let hsd = HsdConfig {
                history_depth: depth,
                ..HsdConfig::table2()
            };
            let pw = profile(label, program.clone(), &hsd, None).expect("profile");
            let out = evaluate(&pw, &PackConfig::default(), &OptConfig::default(), None).unwrap();
            t5.row(vec![
                label.to_string(),
                depth.to_string(),
                pw.raw_detections.to_string(),
                "-".to_string(),
                pw.phases.len().to_string(),
                pct(out.coverage),
            ]);
        }
    }
    println!("{t5}");
    bench::add_table(&mut mf, "ablation5_history", &t5);
    println!("A deeper history transfers far fewer records to software while the");
    println!("software filter still recovers the same phases (coverage holds).\n");

    // --- 3. Hot-arc thresholds ------------------------------------------
    println!("Ablation 3: hot-arc rule (fraction, execution threshold)\n");
    let mut t = TextTable::new(vec![
        "benchmark",
        "frac/thresh",
        "coverage %",
        "expansion %",
        "packages",
    ]);
    for (label, program) in &workloads {
        let pw = profile(label, program.clone(), &HsdConfig::table2(), None).expect("profile");
        for (frac, thresh) in [(0.25f64, 16u64), (0.10, 16), (0.25, 64), (0.50, 4)] {
            let cfg = PackConfig {
                hot_arc_fraction: frac,
                hot_arc_threshold: thresh,
                ..PackConfig::default()
            };
            let out = evaluate(&pw, &cfg, &OptConfig::default(), None).unwrap();
            t.row(vec![
                label.to_string(),
                format!("{frac:.2}/{thresh}"),
                pct(out.coverage),
                pct(out.expansion),
                out.packages.to_string(),
            ]);
        }
    }
    println!("{t}");
    bench::add_table(&mut mf, "ablation3_hot_arc", &t);
    bench::emit_manifest(mf);
}
