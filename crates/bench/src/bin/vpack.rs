//! `vpack` — the command-line face of the pipeline: profile a workload,
//! vacuum-pack it, and report (or dump) the result.
//!
//! ```text
//! vpack <workload> [--no-inference] [--no-linking] [--max-blocks N]
//!                  [--opt none|paper|full] [--timing] [--dump] [--list]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p bench --bin vpack -- --list
//! cargo run --release -p bench --bin vpack -- "300.twolf A" --timing
//! cargo run --release -p bench --bin vpack -- "134.perl A" --no-linking --dump
//! ```

use vacuum_packing::core::{pack, PackConfig};
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::{evaluate, profile};
use vacuum_packing::opt::OptConfig;
use vacuum_packing::prelude::*;
use vacuum_packing::program::pretty;

fn usage() -> ! {
    eprintln!(
        "usage: vpack <workload> [--no-inference] [--no-linking] [--max-blocks N]\n\
         \x20                    [--opt none|paper|full] [--timing] [--dump] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let mut mf = bench::init("vpack");
    let args: Vec<String> = bench::cli_args();
    if args.iter().any(|a| a == "--list") {
        for w in vacuum_packing::workloads::suite(bench::scale()) {
            println!("{:<16} {}", w.label(), w.input_desc);
        }
        return;
    }
    let mut label: Option<String> = None;
    let mut cfg = PackConfig::default();
    let mut opt = OptConfig::default();
    let mut timing = false;
    let mut dump = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-inference" => cfg.inference = false,
            "--no-linking" => cfg.linking = false,
            "--max-blocks" => {
                cfg.max_growth_blocks = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--opt" => match it.next().as_deref() {
                Some("none") => {
                    opt = OptConfig {
                        relayout: false,
                        reschedule: false,
                        sink_cold: false,
                        licm: false,
                    }
                }
                Some("paper") => opt = OptConfig::default(),
                Some("full") => opt = OptConfig::full(),
                _ => usage(),
            },
            "--timing" => timing = true,
            "--dump" => dump = true,
            "--help" | "-h" => usage(),
            other if label.is_none() && !other.starts_with('-') => label = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(label) = label else { usage() };
    let Some(w) = vacuum_packing::workloads::by_label(&label, bench::scale()) else {
        eprintln!("unknown workload {label:?}; --list shows the suite");
        std::process::exit(1);
    };

    let machine = MachineConfig::table2();
    let pw = profile(
        &label,
        w.program,
        &HsdConfig::table2(),
        timing.then_some(&machine),
    )
    .expect("profiling succeeds");
    println!(
        "{label}: {} dynamic instructions, {} phases ({} raw detections)",
        pw.dyn_insts,
        pw.phases.len(),
        pw.raw_detections
    );

    let out = evaluate(&pw, &cfg, &opt, timing.then_some(&machine)).expect("evaluation succeeds");
    println!("packages:        {}", out.packages);
    println!("launch points:   {}", out.launch_points);
    println!("coverage:        {:.1}%", 100.0 * out.coverage);
    println!("code expansion:  {:.1}%", 100.0 * out.expansion);
    println!("selected:        {:.1}%", 100.0 * out.selected_fraction);
    println!("replication:     {:.2}x", out.replication);
    if let Some(s) = out.speedup {
        println!(
            "speedup:         {s:.3}x over {} Mcycles",
            pw.base_cycles.unwrap_or(0) / 1_000_000
        );
    }

    mf.set("workload", label.as_str().into());
    mf.set("dyn_insts", pw.dyn_insts.into());
    mf.set("phases", (pw.phases.len() as u64).into());
    mf.set("packages", (out.packages as u64).into());
    mf.set("launch_points", (out.launch_points as u64).into());
    mf.set("coverage", out.coverage.into());
    mf.set("expansion", out.expansion.into());
    if let Some(s) = out.speedup {
        mf.set("speedup", s.into());
    }

    if dump {
        let packed = pack(&pw.program, &pw.layout, &pw.phases, &cfg);
        println!("\n=== package listing ===");
        for pi in &packed.packages {
            println!(
                "--- {} (phase {}, root `{}`, links in/out {}/{})",
                packed.program.func(pi.func).name,
                pi.phase,
                packed.program.func(pi.root).name,
                pi.links_in,
                pi.links_out
            );
            print!("{}", pretty::dump_function(&packed.program, pi.func, None));
        }
    }
    bench::emit_manifest(mf);
}
