//! Table 1: benchmarks, inputs, and dynamic instruction counts.

use bench::profile_suite;
use vacuum_packing::metrics::TextTable;

fn main() {
    let mut mf = bench::init("table1");
    mf.set("table", 1u64.into());
    let profiled = profile_suite(None);
    println!("Table 1: Benchmarks and inputs\n");
    let mut t = TextTable::new(vec![
        "benchmark",
        "input",
        "# of inst",
        "dyn branches",
        "static inst",
        "phases",
        "raw detections",
    ]);
    for pw in &profiled {
        t.row(vec![
            pw.label.clone(),
            pw.label.split(' ').nth(1).unwrap_or("?").to_string(),
            format!("{:.1}M", pw.dyn_insts as f64 / 1e6),
            format!("{:.2}M", pw.branch_counts.total() as f64 / 1e6),
            pw.program.static_insts().to_string(),
            pw.phases.len().to_string(),
            pw.raw_detections.to_string(),
        ]);
    }
    println!("{t}");
    println!("(Workloads are scaled-down synthetic counterparts; the paper's runs");
    println!(" span 8M-1902M instructions on real SPEC/MediaBench binaries.)");
    bench::add_table(&mut mf, "table1", &t);
    bench::emit_manifest(mf);
}
