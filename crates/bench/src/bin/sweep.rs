//! Sharded evaluation sweep over the (workload × config) matrix, plus the
//! merge subcommand that joins per-shard manifests into one report.
//!
//! ```text
//! sweep [--timing] [--only SUBSTR]...   # run this process's shard
//! sweep merge FILE.jsonl...             # join shard manifests
//! ```
//!
//! Sharding comes from `VP_SHARD=i/n` (unset = the whole matrix). Each run
//! emits its cell rows in its `vp-manifest/2` manifest (`VP_TRACE=json:<path>`),
//! which `merge` validates for exact single coverage of the matrix before
//! printing the report an unsharded run would have produced, byte for byte.

use bench::sweep::{
    merge_manifests, render_report, sweep_cells, ShardSpec, CELL_HEADERS, TELEMETRY_HEADERS,
};
use vacuum_packing::sim::MachineConfig;

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}

fn merge_main(files: &[String]) -> ! {
    if files.is_empty() {
        fail("merge: no manifest files given");
    }
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| match std::fs::read_to_string(f) {
            Ok(c) => (f.clone(), c),
            Err(e) => fail(&format!("merge: cannot read {f}: {e}")),
        })
        .collect();
    match merge_manifests(&inputs) {
        Ok(report) => {
            print!("{report}");
            std::process::exit(0);
        }
        Err(e) => fail(&format!("merge: {e}")),
    }
}

fn main() {
    let args = bench::cli_args();
    if args.first().map(String::as_str) == Some("merge") {
        merge_main(&args[1..]);
    }

    let mut timing = false;
    let mut only: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timing" => timing = true,
            "--only" => match it.next() {
                Some(f) => only.push(f),
                None => fail("--only needs a substring argument"),
            },
            other => fail(&format!(
                "unknown argument {other:?} (usage: sweep [--timing] [--only SUBSTR]... | sweep merge FILE...)"
            )),
        }
    }

    let shard = match ShardSpec::from_env() {
        Ok(s) => s,
        Err(e) => fail(&e),
    };

    let mut mf = bench::init("sweep");
    if let Some(s) = &shard {
        mf.set("shard", s.label().into());
    }
    if !only.is_empty() {
        mf.set(
            "only",
            vp_trace::Json::Arr(only.iter().map(|s| s.as_str().into()).collect()),
        );
    }
    mf.set("timing", timing.into());

    let machine = MachineConfig::table2();
    let outcome = sweep_cells(shard.as_ref(), timing.then_some(&machine), &only);

    mf.set("cells_total", (outcome.cells_total as u64).into());
    mf.set("cells_done", outcome.rows.len().into());
    let headers: Vec<String> = CELL_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cells", &headers, &outcome.rows);
    let t_headers: Vec<String> = TELEMETRY_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cell_telemetry", &t_headers, &outcome.telemetry);

    if let Some(s) = &shard {
        // A shard's stdout is informational; the authoritative joined
        // report comes from `sweep merge` over the emitted manifests.
        println!(
            "shard {}: {} of {} cells\n",
            s.label(),
            outcome.rows.len(),
            outcome.cells_total
        );
    }
    print!("{}", render_report(&outcome.rows));
    bench::emit_manifest(mf);
}
