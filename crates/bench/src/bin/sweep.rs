//! Sharded evaluation sweep over the (workload × config) matrix, plus the
//! merge subcommand that joins per-shard manifests into one report and the
//! cross subcommand that runs the cross-input generalization matrix.
//!
//! ```text
//! sweep [--timing] [--jobs N] [--only SUBSTR]...   # run this process's shard
//! sweep merge FILE.jsonl...                        # join shard manifests
//! sweep cross [--timing] [--jobs N] [--only FAMILY]... [--eval INPUT]... [--from SOURCE]...
//! sweep history [ingest|list|series|gate] ...      # query the run-history warehouse
//! sweep watch FEED [--follow]                      # attach to a live sweep's feed
//! ```
//!
//! In-process parallelism comes from the work-stealing scheduler:
//! `--jobs N` (default `VP_SWEEP_JOBS`, then `VP_THREADS`/cores) sets the
//! worker count, and all workers share one `TraceStore`. `--jobs`
//! composes with sharding — each shard process runs its own N workers.
//!
//! Sharding comes from `VP_SHARD=i/n` (unset = the whole matrix). Each run
//! emits its cell rows in its `vp-manifest/2` manifest (`VP_TRACE=json:<path>`),
//! which `merge` validates for exact single coverage of the matrix before
//! printing the report an unsharded run would have produced, byte for byte.
//!
//! `cross` evaluates every multi-input family's (eval input × profile
//! source) matrix — same-input, foreign-input, and merged-profile columns
//! — under the strongest configuration (see `bench::cross`). `--only`
//! filters families, `--eval` the evaluated input, `--from` the profile
//! source column (an input name, `merged`, or a kind like `foreign`);
//! `VP_PROFILE_FROM` applies the same substitution to the standard sweep.

use bench::cross::{cross_cells, render_cross_report, CROSS_HEADERS};
use bench::sweep::{
    merge_manifests, render_report, sweep_cells, ShardSpec, CELL_HEADERS, TELEMETRY_HEADERS,
};
use vacuum_packing::sim::MachineConfig;

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}

fn merge_main(files: &[String]) -> ! {
    if files.is_empty() {
        fail("merge: no manifest files given");
    }
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| match std::fs::read_to_string(f) {
            Ok(c) => (f.clone(), c),
            Err(e) => fail(&format!("merge: cannot read {f}: {e}")),
        })
        .collect();
    match merge_manifests(&inputs) {
        Ok(report) => {
            print!("{report}");
            std::process::exit(0);
        }
        Err(e) => fail(&format!("merge: {e}")),
    }
}

/// Stamps a run's result-cache effectiveness into its manifest:
/// per-run hit/miss cell counts and the hit ratio. Omitted entirely when
/// no cache was active (`VP_RESULT_DIR` unset or `VP_PROFILE_FROM` set),
/// so cacheless manifests stay byte-compatible with older runs.
fn stamp_result_cache(mf: &mut vp_trace::Manifest, hits: usize, misses: usize) {
    if hits + misses == 0 {
        return;
    }
    let mut rc = vp_trace::Json::obj();
    rc.set("hits", (hits as u64).into());
    rc.set("misses", (misses as u64).into());
    rc.set("hit_ratio", (hits as f64 / (hits + misses) as f64).into());
    mf.set("result_cache", rc);
}

/// Parses and installs a `--jobs` value (a positive integer).
fn set_jobs_arg(arg: Option<&String>) {
    match arg.and_then(|s| s.parse::<usize>().ok()).filter(|&n| n > 0) {
        Some(n) => bench::set_jobs(n),
        None => fail("--jobs needs a positive integer argument"),
    }
}

fn cross_main(args: &[String]) -> ! {
    let mut timing = false;
    let mut only: Vec<String> = Vec::new();
    let mut eval: Vec<String> = Vec::new();
    let mut from: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut push = |dst: &mut Vec<String>, what: &str| match it.next() {
            Some(f) => dst.push(f.clone()),
            None => fail(&format!("{what} needs a substring argument")),
        };
        match a.as_str() {
            "--timing" => timing = true,
            "--jobs" => set_jobs_arg(it.next()),
            "--only" => push(&mut only, "--only"),
            "--eval" => push(&mut eval, "--eval"),
            "--from" => push(&mut from, "--from"),
            other => fail(&format!(
                "unknown argument {other:?} (usage: sweep cross [--timing] [--jobs N] \
                 [--only FAMILY]... [--eval INPUT]... [--from SOURCE]...)"
            )),
        }
    }

    let mut mf = bench::init("sweep");
    mf.set("mode", "cross".into());
    mf.set("timing", timing.into());
    for (key, filters) in [("only", &only), ("eval", &eval), ("from", &from)] {
        if !filters.is_empty() {
            mf.set(
                key,
                vp_trace::Json::Arr(filters.iter().map(|s| s.as_str().into()).collect()),
            );
        }
    }

    let machine = MachineConfig::table2();
    let outcome = cross_cells(timing.then_some(&machine), &only, &eval, &from);

    mf.set("cells_total", (outcome.rows.len() as u64).into());
    stamp_result_cache(&mut mf, outcome.cache_hits, outcome.cache_misses);
    let headers: Vec<String> = CROSS_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("generalization", &headers, &outcome.rows);
    let t_headers: Vec<String> = TELEMETRY_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cell_telemetry", &t_headers, &outcome.telemetry);

    print!("{}", render_cross_report(&outcome.rows));
    bench::emit_manifest(mf);
    std::process::exit(0);
}

/// Pulls one `--flag VALUE` pair out of `args`, mutating the list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    if at + 1 >= args.len() {
        fail(&format!("{flag} needs an argument"));
    }
    let v = args.remove(at + 1);
    args.remove(at);
    Some(v)
}

/// Resolves the warehouse for a `history` subcommand: `--dir` beats
/// `VP_HISTORY_DIR`.
fn open_warehouse(dir_arg: Option<String>) -> Option<bench::history::Warehouse> {
    let dir = dir_arg
        .map(std::path::PathBuf::from)
        .or_else(bench::history::dir_from_env)?;
    match bench::history::Warehouse::open(&dir) {
        Ok(w) => Some(w),
        Err(e) => fail(&format!("history: cannot open {}: {e}", dir.display())),
    }
}

fn warehouse_records(w: &bench::history::Warehouse) -> Vec<bench::history::RunRecord> {
    w.records()
        .unwrap_or_else(|e| fail(&format!("history: cannot read {}: {e}", w.dir().display())))
}

/// `sweep history …`: query (or populate) the run-history warehouse.
///
/// * no verb — trend table from the warehouse, or from the committed
///   `BENCH_*.json` baselines in the current directory when no warehouse
///   is configured;
/// * `ingest FILE...` — warehouse manifest JSONL streams or `vp-bench/1`
///   baselines;
/// * `list` — one line per warehouse key: runs, fingerprint, span;
/// * `series METRIC` — export one metric series as JSON for the
///   dashboard (`[{"ts":…,"label":…,"v":…},…]`);
/// * `gate METRIC (--value V | --from-bench FILE) [--scale F] [--upper]
///   [--lower X]` — exit 1 when the value falls outside the history
///   tolerance band (median of last K ± max(3·MAD, 10%)); thin history
///   (< 3 samples) passes with a note, leaving the committed-baseline
///   gate in charge. `--lower X` additionally imposes an absolute hard
///   floor that applies even when history is thin — for invariants like
///   "batching must beat per-event dispatch" that no tolerance band
///   should ever erode.
fn history_main(args: &[String]) -> ! {
    use bench::history;
    let mut args: Vec<String> = args.to_vec();
    let dir = take_flag(&mut args, "--dir");
    let verb = if args.first().is_some_and(|a| !a.starts_with("--")) {
        Some(args.remove(0))
    } else {
        None
    };
    match verb.as_deref() {
        None => {
            let records = match open_warehouse(dir) {
                Some(w) => warehouse_records(&w),
                None => {
                    let here = std::env::current_dir().unwrap_or_else(|_| ".".into());
                    let recs = history::bench_baseline_records(&here);
                    if recs.is_empty() {
                        fail(&format!(
                            "history: no warehouse configured (VP_HISTORY_DIR/--dir) and no \
                             committed BENCH_*.json found in {}",
                            here.display()
                        ));
                    }
                    eprintln!(
                        "history: no warehouse configured; trend from {} committed BENCH_*.json \
                         baselines",
                        recs.len()
                    );
                    recs
                }
            };
            print!("{}", history::render_trend(&records));
            std::process::exit(0);
        }
        Some("ingest") => {
            let Some(w) = open_warehouse(dir) else {
                fail("history ingest: no warehouse (set VP_HISTORY_DIR or pass --dir)");
            };
            if args.is_empty() {
                fail("history ingest: no files given");
            }
            let mut total = 0;
            for f in &args {
                match w.ingest_file(std::path::Path::new(f)) {
                    Ok(n) => {
                        total += n;
                        println!(
                            "ingested {n} record{} from {f}",
                            if n == 1 { "" } else { "s" }
                        );
                    }
                    Err(e) => fail(&format!("history ingest: {e}")),
                }
            }
            println!("warehouse {}: +{total} records", w.dir().display());
            std::process::exit(0);
        }
        Some("list") => {
            let Some(w) = open_warehouse(dir) else {
                fail("history list: no warehouse (set VP_HISTORY_DIR or pass --dir)");
            };
            let records = warehouse_records(&w);
            let mut keys: Vec<(String, String, usize)> = Vec::new();
            for r in &records {
                let key = r.key();
                match keys.iter_mut().find(|(k, _, _)| *k == key) {
                    Some((_, _, n)) => *n += 1,
                    None => keys.push((key, r.fingerprint(), 1)),
                }
            }
            for (key, fp, n) in &keys {
                println!("{fp}  {n:>4} runs  {key}");
            }
            println!(
                "{} keys, {} records, {} segments",
                keys.len(),
                records.len(),
                w.segments().map(|s| s.len()).unwrap_or(0)
            );
            std::process::exit(0);
        }
        Some("series") => {
            let Some(spec) = args.first().cloned() else {
                fail("history series: needs a METRIC argument (e.g. metric:eps.replay_batched)");
            };
            let bin = take_flag(&mut args, "--bin");
            let Some(w) = open_warehouse(dir) else {
                fail("history series: no warehouse (set VP_HISTORY_DIR or pass --dir)");
            };
            let mut out = String::from("[");
            let mut first = true;
            for r in warehouse_records(&w) {
                if bin.as_deref().is_some_and(|b| r.bin != b) {
                    continue;
                }
                let Some(v) = r.metric(&spec) else { continue };
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    r#"{{"ts":{},"label":"{}","v":{v}}}"#,
                    r.ts, r.label
                ));
            }
            out.push_str("]\n");
            print!("{out}");
            std::process::exit(0);
        }
        Some("gate") => {
            let value_arg = take_flag(&mut args, "--value");
            let from_bench = take_flag(&mut args, "--from-bench");
            let scale: f64 = take_flag(&mut args, "--scale")
                .map(|s| s.parse().unwrap_or_else(|_| fail("--scale needs a number")))
                .unwrap_or(1.0);
            let hard_floor: Option<f64> = take_flag(&mut args, "--lower")
                .map(|s| s.parse().unwrap_or_else(|_| fail("--lower needs a number")));
            let upper = if let Some(at) = args.iter().position(|a| a == "--upper") {
                args.remove(at);
                true
            } else {
                false
            };
            let Some(spec) = args.first().cloned() else {
                fail("history gate: needs a METRIC argument");
            };
            let value = match (value_arg, from_bench) {
                (Some(v), None) => v
                    .parse::<f64>()
                    .unwrap_or_else(|_| fail("--value needs a number")),
                (None, Some(f)) => {
                    let text = std::fs::read_to_string(&f)
                        .unwrap_or_else(|e| fail(&format!("history gate: {f}: {e}")));
                    let rec = history::RunRecord::from_bench_json(&text, &f, 0)
                        .unwrap_or_else(|e| fail(&format!("history gate: {f}: {e}")));
                    rec.metric(&spec)
                        .unwrap_or_else(|| fail(&format!("history gate: {f} lacks {spec}")))
                }
                _ => fail("history gate: exactly one of --value V or --from-bench FILE"),
            } * scale;
            // The absolute floor is checked before any history statistics:
            // it holds even when history is thin, and a tolerance band
            // that has drifted below it cannot excuse a breach.
            if let Some(floor) = hard_floor {
                let breach = value < floor;
                println!(
                    "history gate {spec}: value {value:.4} vs hard floor {floor:.4} ... {}",
                    if breach { "FAIL" } else { "ok" }
                );
                if breach {
                    std::process::exit(1);
                }
            }
            let Some(w) = open_warehouse(dir) else {
                if hard_floor.is_some() {
                    println!("history gate {spec}: no warehouse — hard floor only");
                    std::process::exit(0);
                }
                fail("history gate: no warehouse (set VP_HISTORY_DIR or pass --dir)");
            };
            match history::gate_band(&warehouse_records(&w), &spec) {
                None => {
                    println!(
                        "history gate {spec}: history too thin (< {} samples) — pass by \
                         default, committed baseline stays authoritative",
                        history::GATE_MIN_SAMPLES
                    );
                    std::process::exit(0);
                }
                Some(band) => {
                    let (bound, breach) = if upper {
                        let ceil = band.ceil(history::GATE_K, history::GATE_MIN_REL);
                        (ceil, value > ceil)
                    } else {
                        let floor = band.floor(history::GATE_K, history::GATE_MIN_REL);
                        (floor, value < floor)
                    };
                    let verdict = if breach { "FAIL" } else { "ok" };
                    println!(
                        "history gate {spec}: value {value:.4} vs median {:.4} ± (MAD {:.4}, \
                         n={}) → {} {bound:.4} ... {verdict}",
                        band.median,
                        band.mad,
                        band.n,
                        if upper { "ceil" } else { "floor" },
                    );
                    std::process::exit(i32::from(breach));
                }
            }
        }
        Some(other) => fail(&format!(
            "unknown history verb {other:?} (usage: sweep history \
             [ingest FILE... | list | series METRIC | gate METRIC] [--dir DIR])"
        )),
    }
}

/// `sweep watch FEED [--follow] [--interval-ms N]`: render a live view
/// of a sweep's `VP_LIVE_FEED` file; `--follow` re-reads until the
/// `sweep.done` event lands.
fn watch_main(args: &[String]) -> ! {
    let mut args: Vec<String> = args.to_vec();
    let interval_ms: u64 = take_flag(&mut args, "--interval-ms")
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| fail("--interval-ms needs a positive integer"))
        })
        .unwrap_or(500)
        .max(50);
    let follow = if let Some(at) = args.iter().position(|a| a == "--follow") {
        args.remove(at);
        true
    } else {
        false
    };
    let [feed] = args.as_slice() else {
        fail("usage: sweep watch FEED [--follow] [--interval-ms N]");
    };
    loop {
        let text = std::fs::read_to_string(feed)
            .unwrap_or_else(|e| fail(&format!("watch: cannot read {feed}: {e}")));
        let st = bench::watch::fold_feed(&text);
        if follow && !st.finished {
            // Home + clear so the view repaints in place.
            print!("\x1b[H\x1b[2J{}", bench::watch::render_watch(&st));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            continue;
        }
        print!("{}", bench::watch::render_watch(&st));
        std::process::exit(0);
    }
}

fn main() {
    let args = bench::cli_args();
    if args.first().map(String::as_str) == Some("merge") {
        merge_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("cross") {
        cross_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("history") {
        history_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("watch") {
        watch_main(&args[1..]);
    }

    let mut timing = false;
    let mut only: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timing" => timing = true,
            "--jobs" => set_jobs_arg(it.next().as_ref()),
            "--only" => match it.next() {
                Some(f) => only.push(f),
                None => fail("--only needs a substring argument"),
            },
            other => fail(&format!(
                "unknown argument {other:?} (usage: sweep [--timing] [--jobs N] \
                 [--only SUBSTR]... | sweep merge FILE... | sweep cross [--timing] \
                 [--jobs N] [--only FAMILY]... | sweep history ... | sweep watch FEED)"
            )),
        }
    }

    let shard = match ShardSpec::from_env() {
        Ok(s) => s,
        Err(e) => fail(&e),
    };

    let mut mf = bench::init("sweep");
    if let Some(s) = &shard {
        mf.set("shard", s.label().into());
    }
    if !only.is_empty() {
        mf.set(
            "only",
            vp_trace::Json::Arr(only.iter().map(|s| s.as_str().into()).collect()),
        );
    }
    mf.set("timing", timing.into());
    if let Ok(spec) = std::env::var("VP_PROFILE_FROM") {
        if !spec.trim().is_empty() {
            mf.set("profile_from", spec.trim().into());
        }
    }

    let machine = MachineConfig::table2();
    let outcome = sweep_cells(shard.as_ref(), timing.then_some(&machine), &only);

    mf.set("cells_total", (outcome.cells_total as u64).into());
    mf.set("cells_done", outcome.rows.len().into());
    stamp_result_cache(&mut mf, outcome.cache_hits, outcome.cache_misses);
    let headers: Vec<String> = CELL_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cells", &headers, &outcome.rows);
    let t_headers: Vec<String> = TELEMETRY_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cell_telemetry", &t_headers, &outcome.telemetry);

    if let Some(s) = &shard {
        // A shard's stdout is informational; the authoritative joined
        // report comes from `sweep merge` over the emitted manifests.
        println!(
            "shard {}: {} of {} cells\n",
            s.label(),
            outcome.rows.len(),
            outcome.cells_total
        );
    }
    print!("{}", render_report(&outcome.rows));
    bench::emit_manifest(mf);
}
