//! Sharded evaluation sweep over the (workload × config) matrix, plus the
//! merge subcommand that joins per-shard manifests into one report and the
//! cross subcommand that runs the cross-input generalization matrix.
//!
//! ```text
//! sweep [--timing] [--jobs N] [--only SUBSTR]...   # run this process's shard
//! sweep merge FILE.jsonl...                        # join shard manifests
//! sweep cross [--timing] [--jobs N] [--only FAMILY]... [--eval INPUT]... [--from SOURCE]...
//! ```
//!
//! In-process parallelism comes from the work-stealing scheduler:
//! `--jobs N` (default `VP_SWEEP_JOBS`, then `VP_THREADS`/cores) sets the
//! worker count, and all workers share one `TraceStore`. `--jobs`
//! composes with sharding — each shard process runs its own N workers.
//!
//! Sharding comes from `VP_SHARD=i/n` (unset = the whole matrix). Each run
//! emits its cell rows in its `vp-manifest/2` manifest (`VP_TRACE=json:<path>`),
//! which `merge` validates for exact single coverage of the matrix before
//! printing the report an unsharded run would have produced, byte for byte.
//!
//! `cross` evaluates every multi-input family's (eval input × profile
//! source) matrix — same-input, foreign-input, and merged-profile columns
//! — under the strongest configuration (see `bench::cross`). `--only`
//! filters families, `--eval` the evaluated input, `--from` the profile
//! source column (an input name, `merged`, or a kind like `foreign`);
//! `VP_PROFILE_FROM` applies the same substitution to the standard sweep.

use bench::cross::{cross_cells, render_cross_report, CROSS_HEADERS};
use bench::sweep::{
    merge_manifests, render_report, sweep_cells, ShardSpec, CELL_HEADERS, TELEMETRY_HEADERS,
};
use vacuum_packing::sim::MachineConfig;

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}

fn merge_main(files: &[String]) -> ! {
    if files.is_empty() {
        fail("merge: no manifest files given");
    }
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| match std::fs::read_to_string(f) {
            Ok(c) => (f.clone(), c),
            Err(e) => fail(&format!("merge: cannot read {f}: {e}")),
        })
        .collect();
    match merge_manifests(&inputs) {
        Ok(report) => {
            print!("{report}");
            std::process::exit(0);
        }
        Err(e) => fail(&format!("merge: {e}")),
    }
}

/// Parses and installs a `--jobs` value (a positive integer).
fn set_jobs_arg(arg: Option<&String>) {
    match arg.and_then(|s| s.parse::<usize>().ok()).filter(|&n| n > 0) {
        Some(n) => bench::set_jobs(n),
        None => fail("--jobs needs a positive integer argument"),
    }
}

fn cross_main(args: &[String]) -> ! {
    let mut timing = false;
    let mut only: Vec<String> = Vec::new();
    let mut eval: Vec<String> = Vec::new();
    let mut from: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut push = |dst: &mut Vec<String>, what: &str| match it.next() {
            Some(f) => dst.push(f.clone()),
            None => fail(&format!("{what} needs a substring argument")),
        };
        match a.as_str() {
            "--timing" => timing = true,
            "--jobs" => set_jobs_arg(it.next()),
            "--only" => push(&mut only, "--only"),
            "--eval" => push(&mut eval, "--eval"),
            "--from" => push(&mut from, "--from"),
            other => fail(&format!(
                "unknown argument {other:?} (usage: sweep cross [--timing] [--jobs N] \
                 [--only FAMILY]... [--eval INPUT]... [--from SOURCE]...)"
            )),
        }
    }

    let mut mf = bench::init("sweep");
    mf.set("mode", "cross".into());
    mf.set("timing", timing.into());
    for (key, filters) in [("only", &only), ("eval", &eval), ("from", &from)] {
        if !filters.is_empty() {
            mf.set(
                key,
                vp_trace::Json::Arr(filters.iter().map(|s| s.as_str().into()).collect()),
            );
        }
    }

    let machine = MachineConfig::table2();
    let outcome = cross_cells(timing.then_some(&machine), &only, &eval, &from);

    mf.set("cells_total", (outcome.rows.len() as u64).into());
    let headers: Vec<String> = CROSS_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("generalization", &headers, &outcome.rows);
    let t_headers: Vec<String> = TELEMETRY_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cell_telemetry", &t_headers, &outcome.telemetry);

    print!("{}", render_cross_report(&outcome.rows));
    bench::emit_manifest(mf);
    std::process::exit(0);
}

fn main() {
    let args = bench::cli_args();
    if args.first().map(String::as_str) == Some("merge") {
        merge_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("cross") {
        cross_main(&args[1..]);
    }

    let mut timing = false;
    let mut only: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timing" => timing = true,
            "--jobs" => set_jobs_arg(it.next().as_ref()),
            "--only" => match it.next() {
                Some(f) => only.push(f),
                None => fail("--only needs a substring argument"),
            },
            other => fail(&format!(
                "unknown argument {other:?} (usage: sweep [--timing] [--jobs N] \
                 [--only SUBSTR]... | sweep merge FILE... | sweep cross [--timing] \
                 [--jobs N] [--only FAMILY]...)"
            )),
        }
    }

    let shard = match ShardSpec::from_env() {
        Ok(s) => s,
        Err(e) => fail(&e),
    };

    let mut mf = bench::init("sweep");
    if let Some(s) = &shard {
        mf.set("shard", s.label().into());
    }
    if !only.is_empty() {
        mf.set(
            "only",
            vp_trace::Json::Arr(only.iter().map(|s| s.as_str().into()).collect()),
        );
    }
    mf.set("timing", timing.into());
    if let Ok(spec) = std::env::var("VP_PROFILE_FROM") {
        if !spec.trim().is_empty() {
            mf.set("profile_from", spec.trim().into());
        }
    }

    let machine = MachineConfig::table2();
    let outcome = sweep_cells(shard.as_ref(), timing.then_some(&machine), &only);

    mf.set("cells_total", (outcome.cells_total as u64).into());
    mf.set("cells_done", outcome.rows.len().into());
    let headers: Vec<String> = CELL_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cells", &headers, &outcome.rows);
    let t_headers: Vec<String> = TELEMETRY_HEADERS.iter().map(|h| (*h).to_string()).collect();
    mf.table("cell_telemetry", &t_headers, &outcome.telemetry);

    if let Some(s) = &shard {
        // A shard's stdout is informational; the authoritative joined
        // report comes from `sweep merge` over the emitted manifests.
        println!(
            "shard {}: {} of {} cells\n",
            s.label(),
            outcome.rows.len(),
            outcome.cells_total
        );
    }
    print!("{}", render_report(&outcome.rows));
    bench::emit_manifest(mf);
}
