//! Figure 10: performance speedup from basic rescheduling of packages.

use bench::{evaluate_matrix, profile_suite, CONFIG_LABELS};
use vacuum_packing::core::PackConfig;
use vacuum_packing::metrics::{bar, TextTable};
use vacuum_packing::sim::MachineConfig;

fn main() {
    let mut mf = bench::init("fig10");
    mf.set("figure", 10u64.into());
    let machine = MachineConfig::table2();
    let profiled = profile_suite(Some(&machine));
    let configs = PackConfig::evaluation_matrix();
    let matrix = evaluate_matrix(&profiled, &configs, Some(&machine));

    println!("Figure 10: Speedup from package relayout and rescheduling\n");
    let mut t = TextTable::new(vec![
        "benchmark",
        CONFIG_LABELS[0],
        CONFIG_LABELS[1],
        CONFIG_LABELS[2],
        CONFIG_LABELS[3],
        "base Mcyc",
        "bar(inf/link)",
    ]);
    let mut sums = [0.0f64; 4];
    for (pw, outs) in profiled.iter().zip(&matrix) {
        let mut row = vec![pw.label.clone()];
        for (i, o) in outs.iter().enumerate() {
            let s = o.speedup.unwrap_or(0.0);
            sums[i] += s;
            row.push(format!("{s:.3}"));
        }
        row.push(format!("{:.2}", pw.base_cycles.unwrap_or(0) as f64 / 1e6));
        row.push(bar(outs[3].speedup.unwrap_or(1.0) - 0.9, 0.4, 25));
        t.row(row);
    }
    let n = profiled.len() as f64;
    let mut row = vec!["average".to_string()];
    for s in sums {
        row.push(format!("{:.3}", s / n));
    }
    row.push(String::new());
    row.push(String::new());
    t.row(row);
    println!("{t}");
    println!("Paper reference: average speedup improves across the four configurations,");
    println!("correlating with coverage; 197.parser gains ~8% extra from linking.");
    bench::add_table(&mut mf, "fig10_speedup", &t);
    bench::emit_manifest(mf);
}
