//! Figure 8: percent of dynamic instructions executed from within
//! packages, for the four {inference} x {linking} configurations.

use bench::{evaluate_matrix, profile_suite, CONFIG_LABELS};
use vacuum_packing::core::PackConfig;
use vacuum_packing::metrics::{bar, pct, TextTable};

fn main() {
    let mut mf = bench::init("fig8");
    mf.set("figure", 8u64.into());
    let profiled = profile_suite(None);
    let configs = PackConfig::evaluation_matrix();
    let matrix = evaluate_matrix(&profiled, &configs, None);

    println!("Figure 8: Percent of dynamic instructions from within packages\n");
    let mut t = TextTable::new(vec![
        "benchmark",
        CONFIG_LABELS[0],
        CONFIG_LABELS[1],
        CONFIG_LABELS[2],
        CONFIG_LABELS[3],
        "phases",
        "packages",
        "bar(inf/link)",
    ]);
    let mut sums = [0.0f64; 4];
    for (pw, outs) in profiled.iter().zip(&matrix) {
        for (i, o) in outs.iter().enumerate() {
            sums[i] += o.coverage;
        }
        t.row(vec![
            pw.label.clone(),
            pct(outs[0].coverage),
            pct(outs[1].coverage),
            pct(outs[2].coverage),
            pct(outs[3].coverage),
            outs[3].phases.to_string(),
            outs[3].packages.to_string(),
            bar(outs[3].coverage, 1.0, 25),
        ]);
    }
    let n = profiled.len() as f64;
    t.row(vec![
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        String::new(),
        String::new(),
        bar(sums[3] / n, 1.0, 25),
    ]);
    println!("{t}");
    println!("Paper reference: >80% average coverage with inference and linking enabled.");
    bench::add_table(&mut mf, "fig8_coverage", &t);
    bench::emit_manifest(mf);
}
