//! Table 2: the simulated EPIC machine model.

use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::TextTable;
use vacuum_packing::sim::MachineConfig;

fn main() {
    let mut mf = bench::init("table2");
    mf.set("table", 2u64.into());
    let m = MachineConfig::table2();
    let h = HsdConfig::table2();
    println!("Table 2: Simulated EPIC machine model\n");
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec![
        "Instruction issue".to_string(),
        format!("{} units", m.issue_width),
    ]);
    t.row(vec![
        "Integer ALU".to_string(),
        format!("{} units", m.int_alu_units),
    ]);
    t.row(vec![
        "Floating point unit".to_string(),
        format!("{} units", m.fp_units),
    ]);
    t.row(vec![
        "Memory unit".to_string(),
        format!("{} units", m.mem_units),
    ]);
    t.row(vec![
        "Branch unit".to_string(),
        format!("{} units", m.branch_units),
    ]);
    t.row(vec![
        "L1 data cache".to_string(),
        format!("{} KB", m.l1d_bytes / 1024),
    ]);
    t.row(vec![
        "Unified L2 cache".to_string(),
        format!("{} KB", m.l2_bytes / 1024),
    ]);
    t.row(vec![
        "L1 instruction cache".to_string(),
        format!("{} KB", m.l1i_bytes / 1024),
    ]);
    t.row(vec![
        "RAS size".to_string(),
        format!("{} entry", m.ras_entries),
    ]);
    t.row(vec![
        "BTB size".to_string(),
        format!("{} entry", m.btb_entries),
    ]);
    t.row(vec![
        "Branch resolution".to_string(),
        format!("{} cycles", m.branch_resolution),
    ]);
    t.row(vec![
        "Branch predictor".to_string(),
        format!("{}-bit history gshare", m.gshare_bits),
    ]);
    t.row(vec![
        "BBB associativity".to_string(),
        format!("{}-way", h.bbb_ways),
    ]);
    t.row(vec![
        "Num BBB sets".to_string(),
        format!("{} set", h.bbb_sets),
    ]);
    t.row(vec![
        "Candidate branch threshold".to_string(),
        h.candidate_threshold.to_string(),
    ]);
    t.row(vec![
        "Refresh timer interval".to_string(),
        format!("{} br", h.refresh_interval),
    ]);
    t.row(vec![
        "Clear timer interval".to_string(),
        format!("{} br", h.clear_interval),
    ]);
    t.row(vec![
        "Hot spot detection cntr size".to_string(),
        format!("{} bits", h.hdc_bits),
    ]);
    t.row(vec![
        "Hot spot detection cntr inc".to_string(),
        h.hdc_inc.to_string(),
    ]);
    t.row(vec![
        "Hot spot detection cntr dec".to_string(),
        h.hdc_dec.to_string(),
    ]);
    t.row(vec![
        "Exec and taken counter size".to_string(),
        format!("{} bits", h.counter_bits),
    ]);
    println!("{t}");
    bench::add_table(&mut mf, "table2", &t);
    bench::emit_manifest(mf);
}
