//! Table 3: code expansion from package construction.

use bench::{evaluate_matrix, profile_suite};
use vacuum_packing::core::PackConfig;
use vacuum_packing::metrics::{pct, TextTable};

fn main() {
    let mut mf = bench::init("table3");
    mf.set("table", 3u64.into());
    let profiled = profile_suite(None);
    let configs = [PackConfig::default()];
    let matrix = evaluate_matrix(&profiled, &configs, None);

    println!("Table 3: Code expansion\n");
    let mut t = TextTable::new(vec![
        "benchmark",
        "% incr in size",
        "% static inst selected",
        "replication",
        "packages",
    ]);
    let (mut se, mut ss, mut sr) = (0.0f64, 0.0f64, 0.0f64);
    for (pw, outs) in profiled.iter().zip(&matrix) {
        let o = &outs[0];
        se += o.expansion;
        ss += o.selected_fraction;
        sr += o.replication;
        t.row(vec![
            pw.label.clone(),
            pct(o.expansion),
            pct(o.selected_fraction),
            format!("{:.2}", o.replication),
            o.packages.to_string(),
        ]);
    }
    let n = profiled.len() as f64;
    t.row(vec![
        "average".to_string(),
        pct(se / n),
        pct(ss / n),
        format!("{:.2}", sr / n),
        String::new(),
    ]);
    println!("{t}");
    println!("Paper reference: average 12% growth, 4.5% selected, replication ~2.6.");
    bench::add_table(&mut mf, "table3", &t);
    bench::emit_manifest(mf);
}
