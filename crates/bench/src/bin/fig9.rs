//! Figure 9: categorization of hot spot branch behavior across benchmarks.

use bench::profile_suite;
use vacuum_packing::metrics::{categorize, pct, TextTable, CATEGORIES};

fn main() {
    let mut mf = bench::init("fig9");
    mf.set("figure", 9u64.into());
    let profiled = profile_suite(None);
    println!(
        "Figure 9: Categorization of hot spot branch behavior (% of hot-spot branch executions)\n"
    );
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(CATEGORIES.iter().map(|c| c.label().to_string()));
    headers.push("hot cov %".to_string());
    let mut t = TextTable::new(headers);
    let mut sums = [0.0f64; 6];
    for pw in &profiled {
        let cat = categorize(&pw.phases, &pw.branch_counts, 0.7);
        let mut row = vec![pw.label.clone()];
        for (i, _) in CATEGORIES.iter().enumerate() {
            sums[i] += cat.fraction[i];
            row.push(pct(cat.fraction[i]));
        }
        row.push(pct(cat.hot_coverage()));
        t.row(row);
    }
    let n = profiled.len() as f64;
    let mut row = vec!["average".to_string()];
    for s in sums {
        row.push(pct(s / n));
    }
    row.push(String::new());
    t.row(row);
    println!("{t}");
    println!("Paper reference: unique branches mostly biased; Multi High+Low are the");
    println!("phase-customization opportunity (e.g. ~3% Multi High for 099.go).");
    bench::add_table(&mut mf, "fig9_categorization", &t);
    bench::emit_manifest(mf);
}
