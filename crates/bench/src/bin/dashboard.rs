//! Renders the offline observability dashboard, and diffs run manifests.
//!
//! ```text
//! dashboard [--out FILE.html] [--only SUBSTR]...
//! dashboard manifest-diff OLD.jsonl NEW.jsonl [--max-span-regression PCT] [--history DIR]
//! ```
//!
//! The default mode profiles the (possibly `--only`-filtered) suite,
//! packs each workload under the strongest configuration (`inf/link`),
//! and writes a self-contained HTML page — phase timeline and
//! package-residency Gantt per workload, the Figure 8 coverage heatmap,
//! a cross-input generalization heatmap for the selected multi-input
//! families (same/foreign/merged profile columns; see `bench::cross`),
//! a span-tree flame view of this run's own cost, and the replay
//! throughput trend across committed `BENCH_*.json` baselines. No
//! external resources; the page works from `file://` offline.
//!
//! `manifest-diff` aligns two `vp-manifest` JSONL runs and attributes
//! counter/span/histogram movement — CI's observability regression
//! gate. With `--history DIR` each span gates against the tolerance
//! band of its last-K warehoused runs (median + max(3·MAD, the
//! threshold); see `bench::history`) instead of the single old manifest;
//! spans without enough history keep the single-baseline rule.
//!
//! Exit codes are distinct so callers can tell a verdict from a broken
//! invocation: **0** = no regression, **1** = regression found, **2** =
//! usage or parse error (unreadable file, no manifest line, bad flag).

use bench::cross::{cross_cells, families};
use bench::dashboard::{
    collect_timeline, generalization_heatmap, load_bench_trend, load_history_series,
    render_dashboard_html, Dashboard,
};
use bench::manifest_diff::{diff_manifests, history_span_bands};
use bench::CONFIG_LABELS;
use vacuum_packing::core::PackConfig;
use vacuum_packing::metrics::evaluate;
use vacuum_packing::opt::OptConfig;
use vacuum_packing::workloads::suite;

/// Usage/parse errors — anything that prevented producing a verdict.
const EXIT_USAGE: i32 = 2;
/// A regression verdict (the diff itself worked).
const EXIT_REGRESSION: i32 = 1;

fn fail(msg: &str) -> ! {
    eprintln!("dashboard: {msg}");
    std::process::exit(EXIT_USAGE);
}

/// Default gate: fail on any span more than 25% slower than the old run
/// (single-baseline mode) or above the history band (with `--history`).
const DEFAULT_MAX_SPAN_REGRESSION_PCT: f64 = 25.0;

fn manifest_diff_main(args: &[String]) -> ! {
    let mut files: Vec<String> = Vec::new();
    let mut max_pct = DEFAULT_MAX_SPAN_REGRESSION_PCT;
    let mut history_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-span-regression" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_pct = v,
                None => fail("--max-span-regression needs a numeric percent"),
            },
            "--history" => match it.next() {
                Some(d) => history_dir = Some(d.clone()),
                None => fail("--history needs a warehouse directory argument"),
            },
            _ => files.push(a.clone()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        fail(
            "usage: dashboard manifest-diff OLD.jsonl NEW.jsonl \
             [--max-span-regression PCT] [--history DIR]",
        );
    };
    // Each side: first parseable manifest line in the file (a JSONL trace
    // may hold spans/events before the trailing manifest).
    let load = |path: &str| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .find_map(|l| vp_trace::parse_manifest_line(l).ok())
            .unwrap_or_else(|| fail(&format!("{path}: no manifest line found")))
    };
    let (old, new) = (load(old_path), load(new_path));
    let diff = diff_manifests(&old, &new);
    print!("{}", diff.render());

    let bands = match &history_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let w = bench::history::Warehouse::open(dir)
                .unwrap_or_else(|e| fail(&format!("--history {}: {e}", dir.display())));
            let records = w
                .records()
                .unwrap_or_else(|e| fail(&format!("--history {}: {e}", dir.display())));
            let bands = history_span_bands(&records, &diff.bins.1);
            println!(
                "\nhistory gate: {} span bands from {} warehoused runs in {}",
                bands.len(),
                records.len(),
                dir.display()
            );
            bands
        }
        None => std::collections::BTreeMap::new(),
    };
    let failures = diff.gate_failures(&bands, max_pct);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("dashboard: FAIL — {f}");
        }
        std::process::exit(EXIT_REGRESSION);
    }
    let worst = diff.worst_span_regression_pct();
    println!("\nOK — worst span regression {worst:.1}% within the {max_pct:.1}% gate");
    std::process::exit(0);
}

fn main() {
    let args = bench::cli_args();
    if args.first().map(String::as_str) == Some("manifest-diff") {
        manifest_diff_main(&args[1..]);
    }

    let mut out_path = "dashboard.html".to_string();
    let mut only: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => fail("--out needs a file argument"),
            },
            "--only" => match it.next() {
                Some(f) => only.push(f),
                None => fail("--only needs a substring argument"),
            },
            other => fail(&format!(
                "unknown argument {other:?} (usage: dashboard [--out FILE.html] [--only SUBSTR]... | dashboard manifest-diff OLD NEW)"
            )),
        }
    }

    let mut mf = bench::init("dashboard");
    mf.set("out", out_path.as_str().into());

    // Span capture needs an installed sink or a scope; force-enable so
    // the flame view is populated even without VP_TRACE.
    let ((), _report) = vp_trace::scoped(|| {
        let _root = vp_trace::span("dashboard.render");
        let workloads: Vec<_> = suite(bench::scale())
            .into_iter()
            .filter(|w| only.is_empty() || only.iter().any(|f| w.label().contains(f)))
            .collect();
        if workloads.is_empty() {
            fail("no workloads match the --only filters");
        }

        // inf/link — the paper's strongest configuration — drives the
        // residency lanes; the heatmap covers the whole matrix.
        let matrix = PackConfig::evaluation_matrix();
        let timelines: Vec<_> = workloads
            .iter()
            .map(|w| {
                collect_timeline(w, &matrix[3]).unwrap_or_else(|e| panic!("{}: {e}", w.label()))
            })
            .collect();

        let profiled = bench::profile_workloads(workloads, None);
        let heatmap = {
            let _s = vp_trace::span("dashboard.heatmap");
            profiled
                .iter()
                .map(|pw| {
                    let row = matrix
                        .iter()
                        .map(|cfg| {
                            evaluate(pw, cfg, &OptConfig::default(), None)
                                .unwrap_or_else(|e| panic!("{}: {e}", pw.label))
                                .coverage
                        })
                        .collect();
                    (pw.label.clone(), row)
                })
                .collect()
        };
        let trend = load_bench_trend(std::path::Path::new("."));
        // Cross-run sparklines, when a run-history warehouse is around.
        let history = bench::history::dir_from_env()
            .and_then(|dir| bench::history::Warehouse::open(&dir).ok())
            .and_then(|w| w.records().ok())
            .map(|r| load_history_series(&r))
            .unwrap_or_default();

        // Generalization heatmap for every selected multi-input family;
        // the section disappears when --only selects none.
        let fams: Vec<String> = families(bench::scale())
            .into_iter()
            .filter(|(_, inputs)| {
                inputs
                    .iter()
                    .any(|w| only.is_empty() || only.iter().any(|f| w.label().contains(f)))
            })
            .map(|(b, _)| b)
            .collect();
        let (generalization, generalization_cols) = if fams.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let _s = vp_trace::span("dashboard.generalization");
            generalization_heatmap(&cross_cells(None, &fams, &[], &[]).cells)
        };

        let d = Dashboard {
            timelines,
            heatmap,
            generalization,
            generalization_cols,
            flame: vp_trace::tree_snapshot(),
            sched: bench::sched_manifest_value(),
            trend,
            history,
        };
        let html = render_dashboard_html(&d);
        std::fs::write(&out_path, &html)
            .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
        eprintln!(
            "dashboard: wrote {out_path} ({} workloads x {} configs, {} bytes)",
            d.timelines.len(),
            CONFIG_LABELS.len(),
            html.len()
        );
    });
    mf.set(
        "span_tree_nodes",
        (vp_trace::tree_snapshot().len() as u64).into(),
    );
    bench::emit_manifest(mf);
}
