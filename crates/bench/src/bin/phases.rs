//! Phase timeline: when each hot spot was detected over a workload's run,
//! and which unique phase every detection belongs to — the view the
//! Vacuum Packing software side has of the program's temporal behavior.
//!
//! ```text
//! cargo run --release -p bench --bin phases -- "124.m88ksim A"
//! ```

use vacuum_packing::hsd::{assign_phases, FilterConfig, HotSpotDetector, HsdConfig};
use vacuum_packing::prelude::*;

fn main() {
    let mut mf = bench::init("phases");
    let label = bench::cli_args()
        .into_iter()
        .next()
        .unwrap_or_else(|| "124.m88ksim A".to_string());
    let Some(w) = vacuum_packing::workloads::by_label(&label, bench::scale()) else {
        eprintln!("unknown workload {label:?}; try e.g. \"300.twolf A\"");
        std::process::exit(1);
    };
    let layout = Layout::natural(&w.program);
    let mut hsd = HotSpotDetector::new(HsdConfig::table2());
    let stats = Executor::new(&w.program, &layout)
        .run(&mut hsd, &RunConfig::default())
        .expect("workload runs");
    let (phases, assignment) = assign_phases(hsd.records(), &FilterConfig::default());

    println!(
        "{label}: {} retired instructions, {} raw detections, {} phases\n",
        stats.retired,
        hsd.records().len(),
        phases.len()
    );

    // Timeline: bucket detections over the branch axis.
    const COLS: usize = 72;
    let total = hsd.branches_retired().max(1);
    let mut lanes = vec![vec![b' '; COLS]; phases.len()];
    for (rec, &phase) in hsd.records().iter().zip(&assignment) {
        let col = ((rec.at_branch * COLS as u64) / total).min(COLS as u64 - 1) as usize;
        lanes[phase][col] = b'#';
    }
    println!("detections over the run (one row per phase, time left to right):");
    for (i, lane) in lanes.iter().enumerate() {
        let ph = &phases[i];
        println!(
            "  phase {i:>2} |{}| {} branches, {} detections",
            String::from_utf8_lossy(lane),
            ph.branches.len(),
            ph.detections
        );
    }

    println!("\nper-phase hot branches:");
    for ph in &phases {
        println!(
            "  phase {} (first at branch {}):",
            ph.id, ph.first_detected_at
        );
        for (addr, b) in ph.branches.iter().take(8) {
            if let Some(loc) = layout.branch_at(*addr) {
                println!(
                    "    {:>10} in `{}`: taken {:>5.1}%  weight {}",
                    format!("{loc}"),
                    w.program.func(loc.func).name,
                    100.0 * b.taken_fraction(),
                    b.avg_exec()
                );
            }
        }
        if ph.branches.len() > 8 {
            println!("    ... and {} more", ph.branches.len() - 8);
        }
    }

    mf.set("workload", label.as_str().into());
    mf.set("retired", stats.retired.into());
    mf.set("raw_detections", (hsd.records().len() as u64).into());
    mf.set("phases", (phases.len() as u64).into());
    bench::emit_manifest(mf);
}
