//! Shared machinery for the paper's table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (see DESIGN.md's experiment index); this
//! module provides the suite sweep they share.
//!
//! Environment knobs:
//!
//! * `VP_SCALE` — workload scale multiplier (default 1);
//! * `VP_THREADS` — sweep parallelism (default: available cores, capped at
//!   the suite size).

use std::sync::Mutex;
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::{profile, ProfiledWorkload};
use vacuum_packing::sim::MachineConfig;
use vacuum_packing::workloads::{suite, Workload};

/// Workload scale from `VP_SCALE` (default 1).
pub fn scale() -> u32 {
    std::env::var("VP_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Sweep parallelism from `VP_THREADS` (default: available cores).
pub fn threads() -> usize {
    std::env::var("VP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
        .max(1)
}

/// Profiles the whole Table 1 suite in parallel, preserving suite order.
/// Timing (the original binary's cycles) is collected when `machine` is
/// given — required by the Figure 10 speedup binary.
pub fn profile_suite(machine: Option<&MachineConfig>) -> Vec<ProfiledWorkload> {
    let workloads: Vec<Workload> = suite(scale());
    let n = workloads.len();
    let results: Mutex<Vec<Option<ProfiledWorkload>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let work: Mutex<Vec<(usize, Workload)>> =
        Mutex::new(workloads.into_iter().enumerate().collect());

    std::thread::scope(|s| {
        for _ in 0..threads().min(n) {
            s.spawn(|| loop {
                let Some((idx, w)) = work.lock().expect("work queue").pop() else { break };
                let label = w.label();
                let pw = profile(&label, w.program, &HsdConfig::table2(), machine)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                results.lock().expect("results")[idx] = Some(pw);
            });
        }
    });
    results
        .into_inner()
        .expect("results")
        .into_iter()
        .map(|o| o.expect("every workload profiled"))
        .collect()
}

/// The paper's four-bar configuration labels, in Figure 8/10 order.
pub const CONFIG_LABELS: [&str; 4] =
    ["noInf/noLink", "noInf/link", "inf/noLink", "inf/link"];

/// Evaluates every (workload, configuration) cell in parallel; the result
/// is indexed `[workload][config]`.
pub fn evaluate_matrix(
    profiled: &[ProfiledWorkload],
    configs: &[vacuum_packing::core::PackConfig],
    machine: Option<&MachineConfig>,
) -> Vec<Vec<vacuum_packing::metrics::ConfigOutcome>> {
    use vacuum_packing::metrics::evaluate;
    use vacuum_packing::opt::OptConfig;

    let cells: Vec<(usize, usize)> = (0..profiled.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let n = cells.len();
    let results: Mutex<Vec<Option<vacuum_packing::metrics::ConfigOutcome>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let work: Mutex<Vec<(usize, (usize, usize))>> =
        Mutex::new(cells.into_iter().enumerate().collect());
    std::thread::scope(|s| {
        for _ in 0..threads().min(n) {
            s.spawn(|| loop {
                let Some((idx, (w, c))) = work.lock().expect("work queue").pop() else { break };
                let out = evaluate(&profiled[w], &configs[c], &OptConfig::default(), machine)
                    .unwrap_or_else(|e| panic!("{}: {e}", profiled[w].label));
                results.lock().expect("results")[idx] = Some(out);
            });
        }
    });
    let flat: Vec<vacuum_packing::metrics::ConfigOutcome> = results
        .into_inner()
        .expect("results")
        .into_iter()
        .map(|o| o.expect("every cell evaluated"))
        .collect();
    flat.chunks(configs.len()).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        assert!(scale() >= 1);
        assert!(threads() >= 1);
    }
}
