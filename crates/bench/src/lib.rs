//! Shared machinery for the paper's table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (see DESIGN.md's experiment index); this
//! module provides the suite sweep they share, plus the tracing/manifest
//! glue ([`init`], [`emit_manifest`]) and a dependency-free micro-benchmark
//! harness ([`micro`]) for the `benches/` targets.
//!
//! Environment knobs:
//!
//! * `VP_SCALE` — workload scale multiplier (default 1);
//! * `VP_THREADS` — sweep parallelism (default: available cores, capped at
//!   the suite size);
//! * `VP_SWEEP_JOBS` — worker count of the in-process work-stealing sweep
//!   scheduler (see [`steal`]); overridden by a binary's `--jobs N` flag,
//!   defaults to `VP_THREADS`;
//! * `VP_TRACE` — `summary`, `json`, or `json:<path>` (see `vp-trace`);
//!   every binary also accepts `--json` as a shorthand for `VP_TRACE=json`;
//! * `VP_TRACE_CACHE_MB` — byte budget of the retired-trace capture cache
//!   (default 512) that lets repeated profiles of one workload replay a
//!   recorded stream instead of re-executing (see
//!   `vp_exec::TraceStore`); the `trace_store.*` counters in each run
//!   manifest report captures/replays/hits/evictions;
//! * `VP_TRACE_DIR` / `VP_TRACE_DISK_MB` — on-disk persistence tier of the
//!   trace cache (see `vp_exec::DiskTier`): captures survive across
//!   processes, so warmed reruns and sharded sweeps skip live execution;
//! * `VP_SHARD` — `i/n` cell partition for the `sweep` binary (see
//!   [`sweep::ShardSpec`]); shard manifests are joined by `sweep merge`;
//! * `VP_DIFF` — `off`, `report` (default), or `strict` differential
//!   replay of every packed binary against its original capture (see
//!   `vp_exec::diff`); `strict` panics the evaluating cell — and thereby
//!   fails the sweep — on any unexplained divergence;
//! * `VP_PROFILE_FROM` — profile-source substitution for the standard
//!   sweep: an input name (e.g. `A`) evaluates every multi-input family
//!   member under that sibling's profile, `merged` under the family's
//!   merged profile (see [`cross::substitute_profiles`]);
//! * `VP_MERGE_WEIGHT` — `retired` (default) or `uniform` weighting of
//!   per-run counts when merging profiles (see
//!   `vp_hsd::merge::Weighting`).

mod cache;
pub mod cross;
pub mod dashboard;
pub mod history;
pub mod manifest_diff;
pub mod micro;
pub mod steal;
pub mod sweep;
pub mod watch;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use vacuum_packing::hsd::HsdConfig;
use vacuum_packing::metrics::{profile, ProfiledWorkload, TextTable};
use vacuum_packing::sim::MachineConfig;
use vacuum_packing::workloads::{suite, Workload};
use vp_trace::{Manifest, Value};

/// Workload scale from `VP_SCALE` (default 1).
pub fn scale() -> u32 {
    std::env::var("VP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Sweep parallelism from `VP_THREADS` (default: available cores).
pub fn threads() -> usize {
    std::env::var("VP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
        .max(1)
}

/// `--jobs N` override installed by a binary's argument parser; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs the `--jobs N` CLI override consulted by [`jobs`].
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// Worker count of the in-process work-stealing sweep scheduler.
///
/// Precedence: the `--jobs N` CLI flag (via [`set_jobs`]), then the
/// `VP_SWEEP_JOBS` environment knob, then [`threads`] (i.e. `VP_THREADS`
/// or the machine's core count).
pub fn jobs() -> usize {
    let cli = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if cli > 0 {
        return cli;
    }
    std::env::var("VP_SWEEP_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(threads)
}

/// Scheduler telemetry accumulated across every [`parallel_sweep`] of this
/// process (a sweep binary runs several: profiling, then evaluation).
#[derive(Debug, Clone, Default)]
struct SchedTotals {
    runs: u64,
    jobs: usize,
    tasks: u64,
    steals: u64,
    wall_ms: f64,
    /// Summed per-worker busy/executed/stolen, indexed by worker id.
    workers: Vec<steal::WorkerStats>,
}

static SCHED_TOTALS: Mutex<Option<SchedTotals>> = Mutex::new(None);

fn record_sched(stats: &steal::SchedStats) {
    let Ok(mut guard) = SCHED_TOTALS.lock() else {
        return;
    };
    let t = guard.get_or_insert_with(SchedTotals::default);
    t.runs += 1;
    t.jobs = t.jobs.max(stats.jobs);
    t.tasks += stats.tasks as u64;
    t.steals += stats.steals;
    t.wall_ms += stats.wall_ms;
    if t.workers.len() < stats.workers.len() {
        t.workers.resize(stats.workers.len(), Default::default());
    }
    for (acc, w) in t.workers.iter_mut().zip(&stats.workers) {
        acc.executed += w.executed;
        acc.stolen += w.stolen;
        acc.busy_ms += w.busy_ms;
    }
}

/// The process's aggregated scheduler telemetry as a manifest value:
/// `{jobs, runs, tasks, steals, workers: [{executed, stolen, busy_ms,
/// utilization}]}`, where a worker's utilization is its busy time over the
/// summed scheduler wall time. `None` before the first parallel sweep.
pub fn sched_manifest_value() -> Option<vp_trace::Json> {
    use vp_trace::Json;
    let totals = SCHED_TOTALS.lock().ok()?.clone()?;
    let workers: Vec<Json> = totals
        .workers
        .iter()
        .map(|w| {
            let util = if totals.wall_ms > 0.0 {
                (w.busy_ms / totals.wall_ms).clamp(0.0, 1.0)
            } else {
                0.0
            };
            Json::Obj(vec![
                ("executed".to_string(), w.executed.into()),
                ("stolen".to_string(), w.stolen.into()),
                ("busy_ms".to_string(), Json::F64(round3(w.busy_ms))),
                ("utilization".to_string(), Json::F64(round3(util))),
            ])
        })
        .collect();
    Some(Json::Obj(vec![
        ("jobs".to_string(), (totals.jobs as u64).into()),
        ("runs".to_string(), totals.runs.into()),
        ("tasks".to_string(), totals.tasks.into()),
        ("steals".to_string(), totals.steals.into()),
        ("wall_ms".to_string(), Json::F64(round3(totals.wall_ms))),
        ("workers".to_string(), Json::Arr(workers)),
    ]))
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// Initializes tracing for a table/figure binary and starts its run
/// manifest: honours `VP_TRACE`, treats a `--json` CLI flag as
/// `VP_TRACE=json`, and pre-populates the manifest with the run
/// configuration (`scale`, `threads`).
pub fn init(bin: &str) -> Manifest {
    if std::env::args().skip(1).any(|a| a == "--json") && !vp_trace::installed() {
        vp_trace::init_from_spec("json");
    } else {
        vp_trace::init_from_env();
    }
    let mut mf = Manifest::new(bin);
    mf.set("scale", Value::from(scale() as u64).to_json());
    mf.set("threads", Value::from(threads() as u64).to_json());
    mf.set("jobs", Value::from(jobs() as u64).to_json());
    let cache = vacuum_packing::exec::TraceStore::global().capacity_bytes() / (1024 * 1024);
    mf.set("trace_cache_mb", Value::from(cache as u64).to_json());
    mf
}

/// CLI arguments after the binary name, with the flags [`init`] consumes
/// (`--json`) removed — use in binaries that parse their own arguments.
pub fn cli_args() -> Vec<String> {
    std::env::args().skip(1).filter(|a| a != "--json").collect()
}

/// Attaches a rendered [`TextTable`] to a manifest under `name`.
pub fn add_table(mf: &mut Manifest, name: &str, t: &TextTable) {
    mf.table(name, t.headers(), t.rows());
}

/// Stamps span/counter totals plus the work-stealing scheduler's
/// process-wide telemetry (`sweep` object: jobs, steals, per-worker
/// utilization) into the manifest, emits it to the installed sink, and
/// flushes. Call once at the end of a binary's `main`.
///
/// When `VP_HISTORY_DIR` is set the stamped manifest is also ingested
/// into the run-history warehouse ([`history`]) — with or without a
/// trace sink installed, so `VP_HISTORY_DIR` alone is enough to start
/// accumulating cross-run telemetry. Warehouse failures warn on stderr
/// and never affect the run.
pub fn emit_manifest(mut mf: Manifest) {
    let history_dir = history::dir_from_env();
    if vp_trace::installed() || history_dir.is_some() {
        if let Some(sched) = sched_manifest_value() {
            mf.set("sweep", sched);
        }
        mf.stamp();
    }
    if vp_trace::installed() {
        mf.emit();
    }
    if history_dir.is_some() {
        history::ingest_at_exit(&mf.render());
    }
    vp_trace::finish();
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs labeled `jobs` on [`jobs()`](jobs) workers of the work-stealing
/// scheduler ([`steal::run_stealing`]), preserving input order. Worker
/// panics are caught per job, so one failure neither starves the queues
/// nor takes down the other workers; a failed job's `Err` string carries
/// both the originating job's label and the panic payload, so a crash
/// deep inside a sweep names its cell. Scheduler telemetry (steals,
/// per-worker utilization) accumulates process-wide and is stamped into
/// the run manifest by [`emit_manifest`].
pub(crate) fn parallel_sweep<J, T>(
    labeled: Vec<(String, J)>,
    f: impl Fn(&J) -> T + Sync,
) -> Vec<(String, Result<T, String>)>
where
    J: Send + Sync,
    T: Send,
{
    let n = labeled.len();
    let (labels, inputs): (Vec<String>, Vec<J>) = labeled.into_iter().unzip();
    let (outs, stats) = steal::run_stealing(jobs(), n, |t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&inputs[t])))
            .map_err(|p| format!("{}: {}", labels[t], panic_message(p.as_ref())))
    });
    record_sched(&stats);
    let outs = outs
        .into_iter()
        .zip(&labels)
        .map(|(o, l)| o.unwrap_or_else(|| Err(format!("{l}: job was never run"))));
    labels.iter().cloned().zip(outs).collect()
}

/// Per-job observability captured by [`parallel_sweep_scoped`]: wall time
/// plus the job's own vp-trace scope report (counters, spans, flight
/// events recorded on the worker thread while the job ran — and nothing
/// from any other job).
#[derive(Debug, Clone)]
pub(crate) struct JobTelemetry {
    /// Wall-clock job duration in milliseconds.
    pub wall_ms: f64,
    /// The job's isolated trace scope.
    pub report: vp_trace::TraceReport,
}

/// A labeled job outcome paired with the job's [`JobTelemetry`].
pub(crate) type ScopedSweepResults<T> = Vec<(String, Result<(T, JobTelemetry), String>)>;

/// Trace-store hit ratio from a job's counter deltas: hits (memory +
/// disk) over hits + live captures. `None` when the job never touched
/// the store.
pub(crate) fn store_hit_ratio(report: &vp_trace::TraceReport) -> Option<f64> {
    let hits = report.counter("trace_store.hits") + report.counter("trace_store.disk_hits");
    let total = hits + report.counter("trace_store.captures");
    (total > 0).then(|| hits as f64 / total as f64)
}

/// Like [`parallel_sweep`], with per-job observability:
///
/// * each job runs inside its own [`vp_trace::scoped`] region, so span and
///   counter aggregates are attributed to the cell that produced them
///   instead of leaking across concurrently-running cells;
/// * each job's outermost span (`bench.cell`) adopts the *dispatching*
///   thread's span context, keeping worker work attached to the caller's
///   span tree;
/// * start/finish progress lines go to stderr with wall time and
///   trace-store hit ratio, so long sharded sweeps are not silent.
pub(crate) fn parallel_sweep_scoped<J, T>(
    what: &'static str,
    jobs: Vec<(String, J)>,
    f: impl Fn(&J) -> T + Sync,
) -> ScopedSweepResults<T>
where
    J: Send + Sync,
    T: Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let ctx = vp_trace::current_span_context();
    let total = jobs.len();
    let done = AtomicUsize::new(0);
    let jobs: Vec<(String, (String, J))> = jobs
        .into_iter()
        .map(|(label, j)| (label.clone(), (label, j)))
        .collect();
    parallel_sweep(jobs, |(label, j)| {
        eprintln!("{what}: {label} ...");
        let worker = steal::current_worker().unwrap_or(0) as u64;
        if vp_trace::feed_enabled() {
            vp_trace::feed(
                "cell.start",
                &[
                    ("cell", Value::from(label.as_str())),
                    ("worker", Value::from(worker)),
                ],
            );
        }
        let start = std::time::Instant::now();
        let (out, report) = vp_trace::scoped(|| {
            let _cell = vp_trace::span_in(&ctx, "bench.cell");
            f(j)
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        let ratio = store_hit_ratio(&report)
            .map_or_else(|| "-".to_string(), |r| format!("{:.0}%", r * 100.0));
        eprintln!(
            "{what}: {label} done in {wall_ms:.1} ms (store hits {ratio}) [{finished}/{total}]"
        );
        if vp_trace::feed_enabled() {
            // Per-interval store telemetry: this cell's own hit/capture
            // deltas from its isolated scope, plus one consistent
            // occupancy snapshot of the shared store.
            let hits = report.counter("trace_store.hits") + report.counter("trace_store.disk_hits");
            let store = vacuum_packing::exec::TraceStore::global().snapshot();
            vp_trace::feed(
                "cell.done",
                &[
                    ("cell", Value::from(label.as_str())),
                    ("worker", Value::from(worker)),
                    ("wall_ms", Value::from((wall_ms * 1e3).round() / 1e3)),
                    ("hits", Value::from(hits)),
                    (
                        "captures",
                        Value::from(report.counter("trace_store.captures")),
                    ),
                    ("done", Value::from(finished as u64)),
                    ("total", Value::from(total as u64)),
                    ("store_entries", Value::from(store.entries as u64)),
                    (
                        "store_resident_bytes",
                        Value::from(store.resident_bytes as u64),
                    ),
                ],
            );
        }
        (out, JobTelemetry { wall_ms, report })
    })
}

/// Unwraps a sweep's outcomes, reporting *every* failing label before
/// panicking once with a clean summary.
fn collect_or_report<T>(what: &str, labeled: Vec<(String, Result<T, String>)>) -> Vec<T> {
    let total = labeled.len();
    let mut ok = Vec::with_capacity(total);
    let mut failed: Vec<String> = Vec::new();
    for (label, res) in labeled {
        match res {
            Ok(v) => ok.push(v),
            Err(e) => {
                eprintln!("{what}: {e}");
                failed.push(label);
            }
        }
    }
    assert!(
        failed.is_empty(),
        "{what}: {}/{} jobs failed: {}",
        failed.len(),
        total,
        failed.join(", ")
    );
    ok
}

/// Profiles the whole Table 1 suite in parallel, preserving suite order.
/// Timing (the original binary's cycles) is collected when `machine` is
/// given — required by the Figure 10 speedup binary.
///
/// # Panics
///
/// Panics after the sweep completes if any workload failed, listing every
/// failing label (a single bad workload no longer masks the others behind
/// a poisoned-mutex double panic).
pub fn profile_suite(machine: Option<&MachineConfig>) -> Vec<ProfiledWorkload> {
    profile_workloads(suite(scale()), machine)
}

/// Profiles an explicit workload list in parallel, preserving input order —
/// [`profile_suite`] over the full suite, the shard sweep over the subset
/// of workloads its cells actually need.
///
/// # Panics
///
/// Panics after the sweep completes if any workload failed, listing every
/// failing label.
pub fn profile_workloads(
    workloads: Vec<Workload>,
    machine: Option<&MachineConfig>,
) -> Vec<ProfiledWorkload> {
    let _s = vp_trace::span("bench.profile_suite");
    let jobs: Vec<(String, Workload)> = workloads.into_iter().map(|w| (w.label(), w)).collect();
    let results = parallel_sweep(jobs, |w| {
        profile(&w.label(), w.program.clone(), &HsdConfig::table2(), machine)
            .unwrap_or_else(|e| panic!("{e}"))
    });
    collect_or_report("profile_suite", results)
}

/// The paper's four-bar configuration labels, in Figure 8/10 order.
pub const CONFIG_LABELS: [&str; 4] = ["noInf/noLink", "noInf/link", "inf/noLink", "inf/link"];

/// Evaluates every (workload, configuration) cell in parallel; the result
/// is indexed `[workload][config]`.
///
/// # Panics
///
/// Panics after the sweep completes if any cell failed, listing every
/// failing (workload, config) pair.
pub fn evaluate_matrix(
    profiled: &[ProfiledWorkload],
    configs: &[vacuum_packing::core::PackConfig],
    machine: Option<&MachineConfig>,
) -> Vec<Vec<vacuum_packing::metrics::ConfigOutcome>> {
    use vacuum_packing::metrics::evaluate;
    use vacuum_packing::opt::OptConfig;

    let _s = vp_trace::span("bench.evaluate_matrix");
    let cells: Vec<(String, (usize, usize))> = (0..profiled.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .map(|(w, c)| (format!("{} [config {c}]", profiled[w].label), (w, c)))
        .collect();
    let results = parallel_sweep(cells, |&(w, c)| {
        evaluate(&profiled[w], &configs[c], &OptConfig::default(), machine)
            .unwrap_or_else(|e| panic!("{e}"))
    });
    let flat = collect_or_report("evaluate_matrix", results);
    flat.chunks(configs.len()).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        assert!(scale() >= 1);
        assert!(threads() >= 1);
    }

    fn labeled(range: std::ops::Range<i32>) -> Vec<(String, i32)> {
        range.map(|i| (format!("job{i}"), i)).collect()
    }

    #[test]
    fn sweep_preserves_order() {
        let out = parallel_sweep(labeled(0..32), |&i| i * 2);
        let vals: Vec<i32> = out.into_iter().map(|(_, r)| r.unwrap()).collect();
        assert_eq!(vals, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_reports_individual_failures_with_labels() {
        let out = parallel_sweep(labeled(0..8), |&i: &i32| {
            assert!(i != 3 && i != 6, "job {i} exploded");
            i
        });
        let mut failed: Vec<usize> = Vec::new();
        for (i, (label, r)) in out.iter().enumerate() {
            assert_eq!(label, &format!("job{i}"), "labels stay in input order");
            match r {
                Ok(v) => assert_eq!(*v, i as i32),
                Err(e) => {
                    assert!(e.contains("exploded"), "lost the panic message: {e}");
                    assert!(
                        e.starts_with(&format!("job{i}: ")),
                        "Err must name the originating cell: {e}"
                    );
                    failed.push(i);
                }
            }
        }
        assert_eq!(failed, vec![3, 6], "exactly the panicking jobs fail");
    }

    #[test]
    fn scoped_sweep_isolates_cell_telemetry() {
        static ISO_A: vp_trace::Counter = vp_trace::Counter::new("test.bench.iso_a");
        static ISO_B: vp_trace::Counter = vp_trace::Counter::new("test.bench.iso_b");
        let results = parallel_sweep_scoped(
            "test-sweep",
            vec![("cell-a".to_string(), 0usize), ("cell-b".to_string(), 1)],
            |&which| {
                if which == 0 {
                    ISO_A.add(3);
                } else {
                    ISO_B.add(5);
                }
            },
        );
        let by_label: std::collections::BTreeMap<String, JobTelemetry> = results
            .into_iter()
            .map(|(l, r)| (l, r.expect("job succeeds").1))
            .collect();
        let a = &by_label["cell-a"];
        let b = &by_label["cell-b"];
        assert_eq!(a.report.counter("test.bench.iso_a"), 3);
        assert_eq!(
            a.report.counter("test.bench.iso_b"),
            0,
            "cell A's report must not contain cell B's counters"
        );
        assert_eq!(b.report.counter("test.bench.iso_b"), 5);
        assert_eq!(b.report.counter("test.bench.iso_a"), 0);
        assert!(a.wall_ms >= 0.0);
        assert!(
            a.report.has_span("bench.cell") && b.report.has_span("bench.cell"),
            "every cell times itself under a bench.cell span"
        );
    }

    #[test]
    fn scoped_sweep_isolates_spans_across_cells() {
        let results = parallel_sweep_scoped(
            "test-sweep",
            vec![("span-a".to_string(), 0usize), ("span-b".to_string(), 1)],
            |&which| {
                let _s = vp_trace::span(if which == 0 {
                    "test.bench.stage_a"
                } else {
                    "test.bench.stage_b"
                });
            },
        );
        for (label, r) in results {
            let t = r.expect("job succeeds").1;
            let (own, other) = if label == "span-a" {
                ("test.bench.stage_a", "test.bench.stage_b")
            } else {
                ("test.bench.stage_b", "test.bench.stage_a")
            };
            assert!(t.report.has_span(own), "{label} has its own span");
            assert!(
                !t.report.has_span(other),
                "{label} must not be attributed the other cell's span"
            );
        }
    }

    #[test]
    #[should_panic(expected = "profile_suite")]
    fn collect_or_report_names_failures() {
        collect_or_report::<u32>(
            "profile_suite",
            vec![
                ("a".to_string(), Ok(1)),
                ("b".to_string(), Err("boom".to_string())),
            ],
        );
    }
}
