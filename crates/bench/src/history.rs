//! The run-history warehouse: append-only cross-run telemetry under
//! `VP_HISTORY_DIR`.
//!
//! Single-run observability (spans, counters, the flight recorder) dies
//! with the run: every manifest is printed once and thrown away, so
//! "did this get slower over the last ten runs?" has no answer. The
//! warehouse is the longitudinal store production phase-profiling
//! systems (BOLT, AutoFDO-style counter PGO) are built around, scaled to
//! this repo's constraints: offline, zero new dependencies, plain files.
//!
//! ## Layout
//!
//! ```text
//! $VP_HISTORY_DIR/
//!   seg-000001.jsonl   # vp-history/1 run records, append order
//!   seg-000002.jsonl   # opened when the previous segment fills
//!   index.jsonl        # one compact line per record: ts, fp, bin, seg
//! ```
//!
//! Each ingested run becomes one [`RunRecord`] line (`vp-history/1`): a
//! compact extraction of a `vp-manifest/1`/`/2` JSONL line or a
//! `vp-bench/1` baseline file, keyed by **binary × config × workload**
//! (hashed to a FNV-1a fingerprint) **× timestamp**. Segments rotate on
//! a size budget (`VP_HISTORY_MB`, default 64): when the store exceeds
//! the budget the oldest whole segment is dropped and the index
//! rewritten, so the warehouse self-bounds like the flight recorder
//! does — the most recent history survives, byte cost stays fixed.
//!
//! Everything here is observability-only: ingestion failures warn on
//! stderr and never fail the run, and nothing the warehouse does alters
//! report bytes (pinned by `tests/live_feed.rs`).
//!
//! ## Tolerance bands
//!
//! The second half of this module is the statistics the history-aware
//! regression gates share ([`Band`], [`changepoints`]): a
//! median-of-last-K center with a MAD (median absolute deviation)
//! tolerance, which one noisy CI sample cannot drag around the way a
//! single committed baseline can. `bench-smoke` and `manifest-diff`
//! gate against these bands when the warehouse holds at least
//! [`GATE_MIN_SAMPLES`] runs, falling back to their committed-baseline
//! behaviour when history is thin.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use vp_trace::Json;

/// Default total size budget for the warehouse, in MiB (`VP_HISTORY_MB`).
pub const DEFAULT_HISTORY_MB: u64 = 64;

/// MAD multiplier of the gate tolerance band (≈3σ for normal noise).
pub const GATE_K: f64 = 3.0;

/// Relative floor of the tolerance band: even a dead-flat history
/// tolerates a 10% excursion before gating (MAD of identical samples is
/// zero; without a floor every repeat run would fail).
pub const GATE_MIN_REL: f64 = 0.10;

/// Minimum history samples before a band gates anything; thinner
/// history falls back to the committed-baseline comparison.
pub const GATE_MIN_SAMPLES: usize = 3;

/// How many trailing samples feed a gate band by default.
pub const GATE_LAST_K: usize = 8;

/// The warehouse root selected by `VP_HISTORY_DIR`, if any.
///
/// Read per call (not cached): subprocess tests point different runs at
/// different warehouses.
pub fn dir_from_env() -> Option<PathBuf> {
    let dir = std::env::var("VP_HISTORY_DIR").ok()?;
    let dir = dir.trim();
    if dir.is_empty() {
        None
    } else {
        Some(PathBuf::from(dir))
    }
}

fn budget_from_env() -> u64 {
    let mb = std::env::var("VP_HISTORY_MB")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_HISTORY_MB);
    mb.max(1) * 1024 * 1024
}

/// 64-bit FNV-1a over `bytes` — the warehouse's key fingerprint hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A compact histogram summary retained per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Samples observed.
    pub count: u64,
    /// Mean sample value (`sum / count`).
    pub mean: f64,
    /// Median sample value.
    pub p50: u64,
}

/// One warehoused run: the durable extraction of a manifest or bench
/// baseline (`vp-history/1` line).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Ingestion timestamp, unix seconds.
    pub ts: u64,
    /// Emitting binary (`sweep`, `report`, …) or `bench:<name>`.
    pub bin: String,
    /// Human label for trend rows; the source file stem for ingested
    /// baselines (`BENCH_8`), otherwise the bin.
    pub label: String,
    /// Canonical machine-independent run configuration
    /// (`mode=cross,scale=1,timing=true`-style).
    pub config: String,
    /// Workload selection: joined `--only` filters, a `workload` field,
    /// or `suite`.
    pub workload: String,
    /// Run wall time (absent on legacy `vp-manifest/1` lines).
    pub duration_ms: Option<f64>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Aggregated span wall ms by name.
    pub spans: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistSummary>,
    /// Scalar run metrics: top-level numeric manifest fields
    /// (`cells_done`, `coverage`, …), `sched.*` scheduler totals, and
    /// for bench records `eps.<stage>` plus the speedup ratios.
    pub metrics: BTreeMap<String, f64>,
}

/// Manifest top-level numeric fields that are machine- or run-instance-
/// specific, not run *results* — excluded from [`RunRecord::metrics`].
const NON_METRIC_FIELDS: &[&str] = &[
    "scale",
    "threads",
    "jobs",
    "seq",
    "duration_ms",
    "trace_cache_mb",
];

impl RunRecord {
    /// The warehouse key this run aggregates under.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.bin, self.config, self.workload)
    }

    /// FNV-1a fingerprint of [`RunRecord::key`], as 16 hex digits.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(self.key().as_bytes()))
    }

    /// Extracts a run record from one `vp-manifest/1`/`/2` JSONL line.
    ///
    /// Legacy `/1` lines (no `duration_ms`/`span_tree`/`flight`) produce
    /// the same record modulo the absent fields — the migration contract
    /// pinned by `tests/history_store.rs`.
    ///
    /// # Errors
    ///
    /// Propagates [`vp_trace::parse_manifest_line`] rejections.
    pub fn from_manifest_line(line: &str, ts: u64) -> Result<RunRecord, String> {
        let j = vp_trace::parse_manifest_line(line)?;
        let bin = j
            .get("bin")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();

        let mut config = Vec::new();
        if let Some(mode) = j.get("mode").and_then(Json::as_str) {
            config.push(format!("mode={mode}"));
        }
        for key in ["figure", "table"] {
            if let Some(v) = j.get(key).and_then(Json::as_u64) {
                config.push(format!("{key}={v}"));
            }
        }
        if let Some(v) = j.get("scale").and_then(Json::as_u64) {
            config.push(format!("scale={v}"));
        }
        if let Some(Json::Bool(t)) = j.get("timing") {
            config.push(format!("timing={t}"));
        }
        if let Some(s) = j.get("shard").and_then(Json::as_str) {
            config.push(format!("shard={s}"));
        }
        if let Some(s) = j.get("profile_from").and_then(Json::as_str) {
            config.push(format!("profile_from={s}"));
        }

        let workload = if let Some(only) = j.get("only").and_then(Json::as_arr) {
            let parts: Vec<&str> = only.iter().filter_map(Json::as_str).collect();
            parts.join("+")
        } else if let Some(w) = j.get("workload").and_then(Json::as_str) {
            w.to_string()
        } else {
            "suite".to_string()
        };

        let mut rec = RunRecord {
            ts,
            label: bin.clone(),
            bin,
            config: config.join(","),
            workload,
            duration_ms: j.get("duration_ms").and_then(Json::as_f64),
            ..RunRecord::default()
        };

        if let Some(Json::Obj(pairs)) = j.get("counters") {
            for (name, v) in pairs {
                if let Some(v) = v.as_u64() {
                    rec.counters.insert(name.clone(), v);
                }
            }
        }
        if let Some(Json::Obj(pairs)) = j.get("spans") {
            for (name, s) in pairs {
                if let Some(ms) = s.get("ms").and_then(Json::as_f64) {
                    rec.spans.insert(name.clone(), ms);
                }
            }
        }
        if let Some(Json::Obj(pairs)) = j.get("histograms") {
            for (name, h) in pairs {
                let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
                if count == 0 {
                    continue;
                }
                let sum = h.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
                rec.hists.insert(
                    name.clone(),
                    HistSummary {
                        count,
                        mean: sum / count as f64,
                        p50: h.get("p50").and_then(Json::as_u64).unwrap_or(0),
                    },
                );
            }
        }
        // Every remaining top-level numeric field is a run result
        // (cells_done, coverage, speedup, …) — future manifest fields
        // warehouse themselves without code changes here.
        if let Json::Obj(pairs) = &j {
            for (name, v) in pairs {
                if NON_METRIC_FIELDS.contains(&name.as_str()) {
                    continue;
                }
                if let Some(v) = v.as_f64() {
                    rec.metrics.insert(name.clone(), v);
                }
            }
        }
        if let Some(sched) = j.get("sweep") {
            for key in ["runs", "tasks", "steals", "wall_ms"] {
                if let Some(v) = sched.get(key).and_then(Json::as_f64) {
                    rec.metrics.insert(format!("sched.{key}"), v);
                }
            }
        }
        Ok(rec)
    }

    /// Extracts a run record from a `vp-bench/1` baseline document
    /// (`BENCH_*.json`); `label` is usually the file stem.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON and non-`vp-bench/1` documents.
    pub fn from_bench_json(text: &str, label: &str, ts: u64) -> Result<RunRecord, String> {
        let j = Json::parse(text)?;
        match j.get("schema").and_then(Json::as_str) {
            Some("vp-bench/1") => {}
            other => return Err(format!("not a vp-bench/1 document (schema {other:?})")),
        }
        let bench = j.get("bench").and_then(Json::as_str).unwrap_or("unknown");
        let mut rec = RunRecord {
            ts,
            bin: format!("bench:{bench}"),
            label: label.to_string(),
            config: format!(
                "scale={}",
                j.get("scale").and_then(Json::as_u64).unwrap_or(1)
            ),
            workload: j
                .get("workload")
                .and_then(Json::as_str)
                .unwrap_or("suite")
                .to_string(),
            ..RunRecord::default()
        };
        if let Some(Json::Obj(pairs)) = j.get("events_per_sec") {
            for (name, v) in pairs {
                if let Some(v) = v.as_f64() {
                    rec.metrics.insert(format!("eps.{name}"), v);
                }
            }
        }
        for key in [
            "events",
            "trace_v3_bytes",
            "batched_speedup_vs_per_event",
            "batched_speedup_vs_per_event_dyn",
        ] {
            if let Some(v) = j.get(key).and_then(Json::as_f64) {
                rec.metrics.insert(key.to_string(), v);
            }
        }
        Ok(rec)
    }

    /// Serializes to one `vp-history/1` line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut j = Json::obj();
        j.set("t", "run".into());
        j.set("schema", "vp-history/1".into());
        j.set("ts", Json::U64(self.ts));
        j.set("bin", self.bin.as_str().into());
        j.set("label", self.label.as_str().into());
        j.set("config", self.config.as_str().into());
        j.set("workload", self.workload.as_str().into());
        j.set("fp", self.fingerprint().into());
        if let Some(d) = self.duration_ms {
            j.set("duration_ms", Json::F64(d));
        }
        let mut c = Json::obj();
        for (k, v) in &self.counters {
            c.set(k, Json::U64(*v));
        }
        j.set("counters", c);
        let mut s = Json::obj();
        for (k, v) in &self.spans {
            s.set(k, Json::F64(*v));
        }
        j.set("spans", s);
        let mut h = Json::obj();
        for (k, v) in &self.hists {
            let mut o = Json::obj();
            o.set("count", Json::U64(v.count));
            o.set("mean", Json::F64(v.mean));
            o.set("p50", Json::U64(v.p50));
            h.set(k, o);
        }
        j.set("hists", h);
        let mut m = Json::obj();
        for (k, v) in &self.metrics {
            m.set(k, Json::F64(*v));
        }
        j.set("metrics", m);
        j.render()
    }

    /// Parses one `vp-history/1` segment line back into a record.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON and lines of other types/schemas.
    pub fn parse_line(line: &str) -> Result<RunRecord, String> {
        let j = Json::parse(line.trim())?;
        match j.get("t").and_then(Json::as_str) {
            Some("run") => {}
            other => return Err(format!("not a history run line (t={other:?})")),
        }
        match j.get("schema").and_then(Json::as_str) {
            Some("vp-history/1") => {}
            other => return Err(format!("unsupported history schema {other:?}")),
        }
        let str_field = |k: &str| j.get(k).and_then(Json::as_str).unwrap_or("").to_string();
        let mut rec = RunRecord {
            ts: j.get("ts").and_then(Json::as_u64).unwrap_or(0),
            bin: str_field("bin"),
            label: str_field("label"),
            config: str_field("config"),
            workload: str_field("workload"),
            duration_ms: j.get("duration_ms").and_then(Json::as_f64),
            ..RunRecord::default()
        };
        if let Some(Json::Obj(pairs)) = j.get("counters") {
            for (k, v) in pairs {
                if let Some(v) = v.as_u64() {
                    rec.counters.insert(k.clone(), v);
                }
            }
        }
        if let Some(Json::Obj(pairs)) = j.get("spans") {
            for (k, v) in pairs {
                if let Some(v) = v.as_f64() {
                    rec.spans.insert(k.clone(), v);
                }
            }
        }
        if let Some(Json::Obj(pairs)) = j.get("hists") {
            for (k, v) in pairs {
                rec.hists.insert(
                    k.clone(),
                    HistSummary {
                        count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
                        mean: v.get("mean").and_then(Json::as_f64).unwrap_or(0.0),
                        p50: v.get("p50").and_then(Json::as_u64).unwrap_or(0),
                    },
                );
            }
        }
        if let Some(Json::Obj(pairs)) = j.get("metrics") {
            for (k, v) in pairs {
                if let Some(v) = v.as_f64() {
                    rec.metrics.insert(k.clone(), v);
                }
            }
        }
        Ok(rec)
    }

    /// Resolves a metric spec against this record:
    ///
    /// * `duration_ms`
    /// * `counter:NAME`
    /// * `span:NAME` (aggregated wall ms)
    /// * `hist:NAME:count|mean|p50`
    /// * `metric:NAME` (scalar run metrics, e.g.
    ///   `metric:batched_speedup_vs_per_event`)
    pub fn metric(&self, spec: &str) -> Option<f64> {
        if spec == "duration_ms" {
            return self.duration_ms;
        }
        if let Some(name) = spec.strip_prefix("counter:") {
            return self.counters.get(name).map(|&v| v as f64);
        }
        if let Some(name) = spec.strip_prefix("span:") {
            return self.spans.get(name).copied();
        }
        if let Some(rest) = spec.strip_prefix("hist:") {
            let (name, field) = rest.rsplit_once(':')?;
            let h = self.hists.get(name)?;
            return match field {
                "count" => Some(h.count as f64),
                "mean" => Some(h.mean),
                "p50" => Some(h.p50 as f64),
                _ => None,
            };
        }
        if let Some(name) = spec.strip_prefix("metric:") {
            return self.metrics.get(name).copied();
        }
        None
    }
}

/// A parsed `index.jsonl` entry: where one run record lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Record timestamp (unix seconds).
    pub ts: u64,
    /// Key fingerprint (16 hex digits).
    pub fp: String,
    /// Emitting binary.
    pub bin: String,
    /// Segment file name holding the record.
    pub seg: String,
}

/// An open warehouse directory.
#[derive(Debug, Clone)]
pub struct Warehouse {
    dir: PathBuf,
    budget_bytes: u64,
}

impl Warehouse {
    /// Opens (creating if needed) the warehouse at `dir`, budget from
    /// `VP_HISTORY_MB`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<Warehouse> {
        Warehouse::open_with_budget(dir, budget_from_env())
    }

    /// Opens with an explicit total byte budget (rotation tests).
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open_with_budget(dir: &Path, budget_bytes: u64) -> std::io::Result<Warehouse> {
        std::fs::create_dir_all(dir)?;
        Ok(Warehouse {
            dir: dir.to_path_buf(),
            budget_bytes: budget_bytes.max(1),
        })
    }

    /// The warehouse root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment files, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates directory read failures.
    pub fn segments(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("seg-")
                .and_then(|r| r.strip_suffix(".jsonl"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                segs.push((num, entry.path()));
            }
        }
        segs.sort();
        Ok(segs.into_iter().map(|(_, p)| p).collect())
    }

    /// Total bytes across all segments.
    ///
    /// # Errors
    ///
    /// Propagates filesystem metadata failures.
    pub fn total_bytes(&self) -> std::io::Result<u64> {
        let mut total = 0;
        for seg in self.segments()? {
            total += std::fs::metadata(&seg)?.len();
        }
        Ok(total)
    }

    /// Appends one record, rotating segments to stay inside the byte
    /// budget.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (callers at end-of-run downgrade
    /// these to warnings — the warehouse never fails a run).
    pub fn ingest(&self, rec: &RunRecord) -> std::io::Result<()> {
        let mut line = rec.to_line();
        line.push('\n');
        // A segment caps at 1/8 of the total budget so rotation drops
        // history in ~12% increments rather than all at once.
        let seg_cap = (self.budget_bytes / 8).max(4096);

        let segs = self.segments()?;
        let (seg_path, seg_num) = match segs.last() {
            Some(last) if std::fs::metadata(last)?.len() + line.len() as u64 <= seg_cap => {
                let num = seg_number(last).unwrap_or(1);
                (last.clone(), num)
            }
            Some(last) => {
                let num = seg_number(last).unwrap_or(1) + 1;
                (self.dir.join(format!("seg-{num:06}.jsonl")), num)
            }
            None => (self.dir.join("seg-000001.jsonl"), 1),
        };
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)?
            .write_all(line.as_bytes())?;

        let mut idx = Json::obj();
        idx.set("ts", Json::U64(rec.ts));
        idx.set("fp", rec.fingerprint().into());
        idx.set("bin", rec.bin.as_str().into());
        idx.set("seg", format!("seg-{seg_num:06}.jsonl").into());
        let mut idx_line = idx.render();
        idx_line.push('\n');
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("index.jsonl"))?
            .write_all(idx_line.as_bytes())?;

        self.enforce_budget()
    }

    fn enforce_budget(&self) -> std::io::Result<()> {
        let mut removed: Vec<String> = Vec::new();
        loop {
            let segs = self.segments()?;
            if segs.len() <= 1 || self.total_bytes()? <= self.budget_bytes {
                break;
            }
            let oldest = &segs[0];
            if let Some(name) = oldest.file_name() {
                removed.push(name.to_string_lossy().into_owned());
            }
            std::fs::remove_file(oldest)?;
        }
        if !removed.is_empty() {
            // Rewrite the index without the dropped segments' entries
            // (atomically: temp file + rename).
            let kept: Vec<IndexEntry> = self
                .index()?
                .into_iter()
                .filter(|e| !removed.contains(&e.seg))
                .collect();
            let mut body = String::new();
            for e in &kept {
                let mut j = Json::obj();
                j.set("ts", Json::U64(e.ts));
                j.set("fp", e.fp.as_str().into());
                j.set("bin", e.bin.as_str().into());
                j.set("seg", e.seg.as_str().into());
                body.push_str(&j.render());
                body.push('\n');
            }
            let tmp = self.dir.join("index.jsonl.tmp");
            std::fs::write(&tmp, body)?;
            std::fs::rename(&tmp, self.dir.join("index.jsonl"))?;
        }
        Ok(())
    }

    /// Ingests one manifest JSONL line, stamping the current wall clock.
    ///
    /// # Errors
    ///
    /// Returns a message on parse or filesystem failure.
    pub fn ingest_manifest_line(&self, line: &str) -> Result<(), String> {
        let rec = RunRecord::from_manifest_line(line, now_secs())?;
        self.ingest(&rec).map_err(|e| e.to_string())
    }

    /// Ingests a file: a `vp-bench/1` baseline (`.json`) or a JSONL
    /// stream containing manifest lines. Returns the records ingested.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is unreadable or contains no
    /// ingestible record.
    pub fn ingest_file(&self, path: &Path) -> Result<usize, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let label = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if let Ok(rec) = RunRecord::from_bench_json(&text, &label, now_secs()) {
            self.ingest(&rec).map_err(|e| e.to_string())?;
            return Ok(1);
        }
        let mut n = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(rec) = RunRecord::from_manifest_line(line, now_secs()) {
                self.ingest(&rec).map_err(|e| e.to_string())?;
                n += 1;
            }
        }
        if n == 0 {
            return Err(format!(
                "{}: no vp-bench/1 document or vp-manifest lines found",
                path.display()
            ));
        }
        Ok(n)
    }

    /// All retained records, oldest segment first, append order within a
    /// segment. Malformed lines are skipped (a torn final line from a
    /// killed run must not poison the store).
    ///
    /// # Errors
    ///
    /// Propagates segment read failures.
    pub fn records(&self) -> std::io::Result<Vec<RunRecord>> {
        let mut out = Vec::new();
        for seg in self.segments()? {
            for line in std::fs::read_to_string(&seg)?.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                if let Ok(rec) = RunRecord::parse_line(line) {
                    out.push(rec);
                }
            }
        }
        Ok(out)
    }

    /// The compact index, in append order.
    ///
    /// # Errors
    ///
    /// Propagates index read failures (a missing index is empty).
    pub fn index(&self) -> std::io::Result<Vec<IndexEntry>> {
        let path = self.dir.join("index.jsonl");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for line in text.lines() {
            if let Ok(j) = Json::parse(line) {
                out.push(IndexEntry {
                    ts: j.get("ts").and_then(Json::as_u64).unwrap_or(0),
                    fp: j.get("fp").and_then(Json::as_str).unwrap_or("").to_string(),
                    bin: j
                        .get("bin")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    seg: j
                        .get("seg")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                });
            }
        }
        Ok(out)
    }
}

fn seg_number(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_string_lossy()
        .strip_prefix("seg-")?
        .strip_suffix(".jsonl")?
        .parse()
        .ok()
}

fn now_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// End-of-run ingestion hook: warehouses a rendered manifest line when
/// `VP_HISTORY_DIR` is set. Failures warn on stderr; the run's own
/// output and exit status are never affected.
pub fn ingest_at_exit(manifest_line: &str) {
    let Some(dir) = dir_from_env() else {
        return;
    };
    let result = Warehouse::open(&dir)
        .map_err(|e| e.to_string())
        .and_then(|w| w.ingest_manifest_line(manifest_line));
    if let Err(e) = result {
        eprintln!("vp-obs: history ingest into {} failed: {e}", dir.display());
    }
}

// ---------------------------------------------------------------- bands

/// A robust tolerance band: median center, MAD spread, sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Median of the samples.
    pub median: f64,
    /// Median absolute deviation from that median.
    pub mad: f64,
    /// Samples the band was computed from.
    pub n: usize,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median + MAD of `values`; `None` when empty.
pub fn band(values: &[f64]) -> Option<Band> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = median_of(&sorted);
    let mut devs: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
    devs.sort_by(|a, b| a.total_cmp(b));
    Some(Band {
        median,
        mad: median_of(&devs),
        n: values.len(),
    })
}

impl Band {
    /// The half-width of the tolerance interval: `max(k·MAD,
    /// min_rel·|median|)`.
    pub fn slack(&self, k: f64, min_rel: f64) -> f64 {
        (k * self.mad).max(min_rel * self.median.abs())
    }

    /// Lowest non-regressing value for a higher-is-better metric.
    pub fn floor(&self, k: f64, min_rel: f64) -> f64 {
        self.median - self.slack(k, min_rel)
    }

    /// Highest non-regressing value for a lower-is-better metric.
    pub fn ceil(&self, k: f64, min_rel: f64) -> f64 {
        self.median + self.slack(k, min_rel)
    }
}

/// The gate band over the last [`GATE_LAST_K`] values of `spec` across
/// `records`, or `None` when fewer than [`GATE_MIN_SAMPLES`] records
/// carry the metric (history too thin to gate — fall back to the
/// committed baseline).
pub fn gate_band(records: &[RunRecord], spec: &str) -> Option<Band> {
    let values: Vec<f64> = records.iter().filter_map(|r| r.metric(spec)).collect();
    if values.len() < GATE_MIN_SAMPLES {
        return None;
    }
    let tail = &values[values.len().saturating_sub(GATE_LAST_K)..];
    band(tail)
}

/// Indices where a series breaks out of the tolerance band of the
/// preceding window (the dashboard's changepoint markers).
///
/// A point qualifies when at least [`GATE_MIN_SAMPLES`] earlier points
/// exist and it falls outside `median ± slack` of the previous
/// [`GATE_LAST_K`] points.
pub fn changepoints(values: &[f64]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in GATE_MIN_SAMPLES..values.len() {
        let window = &values[i.saturating_sub(GATE_LAST_K)..i];
        if let Some(b) = band(window) {
            let v = values[i];
            if v < b.floor(GATE_K, GATE_MIN_REL) || v > b.ceil(GATE_K, GATE_MIN_REL) {
                out.push(i);
            }
        }
    }
    out
}

// ------------------------------------------------------------- trends

/// Loads every committed `BENCH_<n>.json` under `dir` (ascending `n`)
/// as bench run records — the trend source when no warehouse exists.
pub fn bench_baseline_records(dir: &Path) -> Vec<RunRecord> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                found.push((num, entry.path()));
            }
        }
    }
    found.sort();
    let mut out = Vec::new();
    for (num, path) in found {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let label = format!("BENCH_{num}");
        if let Ok(rec) = RunRecord::from_bench_json(&text, &label, num) {
            out.push(rec);
        }
    }
    out
}

/// Renders a trend table over `records` grouped by warehouse key.
///
/// Bench records get throughput/ratio columns; everything else gets
/// duration and headline counters. The `Δ%` column tracks the first
/// metric column against the previous run; rows outside the tolerance
/// band of their trailing window are marked `*` (see [`changepoints`]).
pub fn render_trend(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    if records.is_empty() {
        return "history: no runs recorded\n".to_string();
    }
    let mut groups: Vec<(String, Vec<&RunRecord>)> = Vec::new();
    for rec in records {
        let key = rec.key();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(rec),
            None => groups.push((key, vec![rec])),
        }
    }
    let mut out = String::new();
    for (_key, group) in &groups {
        let head = group[0];
        let title = if head.config.is_empty() {
            format!("{} · {}", head.bin, head.workload)
        } else {
            format!("{} · {} · {}", head.bin, head.workload, head.config)
        };
        let _ = writeln!(out, "== {title} ({} runs) ==", group.len());
        let is_bench = group
            .iter()
            .any(|r| r.metrics.contains_key("eps.replay_batched"));
        let primary_spec = if is_bench {
            "metric:eps.replay_batched"
        } else {
            "duration_ms"
        };
        let primary: Vec<f64> = group
            .iter()
            .map(|r| r.metric(primary_spec).unwrap_or(0.0))
            .collect();
        let marks = changepoints(&primary);
        let mut t = if is_bench {
            vacuum_packing::metrics::TextTable::new(vec![
                "run",
                "replay_batched Mev/s",
                "batched/per-event",
                "dyn",
                "Δ%",
            ])
        } else {
            vacuum_packing::metrics::TextTable::new(vec![
                "run",
                "duration ms",
                "cells",
                "store hits",
                "Δ%",
            ])
        };
        for (i, rec) in group.iter().enumerate() {
            let delta = if i == 0 || primary[i - 1] == 0.0 {
                "-".to_string()
            } else {
                let pct = (primary[i] / primary[i - 1] - 1.0) * 100.0;
                let mark = if marks.contains(&i) { " *" } else { "" };
                format!("{pct:+.1}{mark}")
            };
            if is_bench {
                t.row(vec![
                    rec.label.clone(),
                    format!("{:.2}", primary[i] / 1e6),
                    rec.metrics
                        .get("batched_speedup_vs_per_event")
                        .map(|v| format!("{v:.2}x"))
                        .unwrap_or_else(|| "-".to_string()),
                    rec.metrics
                        .get("batched_speedup_vs_per_event_dyn")
                        .map(|v| format!("{v:.2}x"))
                        .unwrap_or_else(|| "-".to_string()),
                    delta,
                ]);
            } else {
                t.row(vec![
                    rec.label.clone(),
                    rec.duration_ms
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_else(|| "-".to_string()),
                    rec.metrics
                        .get("cells_done")
                        .map(|v| format!("{v:.0}"))
                        .unwrap_or_else(|| "-".to_string()),
                    rec.counters
                        .get("trace_store.hits")
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                    delta,
                ]);
            }
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_with_metric(ts: u64, name: &str, v: f64) -> RunRecord {
        let mut rec = RunRecord {
            ts,
            bin: "test".into(),
            label: format!("run{ts}"),
            config: "scale=1".into(),
            workload: "suite".into(),
            ..RunRecord::default()
        };
        rec.metrics.insert(name.to_string(), v);
        rec
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn run_record_round_trips_through_its_line() {
        let mut rec = RunRecord {
            ts: 42,
            bin: "sweep".into(),
            label: "sweep".into(),
            config: "scale=2,timing=true".into(),
            workload: "gzip+twolf".into(),
            duration_ms: Some(12.5),
            ..RunRecord::default()
        };
        rec.counters.insert("trace_store.hits".into(), 7);
        rec.spans.insert("bench.cell".into(), 3.25);
        rec.hists.insert(
            "h".into(),
            HistSummary {
                count: 4,
                mean: 2.5,
                p50: 2,
            },
        );
        rec.metrics.insert("cells_done".into(), 8.0);
        let back = RunRecord::parse_line(&rec.to_line()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.fingerprint(), rec.fingerprint());
    }

    #[test]
    fn manifest_extraction_keys_and_metrics() {
        let line = r#"{"t":"manifest","schema":"vp-manifest/2","bin":"sweep","scale":1,"threads":4,"jobs":2,"trace_cache_mb":512,"only":["gzip","vpr"],"timing":false,"duration_ms":88.5,"seq":100,"cells_total":4,"cells_done":4,"spans":{"bench.cell":{"count":4,"ms":80.0}},"counters":{"trace_store.hits":3},"histograms":{"hsd.len":{"count":2,"sum":10,"min":4,"max":6,"p50":5,"p99":6}},"sweep":{"jobs":2,"runs":1,"tasks":4,"steals":1,"wall_ms":90.0,"workers":[]}}"#;
        let rec = RunRecord::from_manifest_line(line, 7).unwrap();
        assert_eq!(rec.bin, "sweep");
        assert_eq!(rec.workload, "gzip+vpr");
        assert_eq!(rec.config, "scale=1,timing=false");
        assert_eq!(rec.duration_ms, Some(88.5));
        assert_eq!(rec.counters.get("trace_store.hits"), Some(&3));
        assert_eq!(rec.spans.get("bench.cell"), Some(&80.0));
        assert_eq!(rec.metrics.get("cells_done"), Some(&4.0));
        assert_eq!(rec.metrics.get("sched.steals"), Some(&1.0));
        // machine-specific fields stay out of metrics
        assert!(!rec.metrics.contains_key("threads"));
        assert!(!rec.metrics.contains_key("jobs"));
        assert!(!rec.metrics.contains_key("seq"));
        let h = rec.hists.get("hsd.len").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.mean - 5.0).abs() < 1e-9);
        // metric spec resolution
        assert_eq!(rec.metric("duration_ms"), Some(88.5));
        assert_eq!(rec.metric("counter:trace_store.hits"), Some(3.0));
        assert_eq!(rec.metric("span:bench.cell"), Some(80.0));
        assert_eq!(rec.metric("hist:hsd.len:p50"), Some(5.0));
        assert_eq!(rec.metric("metric:cells_done"), Some(4.0));
        assert_eq!(rec.metric("metric:nope"), None);
    }

    #[test]
    fn bench_json_extraction() {
        let text = r#"{"schema":"vp-bench/1","bench":"replay_throughput","workload":"300.twolf","scale":1,"events":1000,"trace_v3_bytes":500,"events_per_sec":{"replay_batched":2000000,"replay_per_event":1600000},"batched_speedup_vs_per_event":1.25,"batched_speedup_vs_per_event_dyn":1.5}"#;
        let rec = RunRecord::from_bench_json(text, "BENCH_9", 9).unwrap();
        assert_eq!(rec.bin, "bench:replay_throughput");
        assert_eq!(rec.label, "BENCH_9");
        assert_eq!(rec.workload, "300.twolf");
        assert_eq!(rec.metric("metric:eps.replay_batched"), Some(2_000_000.0));
        assert_eq!(
            rec.metric("metric:batched_speedup_vs_per_event"),
            Some(1.25)
        );
        assert!(RunRecord::from_bench_json("{}", "x", 0).is_err());
    }

    #[test]
    fn band_median_mad_and_gates() {
        // The committed baseline ratios: median 0.8226, MAD 0.0503.
        let vals = [0.8226, 0.7723, 1.2640];
        let b = band(&vals).unwrap();
        assert!((b.median - 0.8226).abs() < 1e-9);
        assert!((b.mad - 0.0503).abs() < 1e-9);
        let floor = b.floor(GATE_K, GATE_MIN_REL);
        assert!(floor < 0.7723, "band tolerates the committed spread");
        assert!(1.2640 > floor, "current committed value passes");
        assert!(0.6320 < floor, "an injected 2x regression fails");
        // A flat series gates on the relative floor, not MAD=0.
        let flat = band(&[10.0, 10.0, 10.0]).unwrap();
        assert_eq!(flat.mad, 0.0);
        assert!((flat.floor(GATE_K, GATE_MIN_REL) - 9.0).abs() < 1e-9);
        assert!((flat.ceil(GATE_K, GATE_MIN_REL) - 11.0).abs() < 1e-9);
        assert!(band(&[]).is_none());
    }

    #[test]
    fn gate_band_requires_min_samples_and_uses_tail() {
        let recs: Vec<RunRecord> = (0..2).map(|i| rec_with_metric(i, "x", 1.0)).collect();
        assert!(gate_band(&recs, "metric:x").is_none(), "thin history");
        let recs: Vec<RunRecord> = (0..20)
            .map(|i| rec_with_metric(i, "x", if i < 12 { 100.0 } else { 1.0 }))
            .collect();
        let b = gate_band(&recs, "metric:x").unwrap();
        assert_eq!(b.n, GATE_LAST_K);
        assert_eq!(b.median, 1.0, "band reads the trailing window only");
    }

    #[test]
    fn changepoints_flag_breakouts_only() {
        let mut series = vec![10.0, 10.2, 9.9, 10.1, 10.0];
        assert!(changepoints(&series).is_empty());
        series.push(20.0);
        assert_eq!(changepoints(&series), vec![5]);
    }

    #[test]
    fn render_trend_groups_and_marks() {
        let mut recs: Vec<RunRecord> = (0..4)
            .map(|i| {
                let mut r = rec_with_metric(i, "eps.replay_batched", 2e6);
                r.metrics
                    .insert("batched_speedup_vs_per_event".into(), 1.25);
                r.bin = "bench:replay_throughput".into();
                r.label = format!("BENCH_{i}");
                r
            })
            .collect();
        recs.push({
            let mut r = RunRecord {
                ts: 9,
                bin: "sweep".into(),
                label: "sweep".into(),
                config: "scale=1".into(),
                workload: "suite".into(),
                duration_ms: Some(120.0),
                ..RunRecord::default()
            };
            r.metrics.insert("cells_done".into(), 8.0);
            r
        });
        let out = render_trend(&recs);
        assert!(out.contains("bench:replay_throughput"), "{out}");
        assert!(out.contains("BENCH_3"), "{out}");
        assert!(out.contains("sweep · suite"), "{out}");
        assert!(out.contains("batched/per-event"), "{out}");
        assert!(render_trend(&[]).contains("no runs"));
    }
}
